#include "notary/notary.h"

#include <algorithm>
#include <string>

#include "obs/obs.h"
#include "util/binio.h"
#include "util/features.h"

namespace tangled::notary {

namespace {

/// Marks `id` in a flat membership array, growing it on demand. Returns
/// true when the id was not yet a member (the dense analogue of
/// set::insert(...).second).
bool dense_insert(std::vector<std::uint8_t>& set, std::uint32_t id) {
  if (id >= set.size()) set.resize(id + 1, 0);
  if (set[id] != 0) return false;
  set[id] = 1;
  return true;
}

}  // namespace

NotaryDb::NotaryDb(asn1::Time now)
    : now_(now), dense_(util::dense_ids_enabled()) {}

void NotaryDb::observe(const Observation& observation) {
  TANGLED_OBS_INC("notary.db.observations");
  TANGLED_OBS_ADD("notary.db.chain_certs_seen", observation.chain.size());
  ++sessions_;
  ++by_port_[observation.port];
  if (store_ != nullptr) {
    // Spill mode: the store's fingerprint index is the dedup set and its
    // log is the corpus; nothing per-certificate stays in this object.
    for (const x509::Certificate& cert : observation.chain) {
      store::CertRecord record;
      record.fingerprint = cert.fingerprint_sha256();
      record.identity = cert.identity_key();
      record.spki = cert.spki_sha256();
      record.not_after_unix = cert.not_after_unix();
      record.der = cert.der();
      auto appended = store_->put(record);
      if (!appended.ok()) {
        TANGLED_OBS_INC("notary.db.store_put_errors");
        continue;
      }
      if (appended.value()) {
        TANGLED_OBS_INC("notary.db.unique_certs");
        if (cert.expired_at(now_)) {
          TANGLED_OBS_INC("notary.db.expired_unique_certs");
        }
      } else {
        TANGLED_OBS_INC("notary.db.dedup_hits");
      }
    }
    return;
  }
  for (const x509::Certificate& cert : observation.chain) {
    const bool first_seen =
        dense_ ? dense_insert(unique_certs_dense_, cert.dense_id())
               : unique_certs_.insert(cert.fingerprint_hex()).second;
    if (first_seen) {
      if (dense_) ++unique_count_;
      TANGLED_OBS_INC("notary.db.unique_certs");
      if (!cert.expired_at(now_)) {
        ++unexpired_;
      } else {
        TANGLED_OBS_INC("notary.db.expired_unique_certs");
      }
    } else {
      TANGLED_OBS_INC("notary.db.dedup_hits");
    }
    if (dense_) {
      if (dense_insert(identities_dense_, cert.identity_id())) {
        ++identity_count_;
      }
    } else {
      identities_.insert(cert.identity_hex());
    }
  }
}

bool NotaryDb::recorded(const x509::Certificate& cert) const {
  if (store_ != nullptr) return store_->contains_identity(cert.identity_key());
  if (dense_) {
    const std::uint32_t id = cert.identity_id();
    return id < identities_dense_.size() && identities_dense_[id] != 0;
  }
  return identities_.contains(cert.identity_hex());
}

bool NotaryDb::recorded_identity(ByteView identity_key) const {
  if (store_ != nullptr) return store_->contains_identity(identity_key);
  if (dense_) {
    const auto id = x509::cert_identity_ids().find(identity_key);
    return id.has_value() && *id < identities_dense_.size() &&
           identities_dense_[*id] != 0;
  }
  return identities_.contains(to_hex(identity_key));
}

namespace {

/// Sorted copy of an unordered string set, for deterministic encoding.
std::vector<std::string> sorted_keys(
    const std::unordered_set<std::string>& set) {
  std::vector<std::string> keys(set.begin(), set.end());
  std::sort(keys.begin(), keys.end());
  return keys;
}

void put_string_set(Bytes& out, const std::unordered_set<std::string>& set) {
  const auto keys = sorted_keys(set);
  util::put_u64(out, keys.size());
  for (const std::string& key : keys) util::put_string(out, key);
}

/// Dense-mode twin of put_string_set: recovers each member id's hex form
/// through the interner's reverse table and writes the same sorted-hex
/// encoding, so a dense-mode snapshot is byte-identical to a string-mode
/// one over the same observations.
void put_dense_set(Bytes& out, const std::vector<std::uint8_t>& set,
                   const util::DigestInterner& ids) {
  std::vector<std::string> keys;
  for (std::uint32_t id = 0; id < set.size(); ++id) {
    if (set[id] != 0) keys.push_back(ids.hex_of(id));
  }
  std::sort(keys.begin(), keys.end());
  util::put_u64(out, keys.size());
  for (const std::string& key : keys) util::put_string(out, key);
}

/// Interns every hex key of a decoded string set into a dense membership
/// array (the decode-side inverse of put_dense_set).
Result<void> densify_set(const std::unordered_set<std::string>& keys,
                         util::DigestInterner& ids,
                         std::vector<std::uint8_t>& set) {
  for (const std::string& key : keys) {
    const auto digest = from_hex(key);
    if (!digest.has_value()) {
      return parse_error("notary snapshot: non-hex set key");
    }
    dense_insert(set, ids.intern(*digest));
  }
  return {};
}

Result<void> read_string_set(util::BinReader& in,
                             std::unordered_set<std::string>& set) {
  auto n = in.count(/*min_bytes_per_element=*/8);  // u64 length prefix
  if (!n.ok()) return n.error();
  set.reserve(n.value());
  for (std::size_t i = 0; i < n.value(); ++i) {
    auto key = in.string();
    if (!key.ok()) return key.error();
    set.insert(std::move(key.value()));
  }
  return {};
}

}  // namespace

Bytes NotaryDb::encode_state() const {
  Bytes out;
  util::put_i64(out, now_.to_unix());
  util::put_u64(out, sessions_);
  util::put_u64(out, unexpired_unique_cert_count());
  if (store_ != nullptr) {
    // Spill mode still emits the exact full-format bytes: the store
    // iterates live records in fingerprint order, which is also sorted
    // lowercase-hex order, so snapshots stay byte-identical to both
    // in-memory modes over the same observations.
    std::vector<std::string> cert_keys;
    std::vector<std::string> identity_keys;
    store_->for_each_live([&](ByteView fp, ByteView identity, ByteView spki,
                              std::uint64_t membership,
                              std::int64_t not_after) {
      (void)spki;
      (void)membership;
      (void)not_after;
      cert_keys.push_back(to_hex(fp));
      identity_keys.push_back(to_hex(identity));
    });
    std::sort(identity_keys.begin(), identity_keys.end());
    identity_keys.erase(
        std::unique(identity_keys.begin(), identity_keys.end()),
        identity_keys.end());
    util::put_u64(out, cert_keys.size());
    for (const std::string& key : cert_keys) util::put_string(out, key);
    util::put_u64(out, identity_keys.size());
    for (const std::string& key : identity_keys) util::put_string(out, key);
    util::put_u64(out, by_port_.size());
    for (const auto& [port, count] : by_port_) {
      util::put_u16(out, port);
      util::put_u64(out, count);
    }
    return out;
  }
  if (dense_) {
    put_dense_set(out, unique_certs_dense_, x509::cert_fingerprint_ids());
    put_dense_set(out, identities_dense_, x509::cert_identity_ids());
  } else {
    put_string_set(out, unique_certs_);
    put_string_set(out, identities_);
  }
  util::put_u64(out, by_port_.size());
  for (const auto& [port, count] : by_port_) {  // std::map: already sorted
    util::put_u16(out, port);
    util::put_u64(out, count);
  }
  return out;
}

Result<void> NotaryDb::decode_state(ByteView data) {
  if (store_ != nullptr) {
    // A full-state snapshot into a spilled db would shadow the store's
    // index with nothing; the caller picked the wrong section for this
    // configuration.
    return state_error(
        "notary snapshot: full-state section offered to a store-backed db");
  }
  util::BinReader in(data);
  auto now_unix = in.i64();
  if (!now_unix.ok()) return now_unix.error();
  if (now_unix.value() != now_.to_unix()) {
    return state_error("notary snapshot taken at a different `now`");
  }
  auto sessions = in.u64();
  if (!sessions.ok()) return sessions.error();
  auto unexpired = in.u64();
  if (!unexpired.ok()) return unexpired.error();
  std::unordered_set<std::string> certs;
  if (auto ok = read_string_set(in, certs); !ok.ok()) return ok;
  std::unordered_set<std::string> identities;
  if (auto ok = read_string_set(in, identities); !ok.ok()) return ok;
  auto ports = in.count(/*min_bytes_per_element=*/10);  // u16 + u64
  if (!ports.ok()) return ports.error();
  std::map<std::uint16_t, std::uint64_t> by_port;
  for (std::size_t i = 0; i < ports.value(); ++i) {
    auto port = in.u16();
    if (!port.ok()) return port.error();
    auto count = in.u64();
    if (!count.ok()) return count.error();
    by_port[port.value()] = count.value();
  }
  if (auto ok = in.expect_end(); !ok.ok()) return ok;
  if (dense_) {
    // Convert to the dense arrays before committing anything, so a bad hex
    // key still leaves `this` untouched.
    std::vector<std::uint8_t> certs_dense;
    std::vector<std::uint8_t> identities_dense;
    if (auto ok = densify_set(certs, x509::cert_fingerprint_ids(), certs_dense);
        !ok.ok()) {
      return ok;
    }
    if (auto ok = densify_set(identities, x509::cert_identity_ids(),
                              identities_dense);
        !ok.ok()) {
      return ok;
    }
    sessions_ = sessions.value();
    unexpired_ = unexpired.value();
    unique_certs_dense_ = std::move(certs_dense);
    identities_dense_ = std::move(identities_dense);
    unique_count_ = certs.size();
    identity_count_ = identities.size();
    by_port_ = std::move(by_port);
    return {};
  }
  // Everything parsed — commit.
  sessions_ = sessions.value();
  unexpired_ = unexpired.value();
  unique_certs_ = std::move(certs);
  identities_ = std::move(identities);
  by_port_ = std::move(by_port);
  return {};
}

Bytes NotaryDb::encode_store_cursor(std::uint64_t store_seq) const {
  Bytes out;
  util::put_i64(out, now_.to_unix());
  util::put_u64(out, sessions_);
  util::put_u64(out, store_seq);
  util::put_u64(out, by_port_.size());
  for (const auto& [port, count] : by_port_) {  // std::map: already sorted
    util::put_u16(out, port);
    util::put_u64(out, count);
  }
  return out;
}

Result<std::uint64_t> NotaryDb::decode_store_cursor(ByteView data) {
  util::BinReader in(data);
  auto now_unix = in.i64();
  if (!now_unix.ok()) return now_unix.error();
  if (now_unix.value() != now_.to_unix()) {
    return state_error("notary store cursor taken at a different `now`");
  }
  auto sessions = in.u64();
  if (!sessions.ok()) return sessions.error();
  auto last_seq = in.u64();
  if (!last_seq.ok()) return last_seq.error();
  auto ports = in.count(/*min_bytes_per_element=*/10);  // u16 + u64
  if (!ports.ok()) return ports.error();
  std::map<std::uint16_t, std::uint64_t> by_port;
  for (std::size_t i = 0; i < ports.value(); ++i) {
    auto port = in.u16();
    if (!port.ok()) return port.error();
    auto count = in.u64();
    if (!count.ok()) return count.error();
    by_port[port.value()] = count.value();
  }
  if (auto ok = in.expect_end(); !ok.ok()) return ok.error();
  sessions_ = sessions.value();
  by_port_ = std::move(by_port);
  return last_seq.value();
}

}  // namespace tangled::notary
