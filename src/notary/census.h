// The §5.3 validation census: for every observed unexpired leaf certificate,
// build and verify its chain against the universe of known roots; record
// which root anchors it. From the per-root counts the census answers:
//
//  * Table 3 — how many Notary certificates each root *store* validates
//    (store membership by equivalence, so a Mozilla re-issue of an AOSP
//    root counts for Mozilla);
//  * Table 4 — per category, how many roots validate nothing;
//  * Figure 3 — the ECDF of per-root validated counts, plus the greedy
//    cumulative-coverage curve.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "notary/notary.h"
#include "pki/verify.h"
#include "rootstore/rootstore.h"

namespace tangled::notary {

class ValidationCensus {
 public:
  /// `anchors` must contain every root that could legitimately anchor a
  /// chain (AOSP + Mozilla-only + iOS7-only + non-AOSP catalog roots).
  explicit ValidationCensus(const pki::TrustAnchors& anchors,
                            pki::VerifyOptions options = {});

  /// Ingests one observation. Expired leaves are deduplicated/recorded but
  /// not counted toward validation (Table 3 counts unexpired certs only).
  void ingest(const Observation& observation);

  // --- Per-root results ---------------------------------------------------
  /// Number of distinct unexpired leaves this root validates (by the root's
  /// identity key, hex).
  std::uint64_t validated_by(const x509::Certificate& root) const;

  /// Total distinct unexpired leaves that some anchor validated.
  std::uint64_t total_validated() const { return total_validated_; }
  /// Distinct unexpired leaves seen (validated or not).
  std::uint64_t total_unexpired() const { return total_unexpired_; }

  // --- Per-store / per-category results -----------------------------------
  /// Table 3: leaves whose anchor is in `store` (by equivalence).
  std::uint64_t validated_by_store(const rootstore::RootStore& store) const;

  /// Per-root counts for an explicit set of roots (a Table 4 / Figure 3
  /// category), one entry per root, same order.
  std::vector<std::uint64_t> per_root_counts(
      const std::vector<x509::Certificate>& roots) const;

  /// Fraction of `roots` validating zero leaves (Table 4 right column).
  double zero_fraction(const std::vector<x509::Certificate>& roots) const;

  /// ECDF over per-root counts: sorted ascending counts; the caller plots
  /// (count, (i+1)/n). Figure 3's y-offset is zero_fraction().
  std::vector<std::uint64_t> ecdf_counts(
      const std::vector<x509::Certificate>& roots) const;

  /// Greedy cumulative coverage: roots sorted by validated count
  /// descending; entry i = total leaves validated by the first i+1 roots.
  /// With single-anchor chains this is the running sum of sorted counts.
  std::vector<std::uint64_t> cumulative_coverage(
      const std::vector<x509::Certificate>& roots) const;

 private:
  const pki::TrustAnchors& anchors_;
  pki::ChainVerifier verifier_;
  asn1::Time now_;
  std::unordered_set<std::string> seen_leaves_;          // fingerprint hex
  std::unordered_map<std::string, std::uint64_t> by_root_;  // anchor equivalence-key hex
  std::uint64_t total_validated_ = 0;
  std::uint64_t total_unexpired_ = 0;
};

}  // namespace tangled::notary
