// The §5.3 validation census: for every observed unexpired leaf certificate,
// build and verify its chain against the universe of known roots; record
// *every* root that anchors some valid path. From the per-root counts the
// census answers:
//
//  * Table 3 — how many Notary certificates each root *store* validates
//    (store membership by equivalence, so a Mozilla re-issue of an AOSP
//    root counts for Mozilla);
//  * Table 4 — per category, how many roots validate nothing;
//  * Figure 3 — the ECDF of per-root validated counts, plus the greedy
//    cumulative-coverage curve.
//
// Multi-anchor credit: a cross-signed hierarchy lets one leaf chain to
// several distinct anchors. The census records the full anchor *set* per
// leaf, so validated_by_store credits any store containing any of the
// leaf's valid anchors — but counts each leaf at most once per store.
//
// Parallel ingest: observations are routed to one of kShards shards by a
// hash of the leaf's DER, so a given leaf always lands in the same shard
// regardless of thread count. Each shard keeps its own dedup state and
// counts; results merge in shard order, making parallel ingest
// bit-identical to serial ingest over the same observations.
//
// Dedup is upgrade-aware: a leaf first observed with an incomplete chain
// (unvalidated) is re-tried when a later observation arrives with better
// intermediates, and credited once it validates. A validated leaf is never
// re-tried and never downgraded, so the census converges to the same
// counts whichever observation happened to arrive first with the missing
// intermediate.
//
// The census owns a pki::VerifyCache shared by every shard: the same
// intermediate→issuer signature links recur under thousands of leaves, and
// memoizing them roughly halves ingest wall time without changing a single
// count (see DESIGN.md "Verification cache"). Disable with
// VerifyOptions::use_verify_cache = false or TANGLED_VERIFY_CACHE=0.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "notary/notary.h"
#include "pki/verify.h"
#include "pki/verify_cache.h"
#include "rootstore/rootstore.h"
#include "util/thread_pool.h"

namespace tangled::notary {

/// Decision-trace sampling knobs (see ValidationCensus::enable_trace_sampling).
struct TraceSampleConfig {
  /// Keep the first `per_cell` traces for each (store, verdict) cell.
  std::size_t per_cell = 2;
};

/// One sampled audit record: which Table-3 cell it explains (store name +
/// verdict) and the full pki::DecisionTrace of the replayed verification.
/// Failure cells use store == "" — a failed leaf validates for no store —
/// and verdict == to_string of the terminal Errc.
struct SampledTrace {
  std::string store;
  std::string verdict;
  pki::DecisionTrace trace;
};

class ValidationCensus {
 public:
  /// Shard count for parallel ingest. Fixed (not thread-count-derived) so
  /// shard assignment — and therefore every count — is identical for any
  /// TANGLED_THREADS value.
  static constexpr std::size_t kShards = 64;

  /// `anchors` must contain every root that could legitimately anchor a
  /// chain (AOSP + Mozilla-only + iOS7-only + non-AOSP catalog roots).
  explicit ValidationCensus(const pki::TrustAnchors& anchors,
                            pki::VerifyOptions options = {});

  /// Spill mode: journal every leaf-state transition (seen, validated) as
  /// a kFlag record in the store, and checkpoint only a store cursor plus
  /// the per-root aggregates instead of the full per-leaf list — snapshot
  /// bytes stop growing with the corpus. The in-memory dedup arrays stay
  /// authoritative on the hot path; the journal exists so decode_state can
  /// rebuild them by replay. Non-owning; attach before the first ingest.
  /// Transitions are monotone (0 → seen → validated, at most two records
  /// per leaf ever), so replay is order-insensitive max-wins.
  void attach_store(store::CertStore* store) { store_ = store; }
  store::CertStore* attached_store() const { return store_; }

  /// Ingests one observation. Expired leaves are deduplicated/recorded but
  /// not counted toward validation (Table 3 counts unexpired certs only).
  /// A leaf seen before but not yet validated is re-tried with this
  /// observation's intermediates (upgrade-aware dedup).
  void ingest(const Observation& observation);

  /// Ingests a batch, sharded across `pool`. Equivalent to calling
  /// ingest() on each element in order: a leaf's shard depends only on its
  /// bytes, and each shard processes its observations in arrival order, so
  /// every query result is bit-identical to the serial path. With a
  /// zero-worker pool the batch is simply processed inline.
  void ingest_batch(std::span<const Observation> batch,
                    util::ThreadPool& pool);

  // --- Decision-trace sampling -------------------------------------------
  /// Opt into audit-trace sampling: for each (store, verdict) Table-3 cell,
  /// the census keeps the first `config.per_cell` DecisionTraces explaining
  /// that cell. Sampling is two-pass — the hot path verifies untraced
  /// exactly as before, and only an observation whose cell still needs a
  /// sample is re-verified with a trace attached (the shared VerifyCache
  /// makes the replay cheap; the search is deterministic, so the replay's
  /// verdict matches the counted one). Results and counts are unaffected;
  /// no DecisionTrace is ever constructed while sampling is disabled.
  /// Call before ingest; `stores` must outlive the census's use of them
  /// (only names and equivalence keys are copied, so pointers may dangle
  /// afterwards — they are not retained).
  void enable_trace_sampling(
      const std::vector<const rootstore::RootStore*>& stores,
      TraceSampleConfig config = {});
  /// Stops sampling and drops collected traces.
  void disable_trace_sampling();
  bool trace_sampling_enabled() const { return sampling_.has_value(); }

  /// Merged view of the collected samples: shards in order, arrival order
  /// within a shard, globally capped at per_cell traces per cell. Pointers
  /// are valid until the next ingest/enable/disable call.
  std::vector<const SampledTrace*> sampled_traces() const;
  /// JSON array of {store, verdict, trace} for the sampled cells.
  std::string sampled_traces_json() const;

  /// The verify policy this census validates under. The serve layer reads
  /// it to refuse running without a per-submission pki::ResourceBudget.
  const pki::VerifyOptions& options() const { return verifier_.options(); }

  /// The census's shared link-signature cache, for hit-rate telemetry;
  /// nullptr when caching is disabled.
  const pki::VerifyCache* verify_cache() const { return cache_.get(); }
  /// Mutable access for the recover snapshot's warm-cache restore.
  pki::VerifyCache* verify_cache_mutable() { return cache_.get(); }

  // --- Snapshot codec (recover::snapshot) ---------------------------------
  /// Serializes every shard's accumulators (dedup state, per-root counts,
  /// anchor sets in arrival order, totals). Unordered-map keys are sorted
  /// first so equal census states always encode to equal bytes. In spill
  /// mode this samples the attached store's current sequence as the
  /// journal-replay cursor.
  Bytes encode_state() const;
  /// Spill-mode variant taking the replay cursor explicitly: checkpoints
  /// pass the sequence they sampled right after flushing the store, so the
  /// census section and the notary cursor of one snapshot reference the
  /// same durable prefix even under concurrent ingest. Encodes identically
  /// to encode_state() when `spill_cursor_seq` equals the store's seq.
  Bytes encode_state(std::uint64_t spill_cursor_seq) const;
  /// All-or-nothing restore: decodes into temporary shards and swaps them
  /// in only when the whole buffer parses, so a corrupt payload leaves the
  /// census untouched. The anchor-set index is rebuilt, merged() re-derives.
  Result<void> decode_state(ByteView data);
  /// SHA-256 (hex) over the anchor universe and the result-affecting verify
  /// options. A snapshot is only valid against the exact configuration that
  /// produced it — restoring counts under different anchors or policy would
  /// silently skew every table — so recover stores this fingerprint in the
  /// cursor section and refuses a mismatch. The wall-clock deadline is
  /// excluded: it is explicitly nondeterministic and not part of the
  /// result contract.
  std::string context_fingerprint() const;

  // --- Per-root results ---------------------------------------------------
  /// Number of distinct unexpired leaves this root validates (by the root's
  /// equivalence key). A cross-signed leaf counts for each root that can
  /// anchor it.
  std::uint64_t validated_by(const x509::Certificate& root) const;

  /// Total distinct unexpired leaves that some anchor validated.
  std::uint64_t total_validated() const;
  /// Distinct unexpired leaves seen (validated or not).
  std::uint64_t total_unexpired() const;

  // --- Per-store / per-category results -----------------------------------
  /// Table 3: leaves with at least one valid anchor in `store` (by
  /// equivalence). Each leaf counts once per store even when the store
  /// holds several of its anchors.
  std::uint64_t validated_by_store(const rootstore::RootStore& store) const;

  /// Per-root counts for an explicit set of roots (a Table 4 / Figure 3
  /// category), one entry per root, same order.
  std::vector<std::uint64_t> per_root_counts(
      const std::vector<x509::Certificate>& roots) const;

  /// Fraction of `roots` validating zero leaves (Table 4 right column).
  double zero_fraction(const std::vector<x509::Certificate>& roots) const;

  /// ECDF over per-root counts: sorted ascending counts; the caller plots
  /// (count, (i+1)/n). Figure 3's y-offset is zero_fraction().
  std::vector<std::uint64_t> ecdf_counts(
      const std::vector<x509::Certificate>& roots) const;

  /// Greedy cumulative coverage: entry i = distinct leaves validated by
  /// the best i+1 roots, chosen greedily by marginal gain (ties broken by
  /// position in `roots`). Set-union semantics: a leaf two chosen roots
  /// both validate is counted once, so the curve is the true "how much of
  /// the corpus do the top-k roots cover" of Figure 3.
  std::vector<std::uint64_t> cumulative_coverage(
      const std::vector<x509::Certificate>& roots) const;

 private:
  /// One leaf's distinct valid-anchor equivalence keys (sorted hex) and
  /// how many leaves share exactly this set.
  struct AnchorSetEntry {
    std::vector<std::string> keys;
    std::uint64_t count = 0;
  };

  /// Transparent hashing so the ingest hot path can probe string-keyed maps
  /// with string_views into the certificates' interned hex — no per-anchor
  /// key copies; an owning std::string is built only on first insert.
  struct TransparentStringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  using KeyCountMap = std::unordered_map<std::string, std::uint64_t,
                                         TransparentStringHash,
                                         std::equal_to<>>;

  /// fnv1a over a sorted dense-id vector (the dense-mode anchor-set key).
  struct IdSetHash {
    std::size_t operator()(const std::vector<std::uint32_t>& ids) const noexcept {
      std::uint64_t h = 1469598103934665603ULL;
      for (const std::uint32_t id : ids) {
        h ^= id;
        h *= 1099511628211ULL;
      }
      return static_cast<std::size_t>(h);
    }
  };

  /// Per-shard census state. Shards never share mutable state (the
  /// verify cache they share is internally synchronized), so ingest_batch
  /// can fill all of them concurrently.
  struct Shard {
    /// Leaf fingerprint hex → validated yet? False entries are retried on
    /// the leaf's next observation; true entries are final.
    std::unordered_map<std::string, bool> leaf_state;
    KeyCountMap by_root;  // equivalence hex
    std::vector<AnchorSetEntry> anchor_sets;      // arrival order
    std::unordered_map<std::string, std::size_t> anchor_set_index;  // joined keys
    // --- Dense-id accumulators (TANGLED_DENSE_IDS) ------------------------
    // Used instead of the string-keyed maps above when the census latched
    // dense mode: ingest indexes flat arrays by interned id (leaf state by
    // dense_id, per-root counts by equivalence_id) and keys the anchor-set
    // memo on the sorted id vector. encode_state and merged() normalize
    // back to the sorted-hex canonical form through the interners' reverse
    // tables, so snapshots and every query are byte-identical across modes.
    std::vector<std::uint8_t> leaf_state_dense;  // 0 unseen / 1 seen / 2 valid
    std::vector<std::uint64_t> by_root_dense;    // count by equivalence_id
    std::unordered_map<std::vector<std::uint32_t>, std::size_t, IdSetHash>
        anchor_set_index_dense;  // sorted equivalence ids
    std::uint64_t total_validated = 0;
    std::uint64_t total_unexpired = 0;
    // Per-ingest scratch (each shard is ingested by one thread at a time);
    // capacity is reused across observations instead of reallocated.
    std::vector<std::string_view> scratch_keys;
    std::vector<std::uint32_t> scratch_ids;
    std::string scratch_joined;
    // --- Decision-trace sampling (empty unless enabled) -------------------
    /// "|errc" → failure samples taken in this shard. Each shard samples up
    /// to per_cell per cell independently (no cross-shard coordination on
    /// the ingest path); sampled_traces() re-caps globally on merge.
    std::unordered_map<std::string, std::size_t> trace_cells;
    /// Validated samples taken per store (indexed like
    /// TraceSampling::store_names) — a flat counter read, no string build,
    /// no map probe on the hot path.
    std::vector<std::size_t> validated_taken;
    std::vector<SampledTrace> traces;  // arrival order
    /// (store, "validated") cells in this shard still below quota. Once 0,
    /// validated observations skip store classification entirely, so the
    /// steady-state sampling cost on a hot shard is one integer test.
    std::size_t open_validated_cells = 0;
    // Sampling scratch, reused across observations like the keys above.
    std::vector<std::size_t> scratch_needing;
    std::string scratch_cell;
  };

  /// Shard states merged in shard order; rebuilt lazily after ingest.
  struct Merged {
    KeyCountMap by_root;
    std::vector<AnchorSetEntry> anchor_sets;
    std::uint64_t total_validated = 0;
    std::uint64_t total_unexpired = 0;
  };

  /// Store identities sampled against: parallel name/key-set vectors copied
  /// out of the RootStores handed to enable_trace_sampling.
  struct TraceSampling {
    TraceSampleConfig config;
    std::vector<std::string> store_names;
    std::vector<std::unordered_set<std::string>> store_keys;  // equivalence
    /// Anchor equivalence key → bitmask of the first 64 stores containing
    /// it. One transparent lookup classifies a validated leaf against every
    /// store at once — the hot path never allocates a key copy. Stores past
    /// bit 63 (unrealistic for Table 3) fall back to store_keys.
    std::unordered_map<std::string, std::uint64_t, TransparentStringHash,
                       std::equal_to<>>
        key_store_mask;
    /// Global per-cell quotas shared across shards, so the number of traced
    /// replays is bounded by per_cell × cells, not × shards. A shard whose
    /// cell is globally full closes it locally and never looks again.
    /// Relaxed races under parallel ingest can briefly over-sample;
    /// sampled_traces() re-caps on merge. unique_ptrs keep the struct
    /// movable (atomics and mutexes are not).
    std::unique_ptr<std::vector<std::atomic<std::size_t>>> validated_global;
    std::unique_ptr<std::mutex> failure_mutex;
    std::unique_ptr<std::unordered_map<std::string, std::size_t>>
        failure_global;
  };

  std::size_t shard_of(const x509::Certificate& leaf) const;
  void ingest_into(Shard& shard, const Observation& observation);
  void sample_failure_trace(Shard& shard, const Observation& observation,
                            const Error& error);
  void sample_validated_trace(Shard& shard, const Observation& observation,
                              std::span<const std::string_view> anchor_keys);
  const Merged& merged() const;

  const pki::TrustAnchors& anchors_;
  /// Latched at construction from TANGLED_DENSE_IDS: routes ingest through
  /// the Shard dense-id accumulators. When trace sampling is also enabled
  /// the dense path additionally materializes the hex key list the sampler
  /// consumes (sampling is diagnostic-rate, so the extra copies are cold).
  const bool dense_;
  /// Shared link-signature memo, created unless VerifyOptions or the
  /// TANGLED_VERIFY_CACHE env knob turns it off. Declared before the
  /// verifier that borrows it.
  std::unique_ptr<pki::VerifyCache> cache_;
  pki::ChainVerifier verifier_;
  asn1::Time now_;
  std::int64_t now_unix_ = 0;  // now_ converted once, for the expiry gate
  std::vector<Shard> shards_;
  mutable std::optional<Merged> merged_;  // query-side cache
  std::optional<TraceSampling> sampling_;
  store::CertStore* store_ = nullptr;  // spill mode when non-null
  /// Observations handed to ingest()/ingest_batch(), for the flight
  /// recorder's batch-progress events. Diagnostic only — not snapshotted.
  std::uint64_t observations_ingested_ = 0;
};

}  // namespace tangled::notary
