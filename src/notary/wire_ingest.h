// Bridges raw TLS captures into the Notary: run the passive certificate
// extractor over a capture and, when a chain surfaces, record it as an
// Observation — the full "live upstream traffic" pipeline of §4.2.
#pragma once

#include "notary/census.h"
#include "notary/notary.h"
#include "tlswire/extractor.h"

namespace tangled::notary {

struct WireIngestResult {
  bool chain_observed = false;
  std::optional<std::string> sni;
  /// Set when the capture went bad *after* a complete chain had been
  /// extracted (trailing garbage, a corrupt close, mid-stream junk): the
  /// chain is salvaged and recorded, and the fault is reported here as
  /// non-fatal instead of failing the whole capture.
  std::optional<Error> flow_fault;
};

/// Parses `capture` (one connection's plaintext handshake bytes) and, on
/// success, feeds the presented chain into `db` and optionally `census`.
/// A capture that breaks before any chain surfaced returns an error; one
/// that breaks after still observes the chain (see WireIngestResult).
Result<WireIngestResult> ingest_capture(NotaryDb& db, ValidationCensus* census,
                                        ByteView capture, std::uint16_t port);

}  // namespace tangled::notary
