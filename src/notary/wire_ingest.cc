#include "notary/wire_ingest.h"

#include "obs/obs.h"

namespace tangled::notary {

Result<WireIngestResult> ingest_capture(NotaryDb& db, ValidationCensus* census,
                                        ByteView capture, std::uint16_t port) {
  tlswire::CertificateExtractor extractor;
  const auto fed = extractor.feed(capture);

  WireIngestResult result;
  result.sni = extractor.session().sni;
  if (!fed.ok()) {
    // A fully-extracted chain survives trailing garbage: a passive observer
    // keeps what the handshake already delivered and downgrades the fault
    // to a per-flow diagnostic.
    if (!extractor.has_chain()) return fed.error();
    TANGLED_OBS_INC("notary.wire_ingest.salvaged_chains");
    result.flow_fault = fed.error();
  }
  if (!extractor.has_chain()) return result;

  Observation observation;
  observation.chain = extractor.session().chain;
  observation.port = port;
  db.observe(observation);
  if (census != nullptr) census->ingest(observation);
  result.chain_observed = true;
  return result;
}

}  // namespace tangled::notary
