#include "notary/wire_ingest.h"

namespace tangled::notary {

Result<WireIngestResult> ingest_capture(NotaryDb& db, ValidationCensus* census,
                                        ByteView capture, std::uint16_t port) {
  tlswire::CertificateExtractor extractor;
  if (auto fed = extractor.feed(capture); !fed.ok()) return fed.error();

  WireIngestResult result;
  result.sni = extractor.session().sni;
  if (!extractor.has_chain()) return result;

  Observation observation;
  observation.chain = extractor.session().chain;
  observation.port = port;
  db.observe(observation);
  if (census != nullptr) census->ingest(observation);
  result.chain_observed = true;
  return result;
}

}  // namespace tangled::notary
