// The ICSI-Certificate-Notary-style passive observation store (§4.2): it
// ingests presented certificate chains from "live traffic" (the synthetic
// corpus), deduplicates certificates, tracks which certificates (including
// which *root* certificates) have ever been seen on the wire, and counts
// sessions per port.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "asn1/time.h"
#include "store/cert_store.h"
#include "util/bytes.h"
#include "util/result.h"
#include "x509/certificate.h"

namespace tangled::notary {

/// One presented chain, leaf first (as a TLS server would send it).
struct Observation {
  std::vector<x509::Certificate> chain;
  std::uint16_t port = 443;
};

class NotaryDb {
 public:
  explicit NotaryDb(asn1::Time now = asn1::make_time(2014, 4, 1));

  /// Spill mode: route certificate state through a disk-backed store
  /// instead of in-memory dedup sets. The store's index answers "seen
  /// before?", its log holds the DER, and this object keeps only the tiny
  /// session/port tallies — so the corpus no longer has to fit in RAM.
  /// Non-owning; the store must outlive the db. Attach before the first
  /// observe (the modes do not mix within one db's lifetime).
  void attach_store(store::CertStore* store) { store_ = store; }
  store::CertStore* attached_store() const { return store_; }

  /// Ingests one observed session's chain.
  void observe(const Observation& observation);

  // --- Aggregates --------------------------------------------------------
  std::uint64_t session_count() const { return sessions_; }
  std::size_t unique_cert_count() const {
    if (store_ != nullptr) return store_->live_count();
    return dense_ ? unique_count_ : unique_certs_.size();
  }
  std::size_t unexpired_unique_cert_count() const {
    if (store_ != nullptr) {
      return store_->live_unexpired_count(now_.to_unix());
    }
    return unexpired_;
  }

  /// Whether a certificate with this identity key was ever observed —
  /// the paper's "recorded by the ICSI Notary" notion (Figure 2 legend).
  bool recorded(const x509::Certificate& cert) const;
  bool recorded_identity(ByteView identity_key) const;

  /// Sessions per port (the Notary watches all ports, §4.2).
  const std::map<std::uint16_t, std::uint64_t>& sessions_by_port() const {
    return by_port_;
  }

  const asn1::Time& now() const { return now_; }

  // --- Snapshot codec (recover::snapshot) ---------------------------------
  /// Serializes the whole observation state. Set iteration order is not
  /// deterministic, so keys are sorted first: equal states always encode to
  /// equal bytes, which lets the checkpoint tests compare snapshots
  /// directly.
  Bytes encode_state() const;
  /// All-or-nothing restore: decodes into temporaries and commits only when
  /// the whole buffer parses, so a corrupt payload leaves `this` untouched.
  /// Refuses (kInvalidState) a snapshot taken under a different `now` —
  /// the expiry gate would reclassify certificates.
  Result<void> decode_state(ByteView data);

  // --- Spill-mode checkpoint cursor ---------------------------------------
  /// Spill-mode replacement for encode_state's full serialization: the
  /// store already holds every certificate durably, so the checkpoint
  /// records only {now, sessions, store cursor, ports} — bytes stay flat
  /// as the corpus grows. `store_seq` is the store sequence the caller
  /// sampled right after flushing — passed in (rather than re-sampled
  /// here) so every section of one snapshot references the same durable
  /// prefix even when ingest keeps appending concurrently.
  Bytes encode_store_cursor(std::uint64_t store_seq) const;
  /// Restores the session/port tallies and returns the recorded store
  /// cursor for the caller to validate against the store's clean prefix.
  /// Same refusals as decode_state (different `now` is kInvalidState).
  Result<std::uint64_t> decode_store_cursor(ByteView data);

 private:
  asn1::Time now_;
  std::uint64_t sessions_ = 0;
  std::size_t unexpired_ = 0;
  /// Latched at construction from TANGLED_DENSE_IDS (non-const only so
  /// move assignment — checkpoint resume swaps in a staged db — stays
  /// available; nothing mutates it after construction). Dense mode replaces
  /// the hex-string dedup sets with flat byte arrays indexed by interned
  /// certificate ids; encode_state normalizes back to the sorted-hex form,
  /// so snapshots and every aggregate are byte-identical across modes.
  bool dense_;
  std::unordered_set<std::string> unique_certs_;  // fingerprint hex
  std::unordered_set<std::string> identities_;    // identity-key hex
  std::vector<std::uint8_t> unique_certs_dense_;  // by dense_id
  std::vector<std::uint8_t> identities_dense_;    // by identity_id
  std::size_t unique_count_ = 0;                  // dense-mode set sizes
  std::size_t identity_count_ = 0;
  std::map<std::uint16_t, std::uint64_t> by_port_;
  store::CertStore* store_ = nullptr;  // spill mode when non-null
};

}  // namespace tangled::notary
