#include "notary/census.h"

#include <algorithm>
#include <functional>

#include "obs/obs.h"

namespace tangled::notary {

ValidationCensus::ValidationCensus(const pki::TrustAnchors& anchors,
                                   pki::VerifyOptions options)
    : anchors_(anchors), verifier_(anchors, options), now_(options.at) {}

void ValidationCensus::ingest(const Observation& observation) {
  TANGLED_OBS_INC("notary.census.ingested");
  if (observation.chain.empty()) {
    TANGLED_OBS_INC("notary.census.empty_chains");
    return;
  }
  const x509::Certificate& leaf = observation.chain.front();
  if (leaf.expired_at(now_)) {  // census covers unexpired certs only
    TANGLED_OBS_INC("notary.census.expired_skipped");
    return;
  }
  const std::string fp = to_hex(leaf.fingerprint_sha256());
  if (!seen_leaves_.insert(fp).second) {  // already counted
    TANGLED_OBS_INC("notary.census.dedup_skipped");
    return;
  }
  ++total_unexpired_;

  const std::vector<x509::Certificate> intermediates(
      observation.chain.begin() + 1, observation.chain.end());
  auto chain = verifier_.verify(leaf, intermediates);
  if (!chain.ok()) {
    TANGLED_OBS_INC("notary.census.unvalidated");
    return;
  }
  TANGLED_OBS_INC("notary.census.validated");
  ++total_validated_;
  const std::string anchor_key =
      to_hex(chain.value().anchor().equivalence_key());
  ++by_root_[anchor_key];
}

std::uint64_t ValidationCensus::validated_by(
    const x509::Certificate& root) const {
  const auto it = by_root_.find(to_hex(root.equivalence_key()));
  return it == by_root_.end() ? 0 : it->second;
}

std::uint64_t ValidationCensus::validated_by_store(
    const rootstore::RootStore& store) const {
  std::uint64_t total = 0;
  std::unordered_set<std::string> counted;  // guard against equivalent pairs
  for (const auto& cert : store.certificates()) {
    const std::string key = to_hex(cert.equivalence_key());
    if (!counted.insert(key).second) continue;
    const auto it = by_root_.find(key);
    if (it != by_root_.end()) total += it->second;
  }
  return total;
}

std::vector<std::uint64_t> ValidationCensus::per_root_counts(
    const std::vector<x509::Certificate>& roots) const {
  std::vector<std::uint64_t> out;
  out.reserve(roots.size());
  for (const auto& root : roots) out.push_back(validated_by(root));
  return out;
}

double ValidationCensus::zero_fraction(
    const std::vector<x509::Certificate>& roots) const {
  if (roots.empty()) return 0.0;
  std::size_t zero = 0;
  for (const auto& root : roots) {
    if (validated_by(root) == 0) ++zero;
  }
  return static_cast<double>(zero) / static_cast<double>(roots.size());
}

std::vector<std::uint64_t> ValidationCensus::ecdf_counts(
    const std::vector<x509::Certificate>& roots) const {
  std::vector<std::uint64_t> counts = per_root_counts(roots);
  std::sort(counts.begin(), counts.end());
  return counts;
}

std::vector<std::uint64_t> ValidationCensus::cumulative_coverage(
    const std::vector<x509::Certificate>& roots) const {
  std::vector<std::uint64_t> counts = per_root_counts(roots);
  std::sort(counts.begin(), counts.end(), std::greater<>());
  std::uint64_t running = 0;
  for (auto& c : counts) {
    running += c;
    c = running;
  }
  return counts;
}

}  // namespace tangled::notary
