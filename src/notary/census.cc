#include "notary/census.h"

#include <algorithm>
#include <array>
#include <string_view>
#include <tuple>
#include <unordered_set>
#include <utility>

#include "crypto/hash.h"
#include "obs/obs.h"
#include "util/binio.h"
#include "util/features.h"

namespace tangled::notary {

namespace {

/// The census only consumes anchor sets, so it never pays for a per-leaf
/// copy of the winning chain.
pki::VerifyOptions census_options(pki::VerifyOptions options) {
  options.collect_chain = false;
  return options;
}

}  // namespace

ValidationCensus::ValidationCensus(const pki::TrustAnchors& anchors,
                                   pki::VerifyOptions options)
    : anchors_(anchors),
      dense_(util::dense_ids_enabled()),
      verifier_(anchors, census_options(options)),
      now_(options.at),
      now_unix_(options.at.to_unix()),
      shards_(kShards) {
  if (options.use_verify_cache && pki::verify_cache_env_enabled()) {
    cache_ = std::make_unique<pki::VerifyCache>();
    verifier_.set_verify_cache(cache_.get());
  }
}

std::size_t ValidationCensus::shard_of(const x509::Certificate& leaf) const {
  return static_cast<std::size_t>(leaf.der_hash()) % kShards;
}

void ValidationCensus::enable_trace_sampling(
    const std::vector<const rootstore::RootStore*>& stores,
    TraceSampleConfig config) {
  TraceSampling sampling;
  sampling.config = config;
  sampling.store_names.reserve(stores.size());
  sampling.store_keys.reserve(stores.size());
  for (const rootstore::RootStore* store : stores) {
    const std::size_t s = sampling.store_names.size();
    sampling.store_names.push_back(store->name());
    std::unordered_set<std::string> keys;
    for (const auto& cert : store->certificates()) {
      keys.insert(cert.equivalence_hex());
      if (s < 64) {
        sampling.key_store_mask[cert.equivalence_hex()] |= std::uint64_t{1}
                                                           << s;
      }
    }
    sampling.store_keys.push_back(std::move(keys));
  }
  sampling.validated_global =
      std::make_unique<std::vector<std::atomic<std::size_t>>>(
          sampling.store_names.size());
  sampling.failure_mutex = std::make_unique<std::mutex>();
  sampling.failure_global =
      std::make_unique<std::unordered_map<std::string, std::size_t>>();
  sampling_ = std::move(sampling);
  for (Shard& shard : shards_) {
    shard.trace_cells.clear();
    shard.traces.clear();
    shard.validated_taken.assign(sampling_->store_names.size(), 0);
    shard.open_validated_cells = sampling_->store_names.size();
  }
}

void ValidationCensus::disable_trace_sampling() {
  sampling_.reset();
  for (Shard& shard : shards_) {
    shard.trace_cells.clear();
    shard.traces.clear();
    shard.validated_taken.clear();
    shard.open_validated_cells = 0;
  }
}

void ValidationCensus::sample_failure_trace(Shard& shard,
                                            const Observation& observation,
                                            const Error& error) {
  const std::string_view verdict = to_string(error.code);
  std::string& cell = shard.scratch_cell;
  cell.assign("|");  // failure cells carry the empty store name
  cell += verdict;
  std::size_t& taken = shard.trace_cells[cell];
  if (taken >= sampling_->config.per_cell) return;
  {
    // Shard-local quota not yet spent: consult the shared quota. A globally
    // full cell is closed locally too, so this lock is taken at most
    // per_cell times per cell per shard, never in steady state.
    const std::lock_guard<std::mutex> lock(*sampling_->failure_mutex);
    std::size_t& global_taken = (*sampling_->failure_global)[cell];
    if (global_taken >= sampling_->config.per_cell) {
      taken = sampling_->config.per_cell;
      return;
    }
    ++global_taken;
  }
  SampledTrace sample;
  sample.store = "";
  sample.verdict.assign(verdict);
  // Replay with the trace attached. The search is deterministic and the
  // replay reuses the shared VerifyCache, so this re-derives the verdict
  // the census just counted — now with the full decision record.
  (void)verifier_.verify_all_anchors(
      observation.chain.front(),
      std::span<const x509::Certificate>(observation.chain).subspan(1),
      &sample.trace);
  ++taken;
  TANGLED_OBS_INC("notary.census.traces_sampled");
  shard.traces.push_back(std::move(sample));
}

void ValidationCensus::sample_validated_trace(
    Shard& shard, const Observation& observation,
    std::span<const std::string_view> anchor_keys) {
  if (shard.open_validated_cells == 0) return;
  const TraceSampling& sampling = *sampling_;
  if (sampling.config.per_cell == 0) return;
  // Classify the leaf against every store in one pass: OR together the
  // per-key store masks. No string is built and no key is copied here —
  // this runs for every validated observation until the shard's cells fill.
  std::uint64_t member_mask = 0;
  for (const std::string_view key : anchor_keys) {
    if (const auto it = sampling.key_store_mask.find(key);
        it != sampling.key_store_mask.end()) {
      member_mask |= it->second;
    }
  }
  if (member_mask == 0 && sampling.store_names.size() <= 64) return;
  // Which still-open (store, "validated") cells does this leaf belong to?
  // A cell whose *global* quota is spent closes locally as well, so the
  // replay count is bounded by per_cell × cells across the whole census,
  // not per shard.
  std::vector<std::size_t>& needing = shard.scratch_needing;
  needing.clear();
  for (std::size_t s = 0; s < sampling.store_names.size(); ++s) {
    std::size_t& local_taken = shard.validated_taken[s];
    if (local_taken >= sampling.config.per_cell) continue;
    const bool member =
        s < 64 ? ((member_mask >> s) & 1) != 0
               : [&] {
                   for (const std::string_view key : anchor_keys) {
                     if (sampling.store_keys[s].contains(std::string(key))) {
                       return true;
                     }
                   }
                   return false;
                 }();
    if (!member) continue;
    if ((*sampling.validated_global)[s].load(std::memory_order_relaxed) >=
        sampling.config.per_cell) {
      local_taken = sampling.config.per_cell;
      --shard.open_validated_cells;
      continue;
    }
    needing.push_back(s);
  }
  if (needing.empty()) return;
  // One traced replay serves every cell this observation can fill.
  pki::DecisionTrace trace;
  (void)verifier_.verify_all_anchors(
      observation.chain.front(),
      std::span<const x509::Certificate>(observation.chain).subspan(1),
      &trace);
  for (const std::size_t s : needing) {
    std::size_t& taken = shard.validated_taken[s];
    ++taken;
    if (taken == sampling.config.per_cell) --shard.open_validated_cells;
    (*sampling.validated_global)[s].fetch_add(1, std::memory_order_relaxed);
    TANGLED_OBS_INC("notary.census.traces_sampled");
    shard.traces.push_back({sampling.store_names[s], "validated", trace});
  }
}

void ValidationCensus::ingest(const Observation& observation) {
  merged_.reset();
  ++observations_ingested_;
  if (observation.chain.empty()) {
    TANGLED_OBS_INC("notary.census.ingested");
    TANGLED_OBS_INC("notary.census.empty_chains");
    return;
  }
  ingest_into(shards_[shard_of(observation.chain.front())], observation);
}

void ValidationCensus::ingest_batch(std::span<const Observation> batch,
                                    util::ThreadPool& pool) {
  merged_.reset();
  TANGLED_OBS_INC("notary.census.parallel.batches");
  TANGLED_OBS_OBSERVE_COUNT("notary.census.parallel.batch_items", batch.size());
  TANGLED_OBS_SCOPED_TIMER("notary.census.parallel.ingest_us");

  // Route serially so each shard's list preserves arrival order; an
  // empty-chain observation belongs to no shard.
  std::array<std::vector<std::size_t>, kShards> routed;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].chain.empty()) {
      TANGLED_OBS_INC("notary.census.ingested");
      TANGLED_OBS_INC("notary.census.empty_chains");
      continue;
    }
    routed[shard_of(batch[i].chain.front())].push_back(i);
  }

  util::parallel_for(pool, kShards, [&](std::size_t s) {
    for (const std::size_t i : routed[s]) ingest_into(shards_[s], batch[i]);
  });
  observations_ingested_ += batch.size();
  // Direct recorder call (not TANGLED_OBS_EVENT): one event per batch is
  // cold, and an OBS=OFF build still wants batch progress in post-mortems.
  obs::flight_recorder().record(obs::FlightEventKind::kCensusBatch,
                                batch.size(), observations_ingested_);
}

void ValidationCensus::ingest_into(Shard& shard,
                                   const Observation& observation) {
  TANGLED_OBS_INC("notary.census.ingested");
  const x509::Certificate& leaf = observation.chain.front();
  if (leaf.expired_at_unix(now_unix_)) {  // census covers unexpired certs only
    TANGLED_OBS_INC("notary.census.expired_skipped");
    return;
  }
  // Upgrade-aware dedup: a validated leaf is final; an unvalidated one is
  // retried with this observation's intermediates — a later chain may carry
  // the cross-signing certificate the first one lacked. Dense mode tracks
  // the same three states in a flat array indexed by the leaf's interned
  // id instead of probing the hex-keyed map.
  std::uint8_t* dense_state = nullptr;
  std::unordered_map<std::string, bool>::iterator wide_state;
  bool first_seen = false;
  if (dense_) {
    const std::uint32_t id = leaf.dense_id();
    if (id >= shard.leaf_state_dense.size()) {
      shard.leaf_state_dense.resize(id + 1, 0);
    }
    dense_state = &shard.leaf_state_dense[id];
    if (*dense_state == 2) {
      TANGLED_OBS_INC("notary.census.dedup_skipped");
      return;
    }
    first_seen = *dense_state == 0;
    if (first_seen) *dense_state = 1;
  } else {
    bool inserted = false;
    std::tie(wide_state, inserted) =
        shard.leaf_state.try_emplace(leaf.fingerprint_hex(), false);
    if (!inserted && wide_state->second) {
      TANGLED_OBS_INC("notary.census.dedup_skipped");
      return;
    }
    first_seen = inserted;
  }
  if (first_seen) ++shard.total_unexpired;
  else TANGLED_OBS_INC("notary.census.revalidation_attempts");

  // Spill mode: journal the transition so a resume can replay this
  // shard's dedup state from the store instead of a snapshotted leaf
  // list. The store serializes appends internally, so concurrent shard
  // ingest threads can all journal.
  const auto journal = [&](std::uint8_t flags) {
    if (store_ == nullptr) return;
    const auto shard_index =
        static_cast<std::uint8_t>(&shard - shards_.data());
    if (!store_->journal_flag(leaf.fingerprint_sha256(), shard_index, flags)
             .ok()) {
      TANGLED_OBS_INC("notary.census.flag_journal_errors");
    }
  };
  if (first_seen) journal(1);

  auto survey = verifier_.verify_all_anchors(
      leaf, std::span<const x509::Certificate>(observation.chain).subspan(1));
  if (!survey.ok()) {
    // A budget-exhausted leaf stays unvalidated — like a missing
    // intermediate, it is retried on its next observation, so the census
    // degrades deterministically instead of stalling on a hostile mesh.
    if (survey.error().code == Errc::kBudgetExhausted) {
      TANGLED_OBS_INC("notary.census.budget_exhausted");
    }
    if (first_seen) TANGLED_OBS_INC("notary.census.unvalidated");
    if (sampling_.has_value()) {
      sample_failure_trace(shard, observation, survey.error());
    }
    return;
  }
  if (survey.value().budget_exhausted) {
    TANGLED_OBS_INC("notary.census.budget_exhausted");
  }
  if (dense_) *dense_state = 2;
  else wide_state->second = true;
  journal(2);
  if (!first_seen) TANGLED_OBS_INC("notary.census.upgraded");
  TANGLED_OBS_INC("notary.census.validated");
  ++shard.total_validated;

  if (dense_) {
    // Distinct equivalence *ids* across all valid anchors — the same
    // dedup the hex path does below, one integer sort instead of a
    // string-view sort.
    std::vector<std::uint32_t>& ids = shard.scratch_ids;
    ids.clear();
    ids.reserve(survey.value().anchors.size());
    for (const x509::Certificate* anchor : survey.value().anchors) {
      ids.push_back(anchor->equivalence_id());
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    if (ids.size() > 1) TANGLED_OBS_INC("notary.census.multi_anchor");
    if (sampling_.has_value()) {
      // The sampler classifies by hex key; materialize the same deduped
      // view list the string path builds (cold: sampling is
      // diagnostic-rate and per-cell bounded).
      std::vector<std::string_view>& keys = shard.scratch_keys;
      keys.clear();
      keys.reserve(survey.value().anchors.size());
      for (const x509::Certificate* anchor : survey.value().anchors) {
        keys.push_back(anchor->equivalence_hex());
      }
      std::sort(keys.begin(), keys.end());
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
      sample_validated_trace(shard, observation, keys);
    }
    for (const std::uint32_t id : ids) {
      if (id >= shard.by_root_dense.size()) {
        shard.by_root_dense.resize(id + 1, 0);
      }
      ++shard.by_root_dense[id];
    }
    const auto it = shard.anchor_set_index_dense.find(ids);
    if (it == shard.anchor_set_index_dense.end()) {
      // First sighting of this set: store the canonical sorted-hex keys,
      // byte-identical to what the string path stores, so merge/encode
      // need no per-mode branches downstream.
      std::vector<std::string> hex_keys;
      hex_keys.reserve(ids.size());
      for (const std::uint32_t id : ids) {
        hex_keys.push_back(x509::cert_equivalence_ids().hex_of(id));
      }
      std::sort(hex_keys.begin(), hex_keys.end());
      shard.anchor_set_index_dense.emplace(ids, shard.anchor_sets.size());
      shard.anchor_sets.push_back({std::move(hex_keys), 1});
    } else {
      ++shard.anchor_sets[it->second].count;
    }
    return;
  }

  // Distinct equivalence keys across all valid anchors: a cross-signed
  // hierarchy reaches several; re-issues of the same root collapse to one.
  // Views into the anchors' interned hex — owning copies are made only the
  // first time a particular anchor set is seen.
  std::vector<std::string_view>& keys = shard.scratch_keys;
  keys.clear();
  keys.reserve(survey.value().anchors.size());
  for (const x509::Certificate* anchor : survey.value().anchors) {
    keys.push_back(anchor->equivalence_hex());
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  if (keys.size() > 1) TANGLED_OBS_INC("notary.census.multi_anchor");
  if (sampling_.has_value()) sample_validated_trace(shard, observation, keys);

  std::string& joined = shard.scratch_joined;
  joined.clear();
  joined.reserve(keys.size() * 65);
  for (const std::string_view key : keys) {
    auto it = shard.by_root.find(key);
    if (it == shard.by_root.end()) {
      it = shard.by_root.emplace(std::string(key), 0).first;
    }
    ++it->second;
    joined += key;
    joined += '|';
  }
  const auto it = shard.anchor_set_index.find(joined);
  if (it == shard.anchor_set_index.end()) {
    shard.anchor_set_index.emplace(std::move(joined), shard.anchor_sets.size());
    shard.anchor_sets.push_back(
        {std::vector<std::string>(keys.begin(), keys.end()), 1});
  } else {
    ++shard.anchor_sets[it->second].count;
  }
}

/// High bit of the shard-count word marks a store-backed (spill) census
/// section: the per-leaf lists are omitted and a store sequence cursor
/// follows, for decode_state to replay the kFlag journal against.
constexpr std::uint32_t kCensusSpillMarker = 0x80000000u;

Bytes ValidationCensus::encode_state() const {
  return encode_state(store_ != nullptr ? store_->last_seq() : 0);
}

Bytes ValidationCensus::encode_state(std::uint64_t spill_cursor_seq) const {
  Bytes out;
  const bool spill = store_ != nullptr;
  util::put_u32(out, static_cast<std::uint32_t>(kShards) |
                         (spill ? kCensusSpillMarker : 0));
  if (spill) util::put_u64(out, spill_cursor_seq);
  // Scratch rows for the two sorted sections. Dense shards materialize
  // their keys' hex through the interner reverse tables (`owned` keeps the
  // strings alive behind the views), so the encoded bytes are identical in
  // either mode.
  std::vector<std::pair<std::string_view, std::uint64_t>> sorted;
  std::vector<std::string> owned;
  const auto own_hex = [&owned](std::string hex) -> std::string_view {
    owned.push_back(std::move(hex));
    return owned.back();
  };
  for (const Shard& shard : shards_) {
    // leaf_state, sorted by fingerprint for deterministic bytes. The bool
    // is widened into the count field of the scratch pair. Spill sections
    // omit the list entirely — the store's kFlag journal holds it.
    if (!spill) {
      sorted.clear();
      owned.clear();
      if (dense_) {
        std::size_t n = 0;
        for (const std::uint8_t st : shard.leaf_state_dense) n += st != 0;
        owned.reserve(n);  // views must survive later push_backs
        for (std::uint32_t id = 0; id < shard.leaf_state_dense.size(); ++id) {
          const std::uint8_t st = shard.leaf_state_dense[id];
          if (st == 0) continue;
          sorted.emplace_back(own_hex(x509::cert_fingerprint_ids().hex_of(id)),
                              st == 2 ? 1 : 0);
        }
      } else {
        sorted.reserve(shard.leaf_state.size());
        for (const auto& [fp, validated] : shard.leaf_state) {
          sorted.emplace_back(fp, validated ? 1 : 0);
        }
      }
      std::sort(sorted.begin(), sorted.end());
      util::put_u64(out, sorted.size());
      for (const auto& [fp, validated] : sorted) {
        util::put_string(out, fp);
        util::put_u8(out, static_cast<std::uint8_t>(validated));
      }
    }
    // by_root, sorted by equivalence key.
    sorted.clear();
    owned.clear();
    if (dense_) {
      std::size_t n = 0;
      for (const std::uint64_t count : shard.by_root_dense) n += count != 0;
      owned.reserve(n);
      for (std::uint32_t id = 0; id < shard.by_root_dense.size(); ++id) {
        if (shard.by_root_dense[id] == 0) continue;
        sorted.emplace_back(own_hex(x509::cert_equivalence_ids().hex_of(id)),
                            shard.by_root_dense[id]);
      }
    } else {
      sorted.reserve(shard.by_root.size());
      for (const auto& [key, count] : shard.by_root) {
        sorted.emplace_back(key, count);
      }
    }
    std::sort(sorted.begin(), sorted.end());
    util::put_u64(out, sorted.size());
    for (const auto& [key, count] : sorted) {
      util::put_string(out, key);
      util::put_u64(out, count);
    }
    // anchor_sets in arrival order — the order is part of the state (the
    // merged view and coverage queries walk entries by index).
    util::put_u64(out, shard.anchor_sets.size());
    for (const AnchorSetEntry& entry : shard.anchor_sets) {
      util::put_u64(out, entry.keys.size());
      for (const std::string& key : entry.keys) util::put_string(out, key);
      util::put_u64(out, entry.count);
    }
    util::put_u64(out, shard.total_validated);
    util::put_u64(out, shard.total_unexpired);
  }
  return out;
}

Result<void> ValidationCensus::decode_state(ByteView data) {
  util::BinReader in(data);
  auto shard_count = in.u32();
  if (!shard_count.ok()) return shard_count.error();
  const bool spill = (shard_count.value() & kCensusSpillMarker) != 0;
  const std::uint32_t declared = shard_count.value() & ~kCensusSpillMarker;
  if (declared != kShards) {
    return state_error("census snapshot has " + std::to_string(declared) +
                       " shards, this build uses " + std::to_string(kShards));
  }
  if (spill && store_ == nullptr) {
    return state_error(
        "census snapshot is store-backed but no store is attached");
  }
  if (!spill && store_ != nullptr) {
    return state_error(
        "census snapshot: full-state section offered to a store-backed "
        "census");
  }
  std::uint64_t cursor = 0;
  if (spill) {
    auto seq = in.u64();
    if (!seq.ok()) return seq.error();
    cursor = seq.value();
  }
  std::vector<Shard> shards(kShards);
  for (Shard& shard : shards) {
    if (!spill) {
      auto leaves = in.count(/*min_bytes_per_element=*/9);  // len prefix + flag
      if (!leaves.ok()) return leaves.error();
      shard.leaf_state.reserve(leaves.value());
      for (std::size_t i = 0; i < leaves.value(); ++i) {
        auto fp = in.string();
        if (!fp.ok()) return fp.error();
        auto validated = in.u8();
        if (!validated.ok()) return validated.error();
        if (validated.value() > 1) {
          return parse_error("census snapshot: bad leaf-state flag");
        }
        shard.leaf_state.emplace(std::move(fp.value()),
                                 validated.value() == 1);
      }
    }
    auto roots = in.count(/*min_bytes_per_element=*/16);  // len prefix + u64
    if (!roots.ok()) return roots.error();
    shard.by_root.reserve(roots.value());
    for (std::size_t i = 0; i < roots.value(); ++i) {
      auto key = in.string();
      if (!key.ok()) return key.error();
      auto count = in.u64();
      if (!count.ok()) return count.error();
      shard.by_root.emplace(std::move(key.value()), count.value());
    }
    auto sets = in.count(/*min_bytes_per_element=*/16);  // nkeys + count
    if (!sets.ok()) return sets.error();
    shard.anchor_sets.reserve(sets.value());
    for (std::size_t i = 0; i < sets.value(); ++i) {
      AnchorSetEntry entry;
      auto nkeys = in.count(/*min_bytes_per_element=*/8);
      if (!nkeys.ok()) return nkeys.error();
      entry.keys.reserve(nkeys.value());
      for (std::size_t k = 0; k < nkeys.value(); ++k) {
        auto key = in.string();
        if (!key.ok()) return key.error();
        entry.keys.push_back(std::move(key.value()));
      }
      auto count = in.u64();
      if (!count.ok()) return count.error();
      entry.count = count.value();
      // The joined-key index is derived state; rebuild it as sets arrive.
      std::string joined;
      for (const std::string& key : entry.keys) {
        joined += key;
        joined += '|';
      }
      shard.anchor_set_index.emplace(std::move(joined),
                                     shard.anchor_sets.size());
      shard.anchor_sets.push_back(std::move(entry));
    }
    auto validated = in.u64();
    if (!validated.ok()) return validated.error();
    auto unexpired = in.u64();
    if (!unexpired.ok()) return unexpired.error();
    shard.total_validated = validated.value();
    shard.total_unexpired = unexpired.value();
  }
  if (auto ok = in.expect_end(); !ok.ok()) return ok;
  if (dense_) {
    // Re-key the decoded string state onto interned ids (the decode-side
    // inverse of encode_state's normalization). Still before the commit:
    // a malformed hex key leaves the census untouched.
    for (Shard& shard : shards) {
      for (const auto& [fp, validated] : shard.leaf_state) {
        const auto digest = from_hex(fp);
        if (!digest.has_value()) {
          return parse_error("census snapshot: non-hex leaf fingerprint");
        }
        const std::uint32_t id = x509::cert_fingerprint_ids().intern(*digest);
        if (id >= shard.leaf_state_dense.size()) {
          shard.leaf_state_dense.resize(id + 1, 0);
        }
        shard.leaf_state_dense[id] = validated ? 2 : 1;
      }
      shard.leaf_state.clear();
      for (const auto& [key, count] : shard.by_root) {
        const auto digest = from_hex(key);
        if (!digest.has_value()) {
          return parse_error("census snapshot: non-hex equivalence key");
        }
        const std::uint32_t id = x509::cert_equivalence_ids().intern(*digest);
        if (id >= shard.by_root_dense.size()) {
          shard.by_root_dense.resize(id + 1, 0);
        }
        shard.by_root_dense[id] = count;
      }
      shard.by_root.clear();
      shard.anchor_set_index.clear();
      for (std::size_t e = 0; e < shard.anchor_sets.size(); ++e) {
        std::vector<std::uint32_t> ids;
        ids.reserve(shard.anchor_sets[e].keys.size());
        for (const std::string& key : shard.anchor_sets[e].keys) {
          const auto digest = from_hex(key);
          if (!digest.has_value()) {
            return parse_error("census snapshot: non-hex anchor-set key");
          }
          ids.push_back(x509::cert_equivalence_ids().intern(*digest));
        }
        std::sort(ids.begin(), ids.end());
        shard.anchor_set_index_dense.emplace(std::move(ids), e);
      }
    }
  }
  if (spill) {
    // Rebuild the per-leaf dedup state by replaying the store's kFlag
    // journal up to the checkpointed cursor. Transitions are monotone, so
    // max-wins application is order-insensitive and idempotent across the
    // duplicate records a crash-replay overlap can leave.
    bool bad_shard = false;
    auto replayed = store_->replay(cursor, [&](const store::RecordView& record) {
      if (record.kind_raw !=
          static_cast<std::uint32_t>(store::RecordKind::kFlag)) {
        return;
      }
      if (record.census_shard >= kShards || record.flags == 0 ||
          record.flags > 2) {
        bad_shard = true;
        return;
      }
      Shard& shard = shards[record.census_shard];
      if (dense_) {
        const std::uint32_t id =
            x509::cert_fingerprint_ids().intern(record.fingerprint);
        if (id >= shard.leaf_state_dense.size()) {
          shard.leaf_state_dense.resize(id + 1, 0);
        }
        if (record.flags > shard.leaf_state_dense[id]) {
          shard.leaf_state_dense[id] = record.flags;
        }
      } else {
        auto [it, inserted] =
            shard.leaf_state.try_emplace(to_hex(record.fingerprint),
                                         record.flags == 2);
        if (!inserted && record.flags == 2) it->second = true;
      }
    });
    if (!replayed.ok()) return replayed;
    if (bad_shard) {
      return state_error("census store replay: flag record out of range");
    }
    // The replayed dedup state must reproduce the checkpointed totals —
    // anything else means the journal and the aggregates diverged.
    for (const Shard& shard : shards) {
      std::uint64_t seen = 0;
      std::uint64_t validated = 0;
      if (dense_) {
        for (const std::uint8_t st : shard.leaf_state_dense) {
          seen += st != 0;
          validated += st == 2;
        }
      } else {
        for (const auto& [fp, is_validated] : shard.leaf_state) {
          ++seen;
          validated += is_validated ? 1 : 0;
        }
      }
      if (seen != shard.total_unexpired ||
          validated != shard.total_validated) {
        return state_error(
            "census store replay does not reproduce shard totals");
      }
    }
  }
  shards_ = std::move(shards);
  merged_.reset();
  return {};
}

std::string ValidationCensus::context_fingerprint() const {
  // Everything that changes census *results* goes into the hash: the anchor
  // universe (in order — TrustAnchors lookups are order-sensitive on ties)
  // and the policy knobs the verifier applies. Cache and chain-collection
  // toggles are excluded because they are contractually result-neutral.
  Bytes buf;
  const auto& options = verifier_.options();
  util::put_i64(buf, options.at.to_unix());
  util::put_u8(buf, options.check_validity ? 1 : 0);
  util::put_u8(buf, options.check_signatures ? 1 : 0);
  util::put_u8(buf, options.require_ca_bit ? 1 : 0);
  util::put_u64(buf, options.max_depth);
  util::put_u8(buf, options.purpose.has_value() ? 1 : 0);
  util::put_u8(buf, options.purpose.has_value()
                        ? static_cast<std::uint8_t>(*options.purpose)
                        : 0);
  util::put_u8(buf, options.check_path_length ? 1 : 0);
  util::put_u64(buf, options.budget.max_search_steps);
  util::put_u64(buf, options.budget.max_depth);
  util::put_u64(buf, anchors_.all().size());
  crypto::Sha256 hasher;
  hasher.update(buf);
  for (const x509::Certificate& anchor : anchors_.all()) {
    hasher.update(to_bytes(anchor.fingerprint_hex()));
  }
  const auto digest = hasher.digest();
  return to_hex(ByteView(digest.data(), digest.size()));
}

std::vector<const SampledTrace*> ValidationCensus::sampled_traces() const {
  std::vector<const SampledTrace*> out;
  if (!sampling_.has_value()) return out;
  // Shard order, arrival order within a shard; each shard sampled up to
  // per_cell per cell on its own, so re-cap globally here.
  std::unordered_map<std::string, std::size_t> cell_counts;
  std::string cell;
  for (const Shard& shard : shards_) {
    for (const SampledTrace& sample : shard.traces) {
      cell = sample.store;
      cell += '|';
      cell += sample.verdict;
      std::size_t& taken = cell_counts[cell];
      if (taken >= sampling_->config.per_cell) continue;
      ++taken;
      out.push_back(&sample);
    }
  }
  return out;
}

std::string ValidationCensus::sampled_traces_json() const {
  std::string out = "[";
  bool first = true;
  for (const SampledTrace* sample : sampled_traces()) {
    if (!first) out += ",";
    first = false;
    out += "{\"store\":\"" + obs::json_escape(sample->store) + "\",";
    out += "\"verdict\":\"" + obs::json_escape(sample->verdict) + "\",";
    out += "\"trace\":" + sample->trace.to_json() + "}";
  }
  out += "]";
  return out;
}

const ValidationCensus::Merged& ValidationCensus::merged() const {
  if (merged_.has_value()) return *merged_;
  TANGLED_OBS_SCOPED_TIMER("notary.census.parallel.merge_us");
  Merged m;
  std::unordered_map<std::string, std::size_t> set_index;  // joined keys
  for (const Shard& shard : shards_) {  // shard order, for determinism
    m.total_validated += shard.total_validated;
    m.total_unexpired += shard.total_unexpired;
    if (dense_) {
      for (std::uint32_t id = 0; id < shard.by_root_dense.size(); ++id) {
        if (shard.by_root_dense[id] != 0) {
          m.by_root[x509::cert_equivalence_ids().hex_of(id)] +=
              shard.by_root_dense[id];
        }
      }
    } else {
      for (const auto& [key, count] : shard.by_root) m.by_root[key] += count;
    }
    for (const AnchorSetEntry& entry : shard.anchor_sets) {
      std::string joined;
      for (const std::string& key : entry.keys) {
        joined += key;
        joined += '|';
      }
      const auto [it, inserted] =
          set_index.try_emplace(std::move(joined), m.anchor_sets.size());
      if (inserted) m.anchor_sets.push_back(entry);
      else m.anchor_sets[it->second].count += entry.count;
    }
  }
  merged_ = std::move(m);
  return *merged_;
}

std::uint64_t ValidationCensus::total_validated() const {
  return merged().total_validated;
}

std::uint64_t ValidationCensus::total_unexpired() const {
  return merged().total_unexpired;
}

std::uint64_t ValidationCensus::validated_by(
    const x509::Certificate& root) const {
  const auto& by_root = merged().by_root;
  const auto it = by_root.find(root.equivalence_hex());
  return it == by_root.end() ? 0 : it->second;
}

std::uint64_t ValidationCensus::validated_by_store(
    const rootstore::RootStore& store) const {
  // The store's equivalence keys: equivalent re-issues collapse, so a store
  // holding both an original and a re-issued root cannot double-credit.
  std::unordered_set<std::string> store_keys;
  for (const auto& cert : store.certificates()) {
    store_keys.insert(cert.equivalence_hex());
  }
  // Each leaf counts once per store if *any* of its anchors is present.
  std::uint64_t total = 0;
  for (const AnchorSetEntry& entry : merged().anchor_sets) {
    for (const std::string& key : entry.keys) {
      if (store_keys.contains(key)) {
        total += entry.count;
        break;
      }
    }
  }
  return total;
}

std::vector<std::uint64_t> ValidationCensus::per_root_counts(
    const std::vector<x509::Certificate>& roots) const {
  std::vector<std::uint64_t> out;
  out.reserve(roots.size());
  for (const auto& root : roots) out.push_back(validated_by(root));
  return out;
}

double ValidationCensus::zero_fraction(
    const std::vector<x509::Certificate>& roots) const {
  if (roots.empty()) return 0.0;
  std::size_t zero = 0;
  for (const auto& root : roots) {
    if (validated_by(root) == 0) ++zero;
  }
  return static_cast<double>(zero) / static_cast<double>(roots.size());
}

std::vector<std::uint64_t> ValidationCensus::ecdf_counts(
    const std::vector<x509::Certificate>& roots) const {
  std::vector<std::uint64_t> counts = per_root_counts(roots);
  std::sort(counts.begin(), counts.end());
  return counts;
}

std::vector<std::uint64_t> ValidationCensus::cumulative_coverage(
    const std::vector<x509::Certificate>& roots) const {
  const Merged& m = merged();

  // Which anchor-set entries each candidate root key appears in.
  std::unordered_map<std::string, std::vector<std::size_t>> entries_by_key;
  for (std::size_t e = 0; e < m.anchor_sets.size(); ++e) {
    for (const std::string& key : m.anchor_sets[e].keys) {
      entries_by_key[key].push_back(e);
    }
  }

  std::vector<std::string> root_keys;
  root_keys.reserve(roots.size());
  for (const auto& root : roots) {
    root_keys.push_back(root.equivalence_hex());
  }

  std::vector<char> covered(m.anchor_sets.size(), 0);
  std::vector<char> used(roots.size(), 0);
  std::vector<std::uint64_t> out;
  out.reserve(roots.size());
  std::uint64_t running = 0;
  for (std::size_t step = 0; step < roots.size(); ++step) {
    // Marginal gain of each unused root; strict `>` keeps the earliest
    // root on ties, so the curve is deterministic for a fixed input order.
    std::size_t best = roots.size();
    std::uint64_t best_gain = 0;
    for (std::size_t r = 0; r < roots.size(); ++r) {
      if (used[r]) continue;
      std::uint64_t gain = 0;
      if (const auto it = entries_by_key.find(root_keys[r]);
          it != entries_by_key.end()) {
        for (const std::size_t e : it->second) {
          if (!covered[e]) gain += m.anchor_sets[e].count;
        }
      }
      if (best == roots.size() || gain > best_gain) {
        best = r;
        best_gain = gain;
      }
    }
    used[best] = 1;
    if (const auto it = entries_by_key.find(root_keys[best]);
        it != entries_by_key.end()) {
      for (const std::size_t e : it->second) covered[e] = 1;
    }
    running += best_gain;
    out.push_back(running);
  }
  return out;
}

}  // namespace tangled::notary
