#include "recover/snapshot.h"

#include <cstring>

#include "crypto/hash.h"
#include "obs/obs.h"
#include "util/atomic_file.h"
#include "util/binio.h"
#include "util/mmap_file.h"

namespace tangled::recover {

namespace {

constexpr std::size_t kHeaderSize = sizeof(kSnapshotMagic) + 4 + 4;
constexpr std::size_t kDigestSize = crypto::Sha256::kDigestSize;
// id + len prefix + digest trailer; the minimum a section occupies.
constexpr std::size_t kSectionOverhead = 4 + 8 + kDigestSize;

/// The per-section digest covers the framing fields too, so a flipped id or
/// length byte is caught exactly like a flipped payload byte.
std::array<std::uint8_t, kDigestSize> section_digest(std::uint32_t id,
                                                     ByteView payload) {
  Bytes framing;
  util::put_u32(framing, id);
  util::put_u64(framing, payload.size());
  crypto::Sha256 hasher;
  hasher.update(framing);
  hasher.update(payload);
  return hasher.digest();
}

}  // namespace

std::string to_string(SectionId id) {
  switch (id) {
    case SectionId::kNotaryDb: return "notary-db";
    case SectionId::kCensus: return "census";
    case SectionId::kVerifyCache: return "verify-cache";
    case SectionId::kCursor: return "cursor";
    case SectionId::kFlightRecorder: return "flight-recorder";
    case SectionId::kNotaryStoreCursor: return "notary-store-cursor";
  }
  return "section-" + std::to_string(static_cast<std::uint32_t>(id));
}

const Section* LoadedSnapshot::find(SectionId id) const {
  for (const Section& section : sections) {
    if (section.id == static_cast<std::uint32_t>(id)) return &section;
  }
  return nullptr;
}

Bytes encode_snapshot(const std::vector<Section>& sections) {
  Bytes out;
  out.reserve(kHeaderSize);
  for (const char c : kSnapshotMagic) {
    out.push_back(static_cast<std::uint8_t>(c));
  }
  util::put_u32(out, kSnapshotVersion);
  util::put_u32(out, static_cast<std::uint32_t>(sections.size()));
  for (const Section& section : sections) {
    util::put_u32(out, section.id);
    util::put_u64(out, section.payload.size());
    append(out, section.payload);
    const auto digest = section_digest(section.id, section.payload);
    append(out, ByteView(digest.data(), digest.size()));
  }
  return out;
}

Result<LoadedSnapshot> decode_snapshot(ByteView data) {
  if (data.size() < kHeaderSize ||
      std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return parse_error("snapshot: bad magic or truncated header");
  }
  util::BinReader in(data.subspan(sizeof(kSnapshotMagic)));
  const std::uint32_t version = in.u32().value();  // header size checked above
  if (version != kSnapshotVersion) {
    // Typed refusal, deliberately distinct from corruption: a future format
    // must never be "repaired" by dropping everything it contains.
    return unsupported_error("snapshot: version " + std::to_string(version) +
                             " (this build reads version " +
                             std::to_string(kSnapshotVersion) + ")");
  }
  const std::uint32_t declared = in.u32().value();

  LoadedSnapshot loaded;
  for (std::uint32_t i = 0; i < declared; ++i) {
    if (in.at_end()) {
      loaded.dropped.push_back(
          {0, "file ends " + std::to_string(declared - i) +
                  " section(s) early"});
      break;
    }
    if (in.remaining() < kSectionOverhead) {
      loaded.dropped.push_back({0, "truncated section framing"});
      break;
    }
    const std::uint32_t id = in.u32().value();
    const std::uint64_t len = in.u64().value();
    if (len > in.remaining() || in.remaining() - len < kDigestSize) {
      // Framing is broken: the declared length runs past the file, so no
      // later section boundary can be trusted either. Drop the rest.
      loaded.dropped.push_back(
          {id, "declared length " + std::to_string(len) +
                   " exceeds remaining file"});
      break;
    }
    // Lengths validated above; these reads cannot fail.
    const ByteView payload = in.take(static_cast<std::size_t>(len)).value();
    const ByteView stored = in.take(kDigestSize).value();
    const auto computed = section_digest(id, payload);
    if (std::memcmp(stored.data(), computed.data(), kDigestSize) != 0) {
      // Framing stayed consistent (both reads fit), so only this section is
      // suspect; later sections are still checked on their own digests.
      loaded.dropped.push_back({id, "checksum mismatch"});
      TANGLED_OBS_INC("recover.snapshot.sections_dropped");
      continue;
    }
    loaded.sections.push_back({id, Bytes(payload.begin(), payload.end())});
  }
  if (!in.at_end() && loaded.dropped.empty()) {
    // Clean sections but trailing garbage: report it without discarding the
    // sections that did verify.
    loaded.dropped.push_back({0, "trailing bytes after last section"});
  }
  return loaded;
}

Result<void> write_snapshot_file(const std::string& path,
                                 const std::vector<Section>& sections) {
  TANGLED_OBS_INC("recover.snapshot.writes");
  const Bytes encoded = encode_snapshot(sections);
  TANGLED_OBS_GAUGE_SET("recover.snapshot.bytes", encoded.size());
  return util::write_file_atomic(path, encoded);
}

Result<LoadedSnapshot> read_snapshot_file(const std::string& path) {
  // Mapped rather than slurped: snapshots scale with the corpus, and
  // decode_snapshot copies only the sections that checksum clean.
  auto map = util::MmapFile::open(path);
  if (!map.ok()) return map.error();
  return decode_snapshot(map.value().view());
}

}  // namespace tangled::recover
