// The tangled::recover snapshot container: a versioned, checksummed binary
// file holding the pipeline's resumable state as independent sections.
//
// Layout (all integers little-endian):
//
//   magic    "TNGLSNP1"                                     8 bytes
//   version  u32 (currently 1)                              4 bytes
//   count    u32 section count                              4 bytes
//   then per section:
//     id       u32                                          4 bytes
//     len      u64 payload length                           8 bytes
//     payload  `len` bytes
//     digest   SHA-256 over (id_le || len_le || payload)   32 bytes
//
// Each section carries its own integrity trailer, so corruption is
// contained: a flipped byte invalidates exactly one section, and the loader
// keeps every other section whose digest still verifies. That is the whole
// recovery contract — a damaged snapshot degrades to "rebuild the damaged
// parts", never to "silently load damaged state" and never (except for a
// damaged header, where no section boundary can be trusted) to "throw
// everything away".
//
// Atomicity is the other half (util::write_file_atomic): a crash while
// checkpointing leaves either the previous complete snapshot or the new
// one, and a crash between temp-write and rename leaves the previous
// snapshot plus a stray temp that startup sweeps (util::sweep_stale_temps)
// and never parses as state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace tangled::recover {

inline constexpr char kSnapshotMagic[8] = {'T', 'N', 'G', 'L',
                                           'S', 'N', 'P', '1'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Known section ids. Unknown ids are preserved by the container codec and
/// skipped (with a report) by the checkpoint consumer, so a newer writer's
/// extra sections do not break an older reader.
enum class SectionId : std::uint32_t {
  kNotaryDb = 1,
  kCensus = 2,
  kVerifyCache = 3,
  kCursor = 4,
  /// obs::FlightRecorder drain (encode_events payload). Diagnostic, never
  /// resumable state: a corrupt or missing copy costs the post-mortem
  /// record, not correctness. Old readers skip it by the unknown-section
  /// rule; old snapshots simply lack it.
  kFlightRecorder = 5,
  /// Spill-mode replacement for kNotaryDb: the certificate corpus lives in
  /// the disk-backed store (tangled::store), and the checkpoint carries
  /// only {now, sessions, store sequence cursor, ports}. A snapshot holds
  /// exactly one of kNotaryDb / kNotaryStoreCursor, matching whether the
  /// run had a store attached.
  kNotaryStoreCursor = 6,
};

std::string to_string(SectionId id);

struct Section {
  std::uint32_t id = 0;
  Bytes payload;
};

/// A section the loader refused, and why — surfaced to the caller so a
/// dropped section is always reported, never silent.
struct DroppedSection {
  std::uint32_t id = 0;  // 0 when the id itself was unreadable
  std::string reason;
};

struct LoadedSnapshot {
  /// Sections whose checksums verified, in file order.
  std::vector<Section> sections;
  /// Sections dropped for corruption (checksum mismatch, truncation).
  std::vector<DroppedSection> dropped;

  /// First intact section with this id, or nullptr.
  const Section* find(SectionId id) const;
};

/// Serializes sections into the container format above.
Bytes encode_snapshot(const std::vector<Section>& sections);

/// Parses a container. Error taxonomy:
///  * kParse — header unusable (bad magic, truncated header): treat as
///    total corruption; the caller cold-starts.
///  * kUnsupported — magic is valid but the version is not ours: a typed
///    refusal, so a newer format is never misread as corruption.
///  * ok — every section that checksums clean is returned; damaged ones are
///    listed in `dropped`. Once framing breaks (a declared length running
///    past the end of the file), the remainder is dropped as one unit —
///    section boundaries beyond that point cannot be trusted.
Result<LoadedSnapshot> decode_snapshot(ByteView data);

/// Atomic write of an encoded snapshot (temp + fsync + rename).
Result<void> write_snapshot_file(const std::string& path,
                                 const std::vector<Section>& sections);

/// Reads and decodes `path`. kNotFound when the file does not exist.
Result<LoadedSnapshot> read_snapshot_file(const std::string& path);

}  // namespace tangled::recover
