#include "recover/checkpoint.h"

#include <atomic>
#include <csignal>
#include <utility>

#include "obs/obs.h"
#include "store/cert_store.h"
#include "util/atomic_file.h"
#include "util/binio.h"

namespace tangled::recover {

namespace {

/// Set from signal context; tested at batch boundaries. Process-wide: a
/// SIGTERM means "whoever is checkpointing, do it now".
std::atomic<bool> g_checkpoint_requested{false};

void sigterm_handler(int) {
  g_checkpoint_requested.store(true, std::memory_order_relaxed);
}

/// Cursor section payload: progress marker + the bindings that make a
/// snapshot resumable only against the run that wrote it.
Bytes encode_cursor(std::uint64_t observations, std::uint64_t plan_seed,
                    const std::string& fingerprint) {
  Bytes out;
  util::put_u64(out, observations);
  util::put_u64(out, plan_seed);
  util::put_string(out, fingerprint);
  return out;
}

struct Cursor {
  std::uint64_t observations = 0;
  std::uint64_t plan_seed = 0;
  std::string fingerprint;
};

Result<Cursor> decode_cursor(ByteView payload) {
  util::BinReader in(payload);
  Cursor cursor;
  auto observations = in.u64();
  if (!observations.ok()) return observations.error();
  cursor.observations = observations.value();
  auto seed = in.u64();
  if (!seed.ok()) return seed.error();
  cursor.plan_seed = seed.value();
  auto fingerprint = in.string();
  if (!fingerprint.ok()) return fingerprint.error();
  cursor.fingerprint = std::move(fingerprint.value());
  if (auto ok = in.expect_end(); !ok.ok()) return ok.error();
  return cursor;
}

bool is_known_section(std::uint32_t id) {
  switch (static_cast<SectionId>(id)) {
    case SectionId::kNotaryDb:
    case SectionId::kCensus:
    case SectionId::kVerifyCache:
    case SectionId::kCursor:
    case SectionId::kFlightRecorder:
    case SectionId::kNotaryStoreCursor:
      return true;
  }
  return false;
}

}  // namespace

CheckpointingCensus::CheckpointingCensus(notary::NotaryDb& db,
                                         notary::ValidationCensus& census,
                                         CheckpointConfig config)
    : db_(db), census_(census), config_(std::move(config)) {}

void CheckpointingCensus::install_sigterm_handler() {
  std::signal(SIGTERM, sigterm_handler);
}

void CheckpointingCensus::request_checkpoint() {
  g_checkpoint_requested.store(true, std::memory_order_relaxed);
}

bool CheckpointingCensus::checkpoint_requested() {
  return g_checkpoint_requested.load(std::memory_order_relaxed);
}

Result<ResumeInfo> CheckpointingCensus::resume() {
  auto info = resume_impl();
  if (info.ok()) {
    // Direct recorder call (not TANGLED_OBS_EVENT): resume is a cold-path
    // lifecycle event, and OBS=OFF post-mortems should still show it.
    obs::flight_recorder().record(obs::FlightEventKind::kCheckpointResume,
                                  info.value().observations_ingested,
                                  info.value().cold_start ? 1 : 0);
    if (config_.serve_telemetry) {
      if (auto started = start_telemetry(); !started.ok()) {
        info.value().reports.push_back("telemetry server failed to start (" +
                                       started.error().message +
                                       "); continuing without it");
      }
    }
  }
  return info;
}

Result<ResumeInfo> CheckpointingCensus::resume_impl() {
  ResumeInfo info;
  // Writers that crashed between fopen(tmp) and rename leave orphan temps
  // beside the snapshot; sweep them before anything reads the directory so
  // they can never be mistaken for state. (The store sweeps its own
  // directory the same way in CertStore::open.)
  if (const std::size_t swept = util::sweep_stale_temps(config_.path);
      swept != 0) {
    TANGLED_OBS_INC("recover.resume.swept_temps");
    info.reports.push_back("swept " + std::to_string(swept) +
                           " stale snapshot temp file(s)");
  }

  store::CertStore* store = db_.attached_store();
  const bool spill = store != nullptr;
  // Every cold start must leave the attached store empty too: its records
  // are only meaningful relative to a cursor, and a cold start says no
  // usable cursor exists. A reset failure is a real IO error — propagated,
  // because resuming over a store we could not clear would be silent
  // divergence.
  auto reset_store_for_cold = [&]() -> Result<void> {
    if (store == nullptr || store->last_seq() == 0) return {};
    if (auto ok = store->reset(); !ok.ok()) return ok.error();
    info.reports.push_back("attached store reset to match cold start");
    return {};
  };
  auto cold = [&](std::string reason) -> Result<ResumeInfo> {
    TANGLED_OBS_INC("recover.resume.cold_starts");
    info.reports.push_back(std::move(reason));
    if (auto ok = reset_store_for_cold(); !ok.ok()) return ok.error();
    return info;
  };

  auto loaded = read_snapshot_file(config_.path);
  if (!loaded.ok()) {
    if (loaded.error().code == Errc::kNotFound) {
      // First run: cold start, nothing to report — but a non-empty store
      // with no snapshot means the previous run died before its first
      // checkpoint, and those records sit above cursor 0.
      if (auto ok = reset_store_for_cold(); !ok.ok()) return ok.error();
      return info;
    }
    if (loaded.error().code == Errc::kParse) {
      // Header-level corruption: detected, reported, rebuilt from scratch.
      TANGLED_OBS_INC("recover.resume.header_corrupt");
      info.reports.push_back("snapshot unusable (" + loaded.error().message +
                             "); cold start");
      if (auto ok = reset_store_for_cold(); !ok.ok()) return ok.error();
      return info;
    }
    // kUnsupported (future version) and IO errors propagate typed: they
    // are refusals, not corruption to silently rebuild over.
    return loaded.error();
  }

  const LoadedSnapshot& snapshot = loaded.value();
  for (const DroppedSection& dropped : snapshot.dropped) {
    info.reports.push_back("dropped section " +
                           to_string(static_cast<SectionId>(dropped.id)) +
                           ": " + dropped.reason);
  }
  for (const Section& section : snapshot.sections) {
    if (!is_known_section(section.id)) {
      TANGLED_OBS_INC("recover.resume.unknown_sections");
      info.reports.push_back("skipping unknown section id " +
                             std::to_string(section.id) +
                             " (written by a newer build?)");
    }
  }

  // Flight-recorder section: decoded before the core-section gate so a run
  // forced cold by core corruption still surfaces the previous process's
  // post-mortem record. Diagnostic only — an undecodable copy is a report.
  if (const Section* flight_section = snapshot.find(SectionId::kFlightRecorder);
      flight_section != nullptr) {
    if (auto events = obs::FlightRecorder::decode_events(
            flight_section->payload);
        events.ok()) {
      info.prior_flight_events = std::move(events.value());
    } else {
      info.reports.push_back("flight-recorder section undecodable (" +
                             events.error().message +
                             "); prior post-mortem lost");
    }
  }

  // A snapshot's notary section type records which mode wrote it; a run in
  // the other mode cannot use it. Reported as its own cold-start cause so
  // the mismatch is never mistaken for corruption.
  if (spill && snapshot.find(SectionId::kNotaryDb) != nullptr) {
    return cold(
        "snapshot carries full notary state but this run spills to a "
        "store; cold start");
  }
  if (!spill && snapshot.find(SectionId::kNotaryStoreCursor) != nullptr) {
    return cold(
        "snapshot is store-backed but this run has no store attached; "
        "cold start");
  }

  // The cursor and both core sections form one consistency unit: partial
  // restore would desynchronize the progress marker from the state, so any
  // of them missing or undecodable means cold start.
  const Section* cursor_section = snapshot.find(SectionId::kCursor);
  const Section* notary_section = snapshot.find(
      spill ? SectionId::kNotaryStoreCursor : SectionId::kNotaryDb);
  const Section* census_section = snapshot.find(SectionId::kCensus);
  if (cursor_section == nullptr || notary_section == nullptr ||
      census_section == nullptr) {
    return cold("core section missing or corrupt; cold start");
  }
  auto cursor = decode_cursor(cursor_section->payload);
  if (!cursor.ok()) {
    return cold("cursor undecodable (" + cursor.error().message +
                "); cold start");
  }
  // Configuration mismatches are deliberate refusals, not rebuilds: the
  // snapshot is valid state for a *different* experiment.
  if (cursor.value().plan_seed != config_.plan_seed) {
    return state_error("snapshot cursor bound to plan seed " +
                       std::to_string(cursor.value().plan_seed) +
                       ", this run uses " + std::to_string(config_.plan_seed));
  }
  if (cursor.value().fingerprint != census_.context_fingerprint()) {
    return state_error(
        "snapshot census configuration fingerprint differs from this run");
  }

  // Stage the NotaryDb restore in a scratch copy so the census commit and
  // the notary commit happen together or not at all.
  notary::NotaryDb staged(db_.now());
  std::uint64_t store_cursor_seq = 0;
  if (spill) {
    staged.attach_store(store);
    auto seq = staged.decode_store_cursor(notary_section->payload);
    if (!seq.ok()) {
      if (seq.error().code == Errc::kInvalidState) {
        // A cursor taken at a different reference time is a configuration
        // mismatch, not corruption — the same typed refusal as a foreign
        // plan seed.
        return seq.error();
      }
      return cold("notary store-cursor section undecodable (" +
                  seq.error().message + "); cold start");
    }
    store_cursor_seq = seq.value();
    // The cursor promises every record at or below it survives in the log.
    // Damage repaired below that point, or a log that simply ends before
    // it, breaks the promise: replay would silently miss records.
    if (store->min_stop_seq() < store_cursor_seq) {
      return cold("store damaged below checkpoint cursor (clean through seq " +
                  std::to_string(store->min_stop_seq()) + ", cursor at " +
                  std::to_string(store_cursor_seq) + "); cold start");
    }
    if (store->last_seq() < store_cursor_seq) {
      return cold("store ends at seq " + std::to_string(store->last_seq()) +
                  ", before checkpoint cursor " +
                  std::to_string(store_cursor_seq) + "; cold start");
    }
  } else {
    if (auto ok = staged.decode_state(notary_section->payload); !ok.ok()) {
      return cold("notary section undecodable (" + ok.error().message +
                  "); cold start");
    }
  }
  if (auto ok = census_.decode_state(census_section->payload); !ok.ok()) {
    // census_ is untouched on failure (all-or-nothing decode).
    return cold("census section undecodable (" + ok.error().message +
                "); cold start");
  }
  db_ = std::move(staged);
  last_checkpoint_store_seq_.store(store_cursor_seq,
                                   std::memory_order_relaxed);

  // Warm cache: best-effort, result-neutral.
  if (const Section* cache_section = snapshot.find(SectionId::kVerifyCache);
      cache_section != nullptr) {
    if (pki::VerifyCache* cache = census_.verify_cache_mutable();
        cache != nullptr) {
      if (auto ok = cache->import_state(cache_section->payload); ok.ok()) {
        info.cache_restored = true;
      } else {
        info.reports.push_back("verify-cache section undecodable (" +
                               ok.error().message + "); resuming cold-cache");
      }
    } else {
      info.reports.push_back(
          "verify-cache section present but caching is disabled; ignored");
    }
  }

  ingested_.store(cursor.value().observations, std::memory_order_relaxed);
  last_checkpoint_.store(cursor.value().observations,
                         std::memory_order_relaxed);
  info.observations_ingested = cursor.value().observations;
  info.cold_start = false;
  TANGLED_OBS_INC("recover.resume.warm_starts");
  return info;
}

Result<void> CheckpointingCensus::ingest_batch(
    std::span<const notary::Observation> batch, util::ThreadPool& pool) {
  for (const notary::Observation& observation : batch) {
    db_.observe(observation);
  }
  census_.ingest_batch(batch, pool);
  ingested_ += batch.size();
  return maybe_checkpoint();
}

std::function<void(std::uint64_t)> CheckpointingCensus::stream_hook() {
  // The stream's cumulative count starts at zero even on a resumed run, so
  // rebase it on the cursor position at hook creation.
  const std::uint64_t base = ingested_;
  return [this, base](std::uint64_t stream_cumulative) {
    ingested_ = base + stream_cumulative;
    if (auto ok = maybe_checkpoint(); !ok.ok() && last_error_.empty()) {
      last_error_ = to_string(ok.error());
    }
  };
}

Result<void> CheckpointingCensus::maybe_checkpoint() {
  const bool due = config_.interval != 0 &&
                   ingested_ - last_checkpoint_ >= config_.interval;
  if (!due && !g_checkpoint_requested.load(std::memory_order_relaxed)) {
    return {};
  }
  g_checkpoint_requested.store(false, std::memory_order_relaxed);
  return checkpoint();
}

Result<void> CheckpointingCensus::checkpoint() {
  TANGLED_OBS_INC("recover.checkpoints");
  TANGLED_OBS_SCOPED_TIMER("recover.checkpoint.write_us");
  store::CertStore* store = db_.attached_store();
  std::uint64_t store_seq = 0;
  std::vector<Section> sections;
  if (store != nullptr) {
    // Durability ordering: the store must reach disk *before* the snapshot
    // that points into it, or a crash between the two writes would leave a
    // cursor covering records that never made it. A flush failure aborts
    // the checkpoint — the previous snapshot stays valid.
    // The cursor is sampled exactly once, *before* the flush, and handed to
    // every cursor-bearing section below: the flush then guarantees every
    // record at or below it is durable even while concurrent ingest keeps
    // appending. A cursor re-sampled later (or per section) could point
    // past the flushed prefix and make an otherwise-valid snapshot fail its
    // replay check after a crash.
    store_seq = store->last_seq();
    if (auto flushed = store->flush(); !flushed.ok()) return flushed.error();
    sections.push_back(
        {static_cast<std::uint32_t>(SectionId::kNotaryStoreCursor),
         db_.encode_store_cursor(store_seq)});
  } else {
    sections.push_back({static_cast<std::uint32_t>(SectionId::kNotaryDb),
                        db_.encode_state()});
  }
  sections.push_back({static_cast<std::uint32_t>(SectionId::kCensus),
                      store != nullptr ? census_.encode_state(store_seq)
                                       : census_.encode_state()});
  if (config_.include_verify_cache) {
    if (const pki::VerifyCache* cache = census_.verify_cache();
        cache != nullptr) {
      sections.push_back({static_cast<std::uint32_t>(SectionId::kVerifyCache),
                          cache->export_state()});
    }
  }
  sections.push_back(
      {static_cast<std::uint32_t>(SectionId::kCursor),
       encode_cursor(ingested_, config_.plan_seed,
                     census_.context_fingerprint())});
  if (config_.include_flight_recorder) {
    // Snapshot the recorder *without* draining it: the live rings keep
    // accumulating, and every checkpoint carries the freshest recent-events
    // window. The section is what a post-crash resume reads back.
    sections.push_back({static_cast<std::uint32_t>(SectionId::kFlightRecorder),
                        obs::flight_recorder().encode_events()});
  }
  std::size_t snapshot_bytes = 0;
  for (const Section& section : sections) {
    snapshot_bytes += section.payload.size();
  }
  auto written = write_snapshot_file(config_.path, sections);
  if (written.ok()) {
    last_checkpoint_ = ingested_.load(std::memory_order_relaxed);
    last_checkpoint_store_seq_.store(store_seq, std::memory_order_relaxed);
    obs::flight_recorder().record(obs::FlightEventKind::kCheckpointWrite,
                                  ingested_.load(std::memory_order_relaxed),
                                  snapshot_bytes);
  }
  return written;
}

Result<void> CheckpointingCensus::start_telemetry() {
  if (telemetry_ != nullptr && telemetry_->running()) return {};
  obs::TelemetryConfig tconfig;
  tconfig.port = config_.telemetry_port;
  tconfig.health = [this] {
    // The maintenance supplier decides the leading token: a degraded
    // store-maintenance layer flips "ok" to "degraded" so a probe keyed
    // on the first word catches it, while ingest keeps running.
    MaintenanceHealth maintenance;
    if (maintenance_health_) maintenance = maintenance_health_();
    std::string body = maintenance.degraded ? "degraded" : "ok";
    body += " ingested=" +
            std::to_string(ingested_.load(std::memory_order_relaxed)) +
            " last_checkpoint=" +
            std::to_string(last_checkpoint_.load(std::memory_order_relaxed));
    if (!maintenance.detail.empty()) body += " " + maintenance.detail;
    return body;
  };
  auto server = std::make_unique<obs::TelemetryServer>(std::move(tconfig));
  if (auto started = server->start(); !started.ok()) return started.error();
  telemetry_ = std::move(server);
  return {};
}

void CheckpointingCensus::stop_telemetry() {
  if (telemetry_ != nullptr) {
    telemetry_->stop();
    telemetry_.reset();
  }
}

}  // namespace tangled::recover
