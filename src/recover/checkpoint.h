// CheckpointingCensus: the crash-safe driver around the validation census.
//
// It wraps a NotaryDb + ValidationCensus pair, counts the observations
// committed into them, and every `interval` observations (or on SIGTERM)
// writes a recover snapshot: notary state, census shard accumulators, the
// optional warm verify-cache, and a cursor recording how far the corpus
// plan has progressed plus a fingerprint of the census configuration.
//
// On restart, resume() restores every intact section and returns the
// cursor position; the caller replays only the observations after it. The
// census's upgrade-aware dedup makes even an over-replay idempotent, but a
// checkpoint is only ever taken at a batch boundary, so the cursor is
// exact: an interrupted run resumed this way produces bit-identical
// Table-3/Figure-3 results to a run that never crashed.
//
// Degradation ladder on resume:
//   * no snapshot file                  → cold start (empty state);
//   * header corrupt                    → cold start, reported;
//   * snapshot from a future version    → typed kUnsupported error (never
//                                         misread as corruption);
//   * cursor/notary/census section bad  → cold start, reported — the core
//                                         sections are one consistency
//                                         unit, restored all-or-nothing;
//   * verify-cache section bad/missing  → resume with a cold cache (the
//                                         cache is result-neutral);
//   * configuration fingerprint differs → typed kInvalidState error: the
//                                         snapshot belongs to a different
//                                         experiment, deleting it must be
//                                         the operator's deliberate act.
//
// Spill mode: when the NotaryDb has a store::CertStore attached, the
// certificate corpus lives in that disk-backed log and the snapshot shrinks
// to a cursor over its sequence numbers (kNotaryStoreCursor replaces
// kNotaryDb; the census section keeps aggregates but drops leaf lists).
// checkpoint() flushes the store *before* writing the snapshot, so every
// record at or below the recorded cursor is durable. resume() then refuses
// a cursor the store cannot honor (damage below the cursor, or a store that
// ends before it) by cold-starting — and every cold start with a non-empty
// attached store also resets the store, keeping snapshot and log in
// lockstep. A snapshot written in one mode never resumes in the other:
// that mismatch is a reported cold start, not a misread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "notary/census.h"
#include "notary/notary.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "recover/snapshot.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace tangled::recover {

struct CheckpointConfig {
  /// Snapshot file path. Atomic writes stage through unique
  /// ".tmp.<pid>.<n>" siblings (util::atomic_temp_path); resume() sweeps
  /// any such orphans a crashed writer left behind.
  std::string path;
  /// Observations between automatic checkpoints; 0 = only explicit
  /// checkpoint() calls and SIGTERM requests.
  std::uint64_t interval = 10'000;
  /// Write the warm verify-cache section. Purely a resume-speed knob;
  /// results are identical either way.
  bool include_verify_cache = true;
  /// Seed of the corpus plan feeding this run, bound into the cursor so a
  /// snapshot cannot be resumed against a different observation stream.
  std::uint64_t plan_seed = 0;
  /// Persist the flight-recorder drain as its own snapshot section. Like
  /// the warm cache it is best-effort: a corrupt copy is reported and
  /// skipped, never a resume failure.
  bool include_flight_recorder = true;
  /// Serve live telemetry (/metrics, /healthz, /flightrecorder) for the
  /// duration of the run. resume() starts the server; a bind failure is a
  /// report, not an error — telemetry never blocks the census.
  bool serve_telemetry = false;
  /// 0 = ephemeral; read the bound port from telemetry()->port().
  std::uint16_t telemetry_port = 0;
};

struct ResumeInfo {
  /// Cursor position: the caller replays observations from this index on.
  std::uint64_t observations_ingested = 0;
  /// True when no usable snapshot existed and the run starts empty.
  bool cold_start = true;
  /// True when the warm verify-cache section was restored.
  bool cache_restored = false;
  /// The previous run's flight-recorder drain, when the snapshot carried an
  /// intact kFlightRecorder section — the post-mortem record of whatever
  /// the process was doing before it died. Empty otherwise.
  std::vector<obs::FlightEvent> prior_flight_events;
  /// Human-readable reports: dropped sections, skipped unknown ids,
  /// cold-cache fallbacks. Empty on a perfectly clean resume.
  std::vector<std::string> reports;
};

class CheckpointingCensus {
 public:
  CheckpointingCensus(notary::NotaryDb& db, notary::ValidationCensus& census,
                      CheckpointConfig config);

  /// Restores state from config.path (see the degradation ladder above).
  /// Call once, before any ingest.
  Result<ResumeInfo> resume();

  /// Ingests a batch into both the NotaryDb and the census, advances the
  /// cursor, and checkpoints when the interval elapses or a SIGTERM-style
  /// request is pending. The error (if any) is from the checkpoint write;
  /// the ingest itself always completes.
  Result<void> ingest_batch(std::span<const notary::Observation> batch,
                            util::ThreadPool& pool);

  /// Writes a snapshot now, unconditionally.
  Result<void> checkpoint();

  /// Adapter for StreamIngestConfig::on_batch_committed. The stream path
  /// ingests into the census itself; this hook just advances the cursor at
  /// each batch boundary and applies the checkpoint cadence. Checkpoint
  /// write errors are reported through the returned flag-setter's side
  /// channel: they are remembered and surfaced by last_error().
  std::function<void(std::uint64_t)> stream_hook();

  /// First checkpoint-write error seen by the stream hook, if any.
  const std::string& last_error() const { return last_error_; }

  std::uint64_t observations_ingested() const {
    return ingested_.load(std::memory_order_relaxed);
  }

  /// Store sequence number covered by the last successful checkpoint (0
  /// before one, or when the NotaryDb has no store attached). Records at or
  /// below it are replayable from a snapshot, so this is the `stable_seq`
  /// bound a caller may pass to store::CertStore::compact.
  std::uint64_t last_checkpoint_store_seq() const {
    return last_checkpoint_store_seq_.load(std::memory_order_relaxed);
  }

  /// Extra /healthz detail from the store-maintenance layer (or any other
  /// subsystem with a health verdict). The fragment is appended to the
  /// health body each probe; when `degraded` comes back true the body's
  /// leading token flips from "ok" to "degraded" so load balancers keyed
  /// on the first word see the condition. Set before start_telemetry();
  /// the supplier runs on the telemetry thread and must be thread-safe.
  struct MaintenanceHealth {
    bool degraded = false;
    std::string detail;
  };
  void set_maintenance_health(std::function<MaintenanceHealth()> fn) {
    maintenance_health_ = std::move(fn);
  }

  /// Convenience closure over last_checkpoint_store_seq() — the
  /// `stable_seq` bound a store::Maintainer should compact against (the
  /// handoff from checkpoint cursors to the maintenance scheduler).
  std::function<std::uint64_t()> stable_seq_provider() {
    return [this] { return last_checkpoint_store_seq(); };
  }

  /// Starts the telemetry endpoint (idempotent). resume() calls this when
  /// config.serve_telemetry is set; tests and benches may call it directly.
  /// The /healthz body reports ingest and checkpoint progress.
  Result<void> start_telemetry();
  void stop_telemetry();
  /// The running server, or nullptr before start_telemetry() succeeds.
  const obs::TelemetryServer* telemetry() const { return telemetry_.get(); }

  // --- SIGTERM integration -------------------------------------------------
  /// Installs a SIGTERM handler that requests a checkpoint at the next
  /// batch boundary (the handler only sets an atomic flag — no allocation,
  /// no IO in signal context).
  static void install_sigterm_handler();
  /// What the handler does; also callable directly (tests, other signals).
  static void request_checkpoint();
  static bool checkpoint_requested();

 private:
  Result<void> maybe_checkpoint();
  Result<ResumeInfo> resume_impl();

  notary::NotaryDb& db_;
  notary::ValidationCensus& census_;
  CheckpointConfig config_;
  /// Atomic because the telemetry server's /healthz callback reads them
  /// from its own thread while ingest advances them.
  std::atomic<std::uint64_t> ingested_{0};
  std::atomic<std::uint64_t> last_checkpoint_{0};
  std::atomic<std::uint64_t> last_checkpoint_store_seq_{0};
  std::string last_error_;
  std::function<MaintenanceHealth()> maintenance_health_;
  std::unique_ptr<obs::TelemetryServer> telemetry_;
};

}  // namespace tangled::recover
