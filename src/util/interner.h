// Thread-safe digest → dense-id interner with reverse lookup.
//
// The verify/census hot paths key work on SHA-256 digests (certificate
// fingerprints, SPKI hashes, equivalence classes). Interning each digest
// once at parse time yields a small dense integer that the hot paths can
// compare and hash as a single word instead of re-hashing 32-byte keys or
// 64-char hex strings per probe. Ids are process-local (allocation order
// depends on parse order) and must never be serialized; the reverse table
// maps an id back to its digest whenever a canonical on-disk or on-wire
// form is needed.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/bytes.h"

namespace tangled::util {

class DigestInterner {
 public:
  /// Returns the dense id for `digest`, allocating the next id on first
  /// sight. Ids start at 0 and are contiguous.
  std::uint32_t intern(ByteView digest);

  /// The id `digest` was interned under, or nullopt if it never was.
  /// Never allocates an id — membership probes with arbitrary digests
  /// (e.g. NotaryDb::recorded_identity) must not grow the table.
  std::optional<std::uint32_t> find(ByteView digest) const;

  /// The digest that was interned as `id`. Asserts `id` is allocated.
  Bytes digest_of(std::uint32_t id) const;

  /// Lowercase-hex form of digest_of(id).
  std::string hex_of(std::uint32_t id) const;

  std::uint32_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::uint32_t> index_;
  std::vector<const std::string*> digests_;  // id → key in index_
};

}  // namespace tangled::util
