// Minimal expected-style error handling used across library boundaries.
//
// Expected failures (malformed DER, broken chains, unknown OIDs…) travel as
// `Result<T>`; programming errors are assertions. This keeps parsers usable
// on hostile input without exceptions in hot paths.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace tangled {

/// Broad failure categories; the message carries specifics.
enum class Errc {
  kParse,          // malformed input (DER, PEM, hex, ...)
  kRange,          // value outside the representable/allowed range
  kUnsupported,    // recognized but deliberately unimplemented construct
  kNotFound,       // lookup miss (issuer, anchor, domain, ...)
  kVerifyFailed,   // signature or chain validation failure
  kExpired,        // validity-period failure
  kInvalidState,   // API misuse detectable only at runtime
  kBudgetExhausted,  // search/resource budget spent before an answer
};

/// What went wrong, with a human-readable message.
struct Error {
  Errc code;
  std::string message;
};

/// Renders "parse: truncated length" style strings for logs and tests.
std::string to_string(const Error& error);
std::string_view to_string(Errc code);

/// A value or an Error. Deliberately tiny: exactly the operations the
/// codebase needs, nothing speculative.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(storage_);
  }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

/// Result<void>: success carries no payload.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)) {}        // NOLINT(google-explicit-constructor)

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

/// Convenience factories so call sites read as prose.
inline Error parse_error(std::string message) {
  return Error{Errc::kParse, std::move(message)};
}
inline Error range_error(std::string message) {
  return Error{Errc::kRange, std::move(message)};
}
inline Error unsupported_error(std::string message) {
  return Error{Errc::kUnsupported, std::move(message)};
}
inline Error not_found_error(std::string message) {
  return Error{Errc::kNotFound, std::move(message)};
}
inline Error verify_error(std::string message) {
  return Error{Errc::kVerifyFailed, std::move(message)};
}
inline Error expired_error(std::string message) {
  return Error{Errc::kExpired, std::move(message)};
}
inline Error state_error(std::string message) {
  return Error{Errc::kInvalidState, std::move(message)};
}
inline Error budget_error(std::string message) {
  return Error{Errc::kBudgetExhausted, std::move(message)};
}

}  // namespace tangled
