// Crash-safe file replacement: write to a temp file in the same directory,
// flush it to stable storage, then rename over the destination. A reader
// therefore sees either the old complete file or the new complete file,
// never a torn mixture — the atomicity half of the snapshot protocol (the
// integrity half is the per-section checksums in recover::snapshot).
#pragma once

#include <string>

#include "util/bytes.h"
#include "util/result.h"

namespace tangled::util {

/// Atomically replaces `path` with `data`: writes `path + ".tmp"`, fsyncs
/// it, renames it over `path`, then fsyncs the containing directory so the
/// rename itself survives a power cut. Errors leave the previous `path`
/// contents (if any) intact.
Result<void> write_file_atomic(const std::string& path, ByteView data);

/// Reads a whole file. kNotFound when it does not exist.
Result<Bytes> read_file(const std::string& path);

bool file_exists(const std::string& path);

/// The temp name write_file_atomic uses (exposed so crash-injection tests
/// can fabricate the "crashed between temp-write and rename" state).
std::string atomic_temp_path(const std::string& path);

}  // namespace tangled::util
