// Crash-safe file replacement: write to a temp file in the same directory,
// flush it to stable storage, then rename over the destination. A reader
// therefore sees either the old complete file or the new complete file,
// never a torn mixture — the atomicity half of the snapshot protocol (the
// integrity half is the per-section checksums in recover::snapshot).
#pragma once

#include <cstddef>
#include <string>

#include "util/bytes.h"
#include "util/result.h"

namespace tangled::util {

/// Atomically replaces `path` with `data`: writes a unique temp sibling,
/// fsyncs it, renames it over `path`, then fsyncs the containing directory
/// so the rename itself survives a power cut. Errors leave the previous
/// `path` contents (if any) intact. Concurrent writers to the same `path`
/// each use their own temp name; the last rename wins and both renames
/// deliver a complete file.
Result<void> write_file_atomic(const std::string& path, ByteView data);

/// Whole-file reads above this refuse with kUnsupported: the stdio slurp
/// loop would materialize the entire file in one contiguous allocation.
/// Multi-GiB segment files go through util::MmapFile instead.
inline constexpr std::size_t kReadFileCap = std::size_t{1} << 29;  // 512 MiB

/// Reads a whole file into memory. kNotFound when it does not exist,
/// kInvalidState on other open/read errors (permissions, I/O), and
/// kUnsupported when the file exceeds `max_bytes`.
Result<Bytes> read_file(const std::string& path,
                        std::size_t max_bytes = kReadFileCap);

bool file_exists(const std::string& path);

/// A fresh temp name for one atomic write of `path`:
/// `path + ".tmp.<pid>.<counter>"`. Unique per call, so two concurrent
/// writers targeting the same destination never share a temp file (the old
/// fixed `path + ".tmp"` name let one writer truncate the other's
/// half-written temp and rename a torn mixture). Exposed so
/// crash-injection tests can fabricate the "crashed between temp-write and
/// rename" state.
std::string atomic_temp_path(const std::string& path);

/// True when `name` (a bare directory entry, no path) is a temp file that
/// write_file_atomic could have left behind for destination `base` (also a
/// bare name): `base + ".tmp"` exactly (the legacy fixed name) or
/// `base + ".tmp."` followed by a writer suffix.
bool is_atomic_temp_name(const std::string& base, const std::string& name);

/// Removes stale temps left for `path` by writers that crashed between
/// fopen(tmp) and rename. Returns how many were removed. Safe to call
/// while another writer is mid-write only at startup/recovery time (a live
/// writer's temp would be swept too).
std::size_t sweep_stale_temps(const std::string& path);

/// Removes every atomic-write temp (any destination) in `dir`. Used by
/// store recovery, where compaction temps target segment names that are
/// not known until the directory is scanned. Returns how many were
/// removed.
std::size_t sweep_stale_temps_in_dir(const std::string& dir);

}  // namespace tangled::util
