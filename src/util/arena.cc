#include "util/arena.h"

#include <cstring>

#if defined(__SANITIZE_ADDRESS__)
#define TANGLED_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TANGLED_ASAN 1
#endif
#endif

#ifdef TANGLED_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace tangled::util {

namespace {

void poison(const std::uint8_t* ptr, std::size_t size) {
#ifdef TANGLED_ASAN
  if (size != 0) __asan_poison_memory_region(ptr, size);
#else
  (void)ptr;
  (void)size;
#endif
}

void unpoison(const std::uint8_t* ptr, std::size_t size) {
#ifdef TANGLED_ASAN
  if (size != 0) __asan_unpoison_memory_region(ptr, size);
#else
  (void)ptr;
  (void)size;
#endif
}

}  // namespace

Arena::Arena(std::size_t chunk_size) : chunk_size_(chunk_size) {
  assert(chunk_size_ != 0);
}

Arena::~Arena() {
  assert(pins_ == 0 && "arena destroyed while views into it are pinned");
  // ASan requires poisoned regions to be unpoisoned before the allocator
  // reclaims them.
  for (Chunk& chunk : chunks_) unpoison(chunk.data.get(), chunk.size);
}

Arena::Chunk Arena::make_chunk(std::size_t size) {
  Chunk chunk;
  chunk.data = std::make_unique<std::uint8_t[]>(size);
  chunk.size = size;
  reserved_ += size;
  poison(chunk.data.get(), size);
  return chunk;
}

std::uint8_t* Arena::allocate(std::size_t size) {
  if (size == 0) size = 1;  // distinct non-null pointers for empty requests
  if (chunks_.empty() || chunks_.back().used + size > chunks_.back().size) {
    chunks_.push_back(make_chunk(size > chunk_size_ ? size : chunk_size_));
  }
  Chunk& chunk = chunks_.back();
  std::uint8_t* ptr = chunk.data.get() + chunk.used;
  chunk.used += size;
  allocated_ += size;
  unpoison(ptr, size);
  return ptr;
}

ByteView Arena::copy(ByteView bytes) {
  std::uint8_t* dst = allocate(bytes.size());
  if (!bytes.empty()) std::memcpy(dst, bytes.data(), bytes.size());
  return ByteView(dst, bytes.size());
}

void Arena::reset() {
  assert(pins_ == 0 && "arena reset while views into it are pinned");
  if (chunks_.empty()) return;
  // Keep the first (base-size) chunk warm, drop the rest.
  while (chunks_.size() > 1) {
    reserved_ -= chunks_.back().size;
    unpoison(chunks_.back().data.get(), chunks_.back().size);
    chunks_.pop_back();
  }
  Chunk& chunk = chunks_.front();
  chunk.used = 0;
  poison(chunk.data.get(), chunk.size);
  allocated_ = 0;
}

}  // namespace tangled::util
