// Byte-buffer primitives shared by every module.
//
// `Bytes` is the single owning byte-sequence type used across libtangled;
// `ByteView` is its non-owning counterpart. Hex helpers convert between
// buffers and lowercase hex strings (certificate fingerprints, subject tags).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tangled {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Encodes `data` as lowercase hex, two characters per byte.
std::string to_hex(ByteView data);

/// Decodes a hex string (upper or lower case, no separators).
/// Returns std::nullopt on odd length or non-hex characters.
std::optional<Bytes> from_hex(std::string_view hex);

/// Builds a Bytes from a string's raw characters.
Bytes to_bytes(std::string_view s);

/// Interprets a byte buffer as a string (lossless round-trip of to_bytes).
std::string to_string(ByteView data);

/// Lexicographic comparison suitable for ordered containers.
bool bytes_less(ByteView a, ByteView b);

/// Structural equality for spans (std::span has no operator==).
bool bytes_equal(ByteView a, ByteView b);

/// Appends `src` to `dst`.
void append(Bytes& dst, ByteView src);

/// FNV-1a 64-bit hash, used for non-cryptographic indexing of DER blobs.
std::uint64_t fnv1a64(ByteView data);

}  // namespace tangled
