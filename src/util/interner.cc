#include "util/interner.h"

#include <cassert>

namespace tangled::util {

std::uint32_t DigestInterner::intern(ByteView digest) {
  std::string key(reinterpret_cast<const char*>(digest.data()), digest.size());
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] =
      index_.try_emplace(std::move(key),
                         static_cast<std::uint32_t>(digests_.size()));
  // Node-based map: the key's address is stable across rehashes, so the
  // reverse table can point straight at it.
  if (inserted) digests_.push_back(&it->first);
  return it->second;
}

std::optional<std::uint32_t> DigestInterner::find(ByteView digest) const {
  const std::string key(reinterpret_cast<const char*>(digest.data()),
                        digest.size());
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

Bytes DigestInterner::digest_of(std::uint32_t id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  assert(id < digests_.size() && "unallocated dense id");
  const std::string& d = *digests_[id];
  return Bytes(d.begin(), d.end());
}

std::string DigestInterner::hex_of(std::uint32_t id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  assert(id < digests_.size() && "unallocated dense id");
  const std::string& d = *digests_[id];
  return to_hex(ByteView(reinterpret_cast<const std::uint8_t*>(d.data()),
                         d.size()));
}

std::uint32_t DigestInterner::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::uint32_t>(digests_.size());
}

}  // namespace tangled::util
