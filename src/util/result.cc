#include "util/result.h"

namespace tangled {

std::string_view to_string(Errc code) {
  switch (code) {
    case Errc::kParse: return "parse";
    case Errc::kRange: return "range";
    case Errc::kUnsupported: return "unsupported";
    case Errc::kNotFound: return "not-found";
    case Errc::kVerifyFailed: return "verify-failed";
    case Errc::kExpired: return "expired";
    case Errc::kInvalidState: return "invalid-state";
    case Errc::kBudgetExhausted: return "budget-exhausted";
  }
  return "unknown";
}

std::string to_string(const Error& error) {
  std::string out{to_string(error.code)};
  out += ": ";
  out += error.message;
  return out;
}

}  // namespace tangled
