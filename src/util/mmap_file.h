// Read-only memory-mapped file views. Segment files in the disk-backed
// cert store can outgrow what util::read_file is willing to slurp into one
// contiguous allocation; mapping lets the kernel page data in on demand
// and lets eviction drop cold segments' pages without losing the file.
//
// On platforms without mmap the class falls back to an owned in-memory
// copy, so callers get the same ByteView either way.
#pragma once

#include <cstddef>
#include <string>

#include "util/bytes.h"
#include "util/result.h"

namespace tangled::util {

class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile() { reset(); }

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. kNotFound when it does not exist, kInvalidState
  /// on other open/map errors (permissions, I/O). An empty file maps to an
  /// empty view.
  static Result<MmapFile> open(const std::string& path);

  /// The whole file. Valid until reset()/destruction.
  ByteView view() const { return ByteView(data_, size_); }
  std::size_t size() const { return size_; }
  bool mapped() const { return data_ != nullptr || size_ == 0; }

  /// Drops the mapping (or the fallback copy). Idempotent.
  void reset();

  /// Whether this build uses real mmap (false: slurp fallback).
  static bool uses_mmap();

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  void* map_addr_ = nullptr;  // non-null only for a real mapping
  std::size_t map_len_ = 0;
  Bytes fallback_;
};

}  // namespace tangled::util
