#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace tangled {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::next() {
  state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // An all-zero state would be absorbing; SplitMix64 cannot emit four zeros
  // from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's method: multiply-shift with a rejection step that removes bias.
  std::uint64_t x = next();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = next();
      m = static_cast<unsigned __int128>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::between(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Xoshiro256::unit() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return unit() < p;
}

Bytes Xoshiro256::bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    const std::uint64_t v = next();
    for (int b = 0; b < 8; ++b) out[i + b] = static_cast<std::uint8_t>(v >> (8 * b));
    i += 8;
  }
  if (i < n) {
    const std::uint64_t v = next();
    for (int b = 0; i < n; ++i, ++b) out[i] = static_cast<std::uint8_t>(v >> (8 * b));
  }
  return out;
}

Xoshiro256 Xoshiro256::fork() {
  return Xoshiro256(next());
}

WeightedSampler::WeightedSampler(std::span<const double> weights) {
  assert(!weights.empty());
  cumulative_.reserve(weights.size());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
    cumulative_.push_back(total);
  }
  assert(total > 0.0);
}

std::size_t WeightedSampler::sample(Xoshiro256& rng) const {
  const double target = rng.unit() * cumulative_.back();
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
  const auto idx = static_cast<std::size_t>(it - cumulative_.begin());
  return std::min(idx, cumulative_.size() - 1);
}

namespace {

std::vector<double> zipf_weights(std::size_t n, double s) {
  assert(n > 0);
  std::vector<double> w(n);
  for (std::size_t k = 0; k < n; ++k) {
    w[k] = std::pow(static_cast<double>(k + 1), -s);
  }
  return w;
}

}  // namespace

ZipfSampler::ZipfSampler(std::size_t n, double s)
    : sampler_(zipf_weights(n, s)) {}

std::vector<std::size_t> sample_without_replacement(Xoshiro256& rng,
                                                    std::size_t n,
                                                    std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng.below(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace tangled
