// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tangled {

/// Splits on a single-character separator; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins pieces with `sep`.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

}  // namespace tangled
