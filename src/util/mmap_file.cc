#include "util/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define TANGLED_HAVE_MMAP 1
#else
#define TANGLED_HAVE_MMAP 0
#endif

#include "util/atomic_file.h"

namespace tangled::util {

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = other.data_;
    size_ = other.size_;
    map_addr_ = other.map_addr_;
    map_len_ = other.map_len_;
    fallback_ = std::move(other.fallback_);
    if (!fallback_.empty()) data_ = fallback_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.map_addr_ = nullptr;
    other.map_len_ = 0;
    other.fallback_.clear();
  }
  return *this;
}

void MmapFile::reset() {
#if TANGLED_HAVE_MMAP
  if (map_addr_ != nullptr) munmap(map_addr_, map_len_);
#endif
  map_addr_ = nullptr;
  map_len_ = 0;
  data_ = nullptr;
  size_ = 0;
  fallback_.clear();
  fallback_.shrink_to_fit();
}

bool MmapFile::uses_mmap() { return TANGLED_HAVE_MMAP != 0; }

Result<MmapFile> MmapFile::open(const std::string& path) {
#if TANGLED_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return not_found_error("no such file: " + path);
    return state_error("open " + path + ": " + std::strerror(errno));
  }
  struct stat st{};
  if (fstat(fd, &st) != 0) {
    const int err = errno;
    close(fd);
    return state_error("stat " + path + ": " + std::strerror(err));
  }
  MmapFile out;
  out.size_ = static_cast<std::size_t>(st.st_size);
  if (out.size_ == 0) {
    close(fd);
    return out;
  }
  void* addr = mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  const int err = errno;
  close(fd);
  if (addr == MAP_FAILED) {
    return state_error("mmap " + path + ": " + std::strerror(err));
  }
  out.map_addr_ = addr;
  out.map_len_ = out.size_;
  out.data_ = static_cast<const std::uint8_t*>(addr);
  return out;
#else
  auto data = read_file(path, static_cast<std::size_t>(-1));
  if (!data.ok()) return data.error();
  MmapFile out;
  out.fallback_ = std::move(data).value();
  out.data_ = out.fallback_.data();
  out.size_ = out.fallback_.size();
  return out;
#endif
}

}  // namespace tangled::util
