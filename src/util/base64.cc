#include "util/base64.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace tangled {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<std::int8_t, 256> build_reverse_table() {
  std::array<std::int8_t, 256> table{};
  table.fill(-1);
  for (int i = 0; i < 64; ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  }
  return table;
}

const std::array<std::int8_t, 256> kReverse = build_reverse_table();

}  // namespace

std::string base64_encode(ByteView data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            data[i + 2];
    out.push_back(kAlphabet[(v >> 18) & 0x3f]);
    out.push_back(kAlphabet[(v >> 12) & 0x3f]);
    out.push_back(kAlphabet[(v >> 6) & 0x3f]);
    out.push_back(kAlphabet[v & 0x3f]);
  }
  const std::size_t rem = data.size() - i;
  if (rem == 1) {
    const std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kAlphabet[(v >> 18) & 0x3f]);
    out.push_back(kAlphabet[(v >> 12) & 0x3f]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kAlphabet[(v >> 18) & 0x3f]);
    out.push_back(kAlphabet[(v >> 12) & 0x3f]);
    out.push_back(kAlphabet[(v >> 6) & 0x3f]);
    out.push_back('=');
  }
  return out;
}

std::string base64_encode_wrapped(ByteView data, std::size_t line_width) {
  const std::string flat = base64_encode(data);
  if (line_width == 0) return flat;
  std::string out;
  out.reserve(flat.size() + flat.size() / line_width + 1);
  for (std::size_t i = 0; i < flat.size(); i += line_width) {
    out.append(flat, i, std::min(line_width, flat.size() - i));
    out.push_back('\n');
  }
  return out;
}

std::optional<Bytes> base64_decode(std::string_view text) {
  Bytes out;
  // Cap the up-front reserve: the input length is attacker-controlled, and
  // reserving 3/4 of it commits memory before a single character has been
  // validated. Beyond the cap the vector grows geometrically, so genuine
  // large payloads still decode in amortized O(n) while a multi-megabyte
  // garbage blob is rejected at its first invalid character having
  // allocated at most 64 KiB.
  constexpr std::size_t kReserveCap = 64 * 1024;
  out.reserve(std::min(text.size() / 4 * 3, kReserveCap));
  std::uint32_t acc = 0;
  int bits = 0;
  int pads = 0;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == '=') {
      ++pads;
      if (pads > 2) return std::nullopt;
      continue;
    }
    if (pads > 0) return std::nullopt;  // data after padding
    const std::int8_t v = kReverse[static_cast<unsigned char>(c)];
    if (v < 0) return std::nullopt;
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xff));
    }
  }
  // Leftover bits must be zero-padding of a final partial group.
  if (bits >= 6) return std::nullopt;
  if ((acc & ((1u << bits) - 1)) != 0) return std::nullopt;
  // Padding must complete a 4-character group: 4 leftover bits mean the
  // final group had 2 data chars (2 pads); 2 leftover bits mean 3 (1 pad).
  const int expected_pads = bits == 0 ? 0 : (bits == 4 ? 2 : 1);
  if (pads != 0 && pads != expected_pads) return std::nullopt;
  return out;
}

}  // namespace tangled
