// RFC 4648 Base64 codec (standard alphabet, '=' padding). Used by the PEM
// layer and anywhere certificates are serialized for text transport.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace tangled {

/// Encodes without line wrapping.
std::string base64_encode(ByteView data);

/// Encodes wrapped at `line_width` characters (PEM uses 64).
std::string base64_encode_wrapped(ByteView data, std::size_t line_width);

/// Decodes; accepts and skips ASCII whitespace. Returns std::nullopt on any
/// other non-alphabet character, bad padding, or trailing garbage.
std::optional<Bytes> base64_decode(std::string_view text);

}  // namespace tangled
