#include "util/atomic_file.h"

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>
#define TANGLED_HAVE_FSYNC 1
#else
#define TANGLED_HAVE_FSYNC 0
#endif

namespace tangled::util {

namespace {

std::string errno_message(const char* what, const std::string& path) {
  std::string out = what;
  out += " ";
  out += path;
  out += ": ";
  out += std::strerror(errno);
  return out;
}

/// Directory part of `path` ("." when there is no separator).
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Final component of `path`.
std::string base_name(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return path;
  return path.substr(slash + 1);
}

Result<void> flush_and_sync(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0) return state_error(errno_message("flush", path));
#if TANGLED_HAVE_FSYNC
  if (fsync(fileno(f)) != 0) return state_error(errno_message("fsync", path));
#endif
  return {};
}

std::uint64_t writer_pid() {
#if TANGLED_HAVE_FSYNC
  return static_cast<std::uint64_t>(getpid());
#else
  return 0;
#endif
}

/// Removes every entry in `dir` for which `matches(name)` is true.
template <typename Pred>
std::size_t sweep_dir(const std::string& dir, Pred matches) {
  std::size_t removed = 0;
#if TANGLED_HAVE_FSYNC
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return 0;
  std::vector<std::string> victims;
  while (const dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    if (matches(name)) victims.push_back(name);
  }
  closedir(d);
  for (const std::string& name : victims) {
    const std::string full = dir + "/" + name;
    if (std::remove(full.c_str()) == 0) ++removed;
  }
#else
  (void)dir;
  (void)matches;
#endif
  return removed;
}

}  // namespace

std::string atomic_temp_path(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  return path + ".tmp." + std::to_string(writer_pid()) + "." +
         std::to_string(n);
}

bool is_atomic_temp_name(const std::string& base, const std::string& name) {
  const std::string prefix = base + ".tmp";
  if (name.size() < prefix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  // Exactly ".tmp" (the legacy fixed name) or ".tmp.<suffix>".
  return name.size() == prefix.size() || name[prefix.size()] == '.';
}

std::size_t sweep_stale_temps(const std::string& path) {
  const std::string base = base_name(path);
  return sweep_dir(parent_dir(path), [&base](const std::string& name) {
    return is_atomic_temp_name(base, name);
  });
}

std::size_t sweep_stale_temps_in_dir(const std::string& dir) {
  return sweep_dir(dir, [](const std::string& name) {
    // `<anything>.tmp` or `<anything>.tmp.<suffix>` is an atomic-write
    // temp for some destination in this directory.
    const std::size_t pos = name.rfind(".tmp");
    if (pos == std::string::npos || pos == 0) return false;
    const std::string tail = name.substr(pos + 4);
    return tail.empty() || tail[0] == '.';
  });
}

Result<void> write_file_atomic(const std::string& path, ByteView data) {
  const std::string tmp = atomic_temp_path(path);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return state_error(errno_message("open", tmp));
  bool ok = data.empty() ||
            std::fwrite(data.data(), 1, data.size(), f) == data.size();
  if (ok) {
    if (auto flushed = flush_and_sync(f, tmp); !flushed.ok()) {
      std::fclose(f);
      std::remove(tmp.c_str());
      return flushed;
    }
  }
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return state_error(errno_message("write", tmp));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return state_error(errno_message("rename", path));
  }
#if TANGLED_HAVE_FSYNC
  // Persist the rename: fsync the directory entry. Best effort — some
  // filesystems refuse O_RDONLY directory fsync; the data itself is safe.
  const int dir_fd = open(parent_dir(path).c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    fsync(dir_fd);
    close(dir_fd);
  }
#endif
  return {};
}

Result<Bytes> read_file(const std::string& path, std::size_t max_bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return not_found_error("no such file: " + path);
    return state_error(errno_message("open", path));
  }
  Bytes out;
  std::uint8_t buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    if (out.size() + n > max_bytes) {
      std::fclose(f);
      return unsupported_error("file exceeds the whole-file read cap (" +
                               std::to_string(max_bytes) +
                               " bytes); map it with util::MmapFile: " + path);
    }
    out.insert(out.end(), buf, buf + n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return state_error(errno_message("read", path));
  return out;
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace tangled::util
