#include "util/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define TANGLED_HAVE_FSYNC 1
#else
#define TANGLED_HAVE_FSYNC 0
#endif

namespace tangled::util {

namespace {

std::string errno_message(const char* what, const std::string& path) {
  std::string out = what;
  out += " ";
  out += path;
  out += ": ";
  out += std::strerror(errno);
  return out;
}

/// Directory part of `path` ("." when there is no separator).
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Result<void> flush_and_sync(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0) return state_error(errno_message("flush", path));
#if TANGLED_HAVE_FSYNC
  if (fsync(fileno(f)) != 0) return state_error(errno_message("fsync", path));
#endif
  return {};
}

}  // namespace

std::string atomic_temp_path(const std::string& path) { return path + ".tmp"; }

Result<void> write_file_atomic(const std::string& path, ByteView data) {
  const std::string tmp = atomic_temp_path(path);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return state_error(errno_message("open", tmp));
  bool ok = data.empty() ||
            std::fwrite(data.data(), 1, data.size(), f) == data.size();
  if (ok) {
    if (auto flushed = flush_and_sync(f, tmp); !flushed.ok()) {
      std::fclose(f);
      std::remove(tmp.c_str());
      return flushed;
    }
  }
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return state_error(errno_message("write", tmp));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return state_error(errno_message("rename", path));
  }
#if TANGLED_HAVE_FSYNC
  // Persist the rename: fsync the directory entry. Best effort — some
  // filesystems refuse O_RDONLY directory fsync; the data itself is safe.
  const int dir_fd = open(parent_dir(path).c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    fsync(dir_fd);
    close(dir_fd);
  }
#endif
  return {};
}

Result<Bytes> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return not_found_error("no such file: " + path);
    return state_error(errno_message("open", path));
  }
  Bytes out;
  std::uint8_t buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return state_error(errno_message("read", path));
  return out;
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace tangled::util
