#include "util/thread_pool.h"

#include <cstdio>
#include <cstdlib>

namespace tangled::util {

std::optional<std::size_t> parse_thread_count(std::string_view text) {
  if (text.empty() || text.size() > 3) return std::nullopt;
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  if (value > kMaxThreads) return std::nullopt;
  return value;
}

std::size_t configured_thread_count() {
  const char* env = std::getenv("TANGLED_THREADS");
  if (env == nullptr || env[0] == '\0') {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }
  const auto parsed = parse_thread_count(env);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "tangled: TANGLED_THREADS=\"%s\" is not an integer in "
                 "[0, %zu]\n",
                 env, kMaxThreads);
    std::exit(2);
  }
  return *parsed;
}

ThreadPool::ThreadPool(std::size_t n_workers) {
  workers_.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (pool.size() <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Contiguous chunks, a few per worker so uneven bodies still balance.
  const std::size_t n_chunks = std::min(n, pool.size() * 4);
  const std::size_t base = n / n_chunks;
  const std::size_t extra = n % n_chunks;  // first `extra` chunks get +1

  struct Completion {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining;
  } done{{}, {}, n_chunks};

  std::size_t begin = 0;
  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    pool.submit([&body, &done, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
      std::lock_guard lock(done.mu);
      if (--done.remaining == 0) done.cv.notify_one();
    });
    begin = end;
  }

  std::unique_lock lock(done.mu);
  done.cv.wait(lock, [&done] { return done.remaining == 0; });
}

ThreadPool& shared_pool() {
  static ThreadPool pool(configured_thread_count());
  return pool;
}

}  // namespace tangled::util
