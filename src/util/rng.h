// Deterministic randomness for reproducible experiments.
//
// Every synthetic corpus in libtangled is generated from an explicit seed so
// that each table and figure regenerates bit-identically. Engines: SplitMix64
// (seeding / cheap streams) and Xoshiro256** (bulk sampling). Distributions:
// uniform ranges, Bernoulli, weighted choice, and a bounded Zipf sampler for
// the heavy-tailed CA-issuance model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.h"

namespace tangled {

/// SplitMix64: tiny, fast, passes BigCrush as a 64-bit mixer. Used to expand
/// one user seed into independent engine states.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the workhorse engine. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// nearly-divisionless method.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double unit();

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Fills a fresh buffer with `n` random bytes.
  Bytes bytes(std::size_t n);

  /// Forks an independent engine (jump via reseed-from-output, adequate for
  /// simulation purposes).
  Xoshiro256 fork();

 private:
  std::uint64_t s_[4];
};

/// Samples indices proportionally to fixed non-negative weights, O(log n)
/// per draw via a prefix-sum table.
class WeightedSampler {
 public:
  explicit WeightedSampler(std::span<const double> weights);

  std::size_t sample(Xoshiro256& rng) const;
  std::size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;  // strictly increasing, last = total
};

/// Bounded Zipf(s) over ranks 1..n: P(k) ∝ k^-s. Implemented as a
/// WeightedSampler; n is bounded (≤ a few million), so the table is fine.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Returns a rank in [0, n).
  std::size_t sample(Xoshiro256& rng) const { return sampler_.sample(rng); }
  std::size_t size() const { return sampler_.size(); }

 private:
  WeightedSampler sampler_;
};

/// Draws `k` distinct indices from [0, n) without replacement
/// (partial Fisher-Yates). Requires k <= n.
std::vector<std::size_t> sample_without_replacement(Xoshiro256& rng,
                                                    std::size_t n,
                                                    std::size_t k);

}  // namespace tangled
