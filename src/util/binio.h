// Little-endian binary encode/decode for the snapshot codec.
//
// Writers append fixed-width integers and length-prefixed byte strings to a
// Bytes buffer; BinReader parses them back with Result-based errors. The
// reader is hardened for attacker-controlled (or disk-corrupted) input: a
// declared length is validated against the remaining window *before* any
// allocation or copy, so a flipped length byte can never drive an
// out-of-memory allocation — it fails with a parse error instead.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/result.h"

namespace tangled::util {

inline void put_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }

inline void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

inline void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

inline void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

inline void put_i64(Bytes& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

/// Length-prefixed (u64) byte string.
inline void put_bytes(Bytes& out, ByteView data) {
  put_u64(out, data.size());
  append(out, data);
}

inline void put_string(Bytes& out, std::string_view s) {
  put_bytes(out, ByteView(reinterpret_cast<const std::uint8_t*>(s.data()),
                          s.size()));
}

/// Sequential reader over a binary window. Every read validates bounds
/// first; `bytes()` returns a view into the window (no copy), `string()`
/// copies exactly the validated length.
class BinReader {
 public:
  explicit BinReader(ByteView data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

  Result<std::uint8_t> u8() {
    if (remaining() < 1) return parse_error("binio: u8 past end");
    return data_[pos_++];
  }

  Result<std::uint16_t> u16() {
    if (remaining() < 2) return parse_error("binio: u16 past end");
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v |= static_cast<std::uint16_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 2;
    return v;
  }

  Result<std::uint32_t> u32() {
    if (remaining() < 4) return parse_error("binio: u32 past end");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<std::uint64_t> u64() {
    if (remaining() < 8) return parse_error("binio: u64 past end");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<std::int64_t> i64() {
    auto v = u64();
    if (!v.ok()) return v.error();
    return static_cast<std::int64_t>(v.value());
  }

  /// Raw view of the next `n` bytes (no length prefix) — for callers whose
  /// framing carries the length elsewhere. Bounds-checked like everything.
  Result<ByteView> take(std::size_t n) {
    if (n > remaining()) return parse_error("binio: take past end");
    const ByteView view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

  /// Length-prefixed byte string. The declared length is checked against
  /// the remaining window before anything is materialized.
  Result<ByteView> bytes() {
    auto len = u64();
    if (!len.ok()) return len.error();
    if (len.value() > remaining()) {
      return parse_error("binio: declared length exceeds remaining input");
    }
    const ByteView view = data_.subspan(pos_, static_cast<std::size_t>(len.value()));
    pos_ += static_cast<std::size_t>(len.value());
    return view;
  }

  Result<std::string> string() {
    auto view = bytes();
    if (!view.ok()) return view.error();
    return std::string(reinterpret_cast<const char*>(view.value().data()),
                       view.value().size());
  }

  /// Validates a caller-declared element count against a minimum encoded
  /// size per element, so a corrupted count cannot drive a huge reserve().
  Result<std::size_t> count(std::size_t min_bytes_per_element) {
    auto n = u64();
    if (!n.ok()) return n.error();
    if (min_bytes_per_element == 0) min_bytes_per_element = 1;
    if (n.value() > remaining() / min_bytes_per_element) {
      return parse_error("binio: declared count exceeds remaining input");
    }
    return static_cast<std::size_t>(n.value());
  }

  Result<void> expect_end() const {
    if (!at_end()) return parse_error("binio: trailing bytes");
    return {};
  }

 private:
  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace tangled::util
