// Chunked bump allocator for zero-copy parse views.
//
// The capture→parse hot path used to copy every certificate's bytes into
// per-cert std::vector<uint8_t> buffers before looking at them. An Arena
// instead holds one copy of the backing bytes and hands out stable interior
// pointers: a parse result is a set of views into the arena, alive exactly
// as long as the arena is.
//
// Lifetime discipline:
//  * Allocations are never freed individually; reset() recycles everything
//    at once. Pointers returned by allocate()/copy() are stable until then
//    (chunks never reallocate — a full chunk is retired, not grown).
//  * A Pin is an RAII token meaning "views into this arena are live".
//    reset() on a pinned arena is a contract violation, caught by a debug
//    assert — the FlowDemux integration makes it impossible by construction
//    by sharing ownership (shared_ptr<Arena>) with every view holder.
//  * Under AddressSanitizer the unused tail of every chunk and all recycled
//    memory are poisoned, so a stale view into a reset arena faults in the
//    ASan lane instead of silently reading recycled bytes.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/bytes.h"

namespace tangled::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkSize = 64 * 1024;

  explicit Arena(std::size_t chunk_size = kDefaultChunkSize);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `size` bytes (unaligned — byte buffers only). A request
  /// larger than the chunk size gets a dedicated chunk.
  std::uint8_t* allocate(std::size_t size);

  /// Copies `bytes` into the arena, returning a view of the stable copy.
  ByteView copy(ByteView bytes);

  /// Recycles every allocation. Must not be called while any Pin is live —
  /// a view handed out before reset() would dangle. Keeps the first chunk
  /// for reuse; retired chunks are released.
  void reset();

  std::size_t bytes_allocated() const { return allocated_; }
  std::size_t bytes_reserved() const { return reserved_; }
  std::size_t pin_count() const { return pins_; }

  /// RAII lifetime witness: while any Pin exists, the arena's memory must
  /// stay valid, and reset() asserts. Copyable — each copy is one more
  /// witness.
  class Pin {
   public:
    explicit Pin(Arena& arena) : arena_(&arena) { ++arena_->pins_; }
    Pin(const Pin& other) : arena_(other.arena_) { ++arena_->pins_; }
    Pin& operator=(const Pin& other) {
      if (this != &other) {
        --arena_->pins_;
        arena_ = other.arena_;
        ++arena_->pins_;
      }
      return *this;
    }
    ~Pin() { --arena_->pins_; }

   private:
    Arena* arena_;
  };

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  Chunk make_chunk(std::size_t size);
  void poison_tail(Chunk& chunk);

  std::size_t chunk_size_;
  std::vector<Chunk> chunks_;
  std::size_t allocated_ = 0;
  std::size_t reserved_ = 0;
  std::size_t pins_ = 0;
};

}  // namespace tangled::util
