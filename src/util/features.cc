#include "util/features.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace tangled::util {

namespace {

/// Strict boolean parse shared by every feature knob (the
/// TANGLED_VERIFY_CACHE contract): a typo must not silently run the wrong
/// configuration and masquerade as a measurement.
bool env_enabled(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return true;
  const std::string_view v(env);
  if (v == "1" || v == "on" || v == "true") return true;
  if (v == "0" || v == "off" || v == "false") return false;
  std::fprintf(stderr,
               "%s=\"%s\" is not a boolean (use 0/off/false or 1/on/true)\n",
               name, env);
  std::exit(2);
}

/// One lazily-initialized, overridable flag. 0/1 = resolved value, 2 =
/// unresolved (read the environment on first use).
class Flag {
 public:
  explicit Flag(const char* env_name) : env_name_(env_name) {}

  bool get() {
    int v = state_.load(std::memory_order_relaxed);
    if (v == 2) {
      const bool enabled = env_enabled(env_name_);
      int expected = 2;
      // First resolver wins; a concurrent set_() override also wins.
      state_.compare_exchange_strong(expected, enabled ? 1 : 0,
                                     std::memory_order_relaxed);
      v = state_.load(std::memory_order_relaxed);
    }
    return v == 1;
  }

  void set(bool enabled) {
    state_.store(enabled ? 1 : 0, std::memory_order_relaxed);
  }

 private:
  const char* env_name_;
  std::atomic<int> state_{2};
};

Flag& batch_hash_flag() {
  static Flag flag("TANGLED_BATCH_HASH");
  return flag;
}
Flag& montgomery_flag() {
  static Flag flag("TANGLED_MONTGOMERY");
  return flag;
}
Flag& dense_ids_flag() {
  static Flag flag("TANGLED_DENSE_IDS");
  return flag;
}
Flag& arena_certs_flag() {
  static Flag flag("TANGLED_ARENA_CERTS");
  return flag;
}

}  // namespace

bool batch_hash_enabled() { return batch_hash_flag().get(); }
void set_batch_hash_enabled(bool enabled) { batch_hash_flag().set(enabled); }

bool montgomery_enabled() { return montgomery_flag().get(); }
void set_montgomery_enabled(bool enabled) { montgomery_flag().set(enabled); }

bool dense_ids_enabled() { return dense_ids_flag().get(); }
void set_dense_ids_enabled(bool enabled) { dense_ids_flag().set(enabled); }

bool arena_certs_enabled() { return arena_certs_flag().get(); }
void set_arena_certs_enabled(bool enabled) { arena_certs_flag().set(enabled); }

}  // namespace tangled::util
