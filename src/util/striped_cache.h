// A striped-lock concurrent hash map used as a memoization cache.
//
// The map is split into a fixed number of stripes, each its own mutex +
// unordered_map, so concurrent readers/writers only contend when their keys
// hash to the same stripe. Designed for caches of *deterministic* pure
// computations: a racing find/insert pair may recompute a value, never
// return a wrong one, so callers need no external synchronization.
//
// Capacity is bounded per stripe. When an insert would push a stripe past
// its cap the whole stripe is dropped (bulk eviction). That is crude but
// cheap, needs no LRU bookkeeping on the hit path, and — because entries
// are memoized pure functions — eviction can only cost time, never change
// a result.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace tangled::util {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class StripedCache {
 public:
  static constexpr std::size_t kStripes = 64;

  /// `max_entries` caps the whole cache; each stripe gets an equal share
  /// (at least one entry).
  explicit StripedCache(std::size_t max_entries)
      : per_stripe_cap_(max_entries / kStripes > 0 ? max_entries / kStripes
                                                   : 1),
        stripes_(kStripes) {}

  /// Returns a copy of the cached value, or nullopt on miss.
  std::optional<Value> find(const Key& key) const {
    const Stripe& stripe = stripe_for(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    const auto it = stripe.map.find(key);
    if (it == stripe.map.end()) return std::nullopt;
    return it->second;
  }

  /// Inserts `value` for `key` (first writer wins; a present key is left
  /// untouched). Returns the number of entries bulk-evicted to make room.
  std::size_t insert(const Key& key, Value value) {
    Stripe& stripe = stripe_for(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    std::size_t evicted = 0;
    if (stripe.map.size() >= per_stripe_cap_ && !stripe.map.contains(key)) {
      evicted = stripe.map.size();
      stripe.map.clear();
      evictions_.fetch_add(evicted, std::memory_order_relaxed);
    }
    stripe.map.try_emplace(key, std::move(value));
    return evicted;
  }

  /// Current entry count (sums stripe sizes; approximate under concurrency).
  std::size_t size() const {
    std::size_t total = 0;
    for (const Stripe& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe.mu);
      total += stripe.map.size();
    }
    return total;
  }

  /// Total entries ever dropped by bulk eviction.
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  void clear() {
    for (Stripe& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe.mu);
      stripe.map.clear();
    }
  }

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<Key, Value, Hash> map;
  };

  const Stripe& stripe_for(const Key& key) const {
    return stripes_[Hash{}(key) % kStripes];
  }
  Stripe& stripe_for(const Key& key) {
    return stripes_[Hash{}(key) % kStripes];
  }

  std::size_t per_stripe_cap_;
  std::vector<Stripe> stripes_;  // never resized; mutexes stay put
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace tangled::util
