// A striped-lock concurrent hash map used as a memoization cache.
//
// The map is split into a fixed number of stripes, each its own mutex +
// unordered_map, so concurrent readers/writers only contend when their keys
// hash to the same stripe. Designed for caches of *deterministic* pure
// computations: a racing find/insert pair may recompute a value, never
// return a wrong one, so callers need no external synchronization.
//
// Capacity is bounded per stripe, FIFO: each stripe remembers insertion
// order, and an insert that would push the stripe past its cap evicts the
// oldest live entries until it fits. Eviction is strictly shard-local — an
// overfull stripe never touches any other stripe's entries — and because
// entries are memoized pure functions, eviction can only cost time, never
// change a result. erase() removes a key immediately; its FIFO slot is left
// as a tombstone that eviction skips (compacted when tombstones pile up).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace tangled::util {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class StripedCache {
 public:
  static constexpr std::size_t kStripes = 64;

  /// `max_entries` caps the whole cache; each stripe gets an equal share
  /// (at least one entry).
  explicit StripedCache(std::size_t max_entries)
      : per_stripe_cap_(max_entries / kStripes > 0 ? max_entries / kStripes
                                                   : 1),
        stripes_(kStripes) {}

  std::size_t per_stripe_cap() const { return per_stripe_cap_; }

  /// Returns a copy of the cached value, or nullopt on miss.
  std::optional<Value> find(const Key& key) const {
    const Stripe& stripe = stripe_for(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    const auto it = stripe.map.find(key);
    if (it == stripe.map.end()) return std::nullopt;
    return it->second;
  }

  /// Inserts `value` for `key` (first writer wins; a present key is left
  /// untouched). Returns the number of live entries evicted to make room —
  /// always from this key's own stripe, oldest first.
  std::size_t insert(const Key& key, Value value) {
    Stripe& stripe = stripe_for(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    if (stripe.map.contains(key)) return 0;
    std::size_t evicted = 0;
    while (stripe.map.size() >= per_stripe_cap_ && !stripe.fifo.empty()) {
      // Pop FIFO slots until one still names a live entry; the rest are
      // tombstones left by erase(). Every live key holds at least one slot,
      // so the loop always reaches one.
      const Key victim = stripe.fifo.front();
      stripe.fifo.pop_front();
      if (stripe.map.erase(victim) > 0) ++evicted;
    }
    if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
    stripe.map.try_emplace(key, std::move(value));
    stripe.fifo.push_back(key);
    compact_locked(stripe);
    return evicted;
  }

  /// Removes `key` if present; returns whether an entry was removed. The
  /// FIFO slot becomes a tombstone (skipped at eviction time).
  bool erase(const Key& key) {
    Stripe& stripe = stripe_for(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    return stripe.map.erase(key) > 0;
  }

  /// Calls `fn(key, value)` for every entry, one stripe at a time (each
  /// stripe's lock is held only while that stripe is visited). Iteration
  /// order is unspecified; entries inserted or erased concurrently may or
  /// may not be seen.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Stripe& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe.mu);
      for (const auto& [key, value] : stripe.map) fn(key, value);
    }
  }

  /// Current entry count (sums stripe sizes; approximate under concurrency).
  std::size_t size() const {
    std::size_t total = 0;
    for (const Stripe& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe.mu);
      total += stripe.map.size();
    }
    return total;
  }

  /// Total live entries ever dropped by capacity eviction (erase() not
  /// included).
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  void clear() {
    for (Stripe& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe.mu);
      stripe.map.clear();
      stripe.fifo.clear();
    }
  }

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<Key, Value, Hash> map;
    std::deque<Key> fifo;  // insertion order; may hold erase() tombstones
  };

  /// Rebuilds the FIFO without tombstones once they dominate it, so an
  /// insert/erase churn workload cannot grow the deque unboundedly.
  /// Preserves relative order of live entries. Called with the lock held.
  void compact_locked(Stripe& stripe) {
    if (stripe.fifo.size() < stripe.map.size() * 2 + 16) return;
    std::deque<Key> live;
    for (const Key& key : stripe.fifo) {
      if (stripe.map.contains(key)) live.push_back(key);
    }
    stripe.fifo = std::move(live);
  }

  const Stripe& stripe_for(const Key& key) const {
    return stripes_[Hash{}(key) % kStripes];
  }
  Stripe& stripe_for(const Key& key) {
    return stripes_[Hash{}(key) % kStripes];
  }

  std::size_t per_stripe_cap_;
  std::vector<Stripe> stripes_;  // never resized; mutexes stay put
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace tangled::util
