// A small shared worker pool for the data-parallel stages of the pipeline
// (census ingest sharding, bulk leaf issuance). Design constraints:
//
//  * Determinism first: parallel callers must partition work so that the
//    merged result is bit-identical to a serial run — the pool provides
//    scheduling, never ordering. `parallel_for` runs disjoint index ranges
//    and blocks until every index completed.
//  * One pool per process (`shared_pool()`), sized by the TANGLED_THREADS
//    environment knob: unset = hardware concurrency, 0 = serial (every
//    parallel_for degrades to an inline loop), N = N workers. The value is
//    validated as strictly as TANGLED_BENCH_CERTS — a typo must fail loudly,
//    not silently change the measurement configuration.
//  * No exceptions: tasks must not throw (library contract; programming
//    errors assert).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

namespace tangled::util {

/// Parses a TANGLED_THREADS-style value. Accepts a decimal integer in
/// [0, kMaxThreads]; anything else (empty, trailing junk, negative,
/// out of range) is nullopt.
std::optional<std::size_t> parse_thread_count(std::string_view text);

inline constexpr std::size_t kMaxThreads = 256;

/// Worker count from the TANGLED_THREADS environment variable: unset/empty =
/// hardware concurrency (at least 1), "0" = serial, "N" = N workers.
/// Invalid values print a diagnostic and exit(2) — the same hard-failure
/// contract as TANGLED_BENCH_CERTS, for the same reason: a typo silently
/// falling back to a default would masquerade as a real configuration.
std::size_t configured_thread_count();

class ThreadPool {
 public:
  /// `n_workers == 0` builds a pool with no threads: `submit` runs the task
  /// inline and `parallel_for` degrades to a serial loop.
  explicit ThreadPool(std::size_t n_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. With zero workers the task runs inline before this
  /// returns. Tasks must not throw and must not call parallel_for on the
  /// same pool (workers blocking on workers would deadlock).
  void submit(std::function<void()> task);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `body(i)` for every i in [0, n), distributing contiguous index
/// chunks over the pool, and returns only when all n calls completed. Bodies
/// for different indices must write disjoint state; the iteration order
/// within the pool is unspecified (chunks are contiguous, so a body that
/// only touches state keyed by its index is always deterministic).
/// With an empty pool (or n <= 1) this is exactly `for (i...) body(i)`.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// The process-wide pool, sized by configured_thread_count() on first use.
ThreadPool& shared_pool();

}  // namespace tangled::util
