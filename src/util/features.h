// Runtime kill switches for the hot-path optimizations, in the style of
// TANGLED_VERIFY_CACHE: each feature computes bit-identical results on and
// off — the toggles exist so the ablation benches and the equivalence tests
// can isolate one optimization at a time, and so a suspect machine can be
// diagnosed in production without a rebuild.
//
//  * TANGLED_BATCH_HASH — multi-buffer / hardware SHA-256 lanes and the
//    interned SimSig hash prefix. Off = the original scalar streaming path.
//  * TANGLED_MONTGOMERY — Montgomery-form modular exponentiation for odd
//    moduli. Off = the schoolbook divmod-per-multiply path.
//  * TANGLED_DENSE_IDS  — interned dense certificate ids as array-index
//    keys on the verify/census hot paths. Off = interned hex-string and
//    byte-compare keys (the PR 3 behaviour).
//  * TANGLED_ARENA_CERTS — arena-backed zero-copy certificate views in the
//    capture parse path. Off = per-cert owning byte vectors.
//
// Parsing contract matches TANGLED_VERIFY_CACHE: unset/"1"/"on"/"true"
// enables, "0"/"off"/"false" disables, anything else is a hard error. The
// set_* overrides exist for in-process A/B passes (benches, equivalence
// tests); they win over the environment.
#pragma once

namespace tangled::util {

bool batch_hash_enabled();
void set_batch_hash_enabled(bool enabled);

bool montgomery_enabled();
void set_montgomery_enabled(bool enabled);

bool dense_ids_enabled();
void set_dense_ids_enabled(bool enabled);

bool arena_certs_enabled();
void set_arena_certs_enabled(bool enabled);

/// RAII override for one feature, restoring the previous value on scope
/// exit — the ablation passes flip features around a census construction
/// and must not leak the flip into the next pass.
class FeatureOverride {
 public:
  using Getter = bool (*)();
  using Setter = void (*)(bool);
  FeatureOverride(Getter get, Setter set, bool value)
      : set_(set), previous_(get()) {
    set_(value);
  }
  ~FeatureOverride() { set_(previous_); }
  FeatureOverride(const FeatureOverride&) = delete;
  FeatureOverride& operator=(const FeatureOverride&) = delete;

 private:
  Setter set_;
  bool previous_;
};

}  // namespace tangled::util
