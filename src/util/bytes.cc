#include "util/bytes.h"

#include <algorithm>

namespace tangled {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

std::optional<Bytes> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(ByteView data) {
  return std::string(data.begin(), data.end());
}

bool bytes_less(ByteView a, ByteView b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

bool bytes_equal(ByteView a, ByteView b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

std::uint64_t fnv1a64(ByteView data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace tangled
