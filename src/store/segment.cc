#include "store/segment.h"

#include <cstring>

#include "crypto/hash.h"
#include "util/binio.h"

namespace tangled::store {

namespace {

/// The per-record digest covers the framing fields too, exactly like the
/// snapshot container's per-section digest.
std::array<std::uint8_t, kSegmentDigestSize> record_digest(std::uint32_t kind,
                                                           ByteView payload) {
  Bytes framing;
  util::put_u32(framing, kind);
  util::put_u64(framing, payload.size());
  crypto::Sha256 hasher;
  hasher.update(framing);
  hasher.update(payload);
  return hasher.digest();
}

constexpr std::size_t kDigestBytes = 32;

}  // namespace

Bytes encode_segment_header(std::uint32_t shard, std::uint64_t segment_id) {
  Bytes out;
  out.reserve(kSegmentHeaderSize);
  for (const char c : kSegmentMagic) {
    out.push_back(static_cast<std::uint8_t>(c));
  }
  util::put_u32(out, kSegmentVersion);
  util::put_u32(out, shard);
  util::put_u64(out, segment_id);
  return out;
}

void append_record(Bytes& out, RecordKind kind, ByteView payload) {
  const std::uint32_t kind_raw = static_cast<std::uint32_t>(kind);
  util::put_u32(out, kind_raw);
  util::put_u64(out, payload.size());
  append(out, payload);
  const auto digest = record_digest(kind_raw, payload);
  append(out, ByteView(digest.data(), digest.size()));
}

Bytes encode_cert_payload(std::uint64_t seq, const CertRecord& record) {
  Bytes out;
  out.reserve(8 + 3 * kDigestBytes + 8 + 8 + 8 + record.der.size());
  util::put_u64(out, seq);
  append(out, record.fingerprint);
  append(out, record.identity);
  append(out, record.spki);
  util::put_u64(out, record.membership);
  util::put_i64(out, record.not_after_unix);
  util::put_bytes(out, record.der);
  return out;
}

Bytes encode_flag_payload(std::uint64_t seq, ByteView fingerprint,
                          std::uint8_t census_shard, std::uint8_t flags) {
  Bytes out;
  out.reserve(8 + kDigestBytes + 2);
  util::put_u64(out, seq);
  append(out, fingerprint);
  util::put_u8(out, census_shard);
  util::put_u8(out, flags);
  return out;
}

Bytes encode_member_payload(std::uint64_t seq, ByteView fingerprint,
                            std::uint64_t membership) {
  Bytes out;
  out.reserve(8 + kDigestBytes + 8);
  util::put_u64(out, seq);
  append(out, fingerprint);
  util::put_u64(out, membership);
  return out;
}

Bytes encode_tombstone_payload(std::uint64_t seq, ByteView fingerprint) {
  Bytes out;
  out.reserve(8 + kDigestBytes);
  util::put_u64(out, seq);
  append(out, fingerprint);
  return out;
}

Result<SegmentHeaderInfo> parse_segment_header(ByteView file) {
  if (file.size() < kSegmentHeaderSize ||
      std::memcmp(file.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return parse_error("segment: bad magic or truncated header");
  }
  util::BinReader in(file.subspan(sizeof(kSegmentMagic)));
  const std::uint32_t version = in.u32().value();  // size checked above
  if (version != kSegmentVersion) {
    return unsupported_error("segment: version " + std::to_string(version) +
                             " (this build reads version " +
                             std::to_string(kSegmentVersion) + ")");
  }
  SegmentHeaderInfo info;
  info.shard = in.u32().value();
  info.segment_id = in.u64().value();
  return info;
}

std::optional<RecordView> SegmentScanner::next() {
  if (stop_ != ScanStop::kCleanEof) return std::nullopt;
  if (pos_ == file_.size()) return std::nullopt;
  const std::size_t remaining = file_.size() - pos_;
  if (remaining < kRecordOverhead) {
    stop_ = ScanStop::kTruncatedTail;
    detail_ = "truncated record framing at end of file";
    return std::nullopt;
  }
  util::BinReader in(file_.subspan(pos_));
  const std::uint32_t kind_raw = in.u32().value();
  const std::uint64_t len = in.u64().value();
  if (len > remaining - kRecordOverhead) {
    stop_ = ScanStop::kTruncatedTail;
    detail_ = "record payload runs past end of file";
    return std::nullopt;
  }
  const ByteView payload = in.take(static_cast<std::size_t>(len)).value();
  const ByteView stored = in.take(kSegmentDigestSize).value();
  const auto computed = record_digest(kind_raw, payload);
  if (std::memcmp(stored.data(), computed.data(), kSegmentDigestSize) != 0) {
    stop_ = ScanStop::kDamage;
    detail_ = "record checksum mismatch at offset " + std::to_string(pos_);
    return std::nullopt;
  }

  RecordView view;
  view.kind_raw = kind_raw;
  view.offset = pos_;
  view.length = kRecordOverhead + len;

  util::BinReader body(payload);
  switch (static_cast<RecordKind>(kind_raw)) {
    case RecordKind::kCert: {
      view.kind = RecordKind::kCert;
      auto seq = body.u64();
      auto fp = body.take(kDigestBytes);
      auto identity = body.take(kDigestBytes);
      auto spki = body.take(kDigestBytes);
      auto membership = body.u64();
      auto not_after = body.i64();
      auto der = body.bytes();
      if (!seq.ok() || !fp.ok() || !identity.ok() || !spki.ok() ||
          !membership.ok() || !not_after.ok() || !der.ok() ||
          !body.at_end()) {
        stop_ = ScanStop::kDamage;
        detail_ = "malformed cert record at offset " + std::to_string(pos_);
        return std::nullopt;
      }
      view.seq = seq.value();
      view.fingerprint = fp.value();
      view.identity = identity.value();
      view.spki = spki.value();
      view.membership = membership.value();
      view.not_after_unix = not_after.value();
      view.der = der.value();
      break;
    }
    case RecordKind::kFlag: {
      view.kind = RecordKind::kFlag;
      auto seq = body.u64();
      auto fp = body.take(kDigestBytes);
      auto shard = body.u8();
      auto flags = body.u8();
      if (!seq.ok() || !fp.ok() || !shard.ok() || !flags.ok() ||
          !body.at_end()) {
        stop_ = ScanStop::kDamage;
        detail_ = "malformed flag record at offset " + std::to_string(pos_);
        return std::nullopt;
      }
      view.seq = seq.value();
      view.fingerprint = fp.value();
      view.census_shard = shard.value();
      view.flags = flags.value();
      break;
    }
    case RecordKind::kMember: {
      view.kind = RecordKind::kMember;
      auto seq = body.u64();
      auto fp = body.take(kDigestBytes);
      auto membership = body.u64();
      if (!seq.ok() || !fp.ok() || !membership.ok() || !body.at_end()) {
        stop_ = ScanStop::kDamage;
        detail_ = "malformed member record at offset " + std::to_string(pos_);
        return std::nullopt;
      }
      view.seq = seq.value();
      view.fingerprint = fp.value();
      view.membership = membership.value();
      break;
    }
    case RecordKind::kTombstone: {
      view.kind = RecordKind::kTombstone;
      auto seq = body.u64();
      auto fp = body.take(kDigestBytes);
      if (!seq.ok() || !fp.ok() || !body.at_end()) {
        stop_ = ScanStop::kDamage;
        detail_ =
            "malformed tombstone record at offset " + std::to_string(pos_);
        return std::nullopt;
      }
      view.seq = seq.value();
      view.fingerprint = fp.value();
      break;
    }
    default:
      // Unknown kind with an intact checksum: a newer writer's record.
      // Every kind leads with the sequence number, so recover it when
      // present; otherwise surface framing only. The caller skips what it
      // does not understand (and compaction copies unknown records
      // verbatim, so a downgrade does not destroy a newer build's data).
      if (auto seq = body.u64(); seq.ok()) view.seq = seq.value();
      break;
  }
  pos_ += static_cast<std::size_t>(view.length);
  return view;
}

}  // namespace tangled::store
