#include "store/maintainer.h"

#include <algorithm>
#include <utility>

#include "obs/obs.h"

namespace tangled::store {

using Clock = std::chrono::steady_clock;

Maintainer::Maintainer(CertStore& store, MaintainerConfig config)
    : store_(store), config_(std::move(config)) {
  if (config_.poll_interval_ms == 0) config_.poll_interval_ms = 1;
  if (config_.retry_backoff_ms == 0) config_.retry_backoff_ms = 1;
  if (config_.max_backoff_ms < config_.retry_backoff_ms) {
    config_.max_backoff_ms = config_.retry_backoff_ms;
  }
  if (config_.degrade_after_failures == 0) config_.degrade_after_failures = 1;
}

Maintainer::~Maintainer() { stop(); }

Result<void> Maintainer::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) return state_error("maintainer: start() after stop()");
  if (started_) return {};
  started_ = true;
  thread_ = std::thread([this] { loop(); });
  return {};
}

void Maintainer::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Maintainer::quiesce() {
  std::unique_lock<std::mutex> lock(mu_);
  paused_ = true;
  cv_.wait(lock, [this] { return !pass_in_flight_; });
}

void Maintainer::resume_scheduling() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

bool Maintainer::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.degraded;
}

MaintainerStats Maintainer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string Maintainer::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "maintenance ";
  out += stats_.degraded ? "degraded" : "ok";
  out += " passes=" + std::to_string(stats_.passes);
  out += " reclaimed=" + std::to_string(stats_.reclaimed_bytes);
  if (stats_.failures != 0) {
    out += " failures=" + std::to_string(stats_.failures);
  }
  if (!stats_.last_error.empty()) {
    out += " last_error=" + stats_.last_error;
  }
  return out;
}

bool Maintainer::should_compact(const StoreStats& stats) const {
  if (stats.disk_bytes < config_.min_disk_bytes) return false;
  const std::uint64_t total = stats.live_records + stats.dead_records;
  if (total != 0) {
    const double dead_ratio =
        static_cast<double>(stats.dead_records) / static_cast<double>(total);
    if (dead_ratio >= config_.dead_ratio_trigger) return true;
  }
  const double amplification =
      static_cast<double>(stats.disk_bytes) /
      static_cast<double>(std::max<std::uint64_t>(stats.live_bytes, 1));
  return amplification >= config_.amplification_trigger;
}

void Maintainer::publish_gauges(const StoreStats& stats) const {
  TANGLED_OBS_GAUGE_SET("store.disk_bytes",
                        static_cast<std::int64_t>(stats.disk_bytes));
  TANGLED_OBS_GAUGE_SET("store.live_bytes",
                        static_cast<std::int64_t>(stats.live_bytes));
  TANGLED_OBS_GAUGE_SET("store.dead_records",
                        static_cast<std::int64_t>(stats.dead_records));
  TANGLED_OBS_GAUGE_SET("store.segments",
                        static_cast<std::int64_t>(stats.segments));
}

Result<ShardCompaction> Maintainer::compact_one(std::uint32_t shard,
                                                std::uint64_t stable) {
  if (config_.compact_hook) return config_.compact_hook(shard, stable);
  return store_.compact_shard(shard, stable);
}

void Maintainer::note_failure(const std::string& message) {
  bool entered_degraded = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failures;
    ++stats_.consecutive_failures;
    stats_.last_error = message;
    const std::uint32_t shift =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(
            stats_.consecutive_failures - 1, 16));
    const std::uint64_t backoff_ms =
        std::min<std::uint64_t>(config_.max_backoff_ms,
                                std::uint64_t{config_.retry_backoff_ms}
                                    << shift);
    backoff_until_ = Clock::now() + std::chrono::milliseconds(backoff_ms);
    if (!stats_.degraded &&
        stats_.consecutive_failures >= config_.degrade_after_failures) {
      stats_.degraded = true;
      entered_degraded = true;
      // Degraded retries tick at the slowest cadence only.
      backoff_until_ =
          Clock::now() + std::chrono::milliseconds(config_.max_backoff_ms);
    }
  }
  TANGLED_OBS_INC("store.maintenance.failures");
  if (entered_degraded) {
    TANGLED_OBS_INC("store.maintenance.degraded_entries");
    TANGLED_OBS_GAUGE_SET("store.maintenance.degraded", 1);
  }
}

Result<void> Maintainer::run_pass(bool force) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Serialize passes here (not just in the store) so quiesce() can wait
    // on pass_in_flight_ alone.
    cv_.wait(lock, [this] { return !pass_in_flight_; });
    pass_in_flight_ = true;
  }
  const auto finish = [this](const Result<void>& result) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pass_in_flight_ = false;
    }
    cv_.notify_all();
    return result;
  };

  const StoreStats before = store_.stats();
  publish_gauges(before);
  if (!force && !should_compact(before)) return finish({});

  const std::uint64_t stable = config_.stable_seq ? config_.stable_seq() : 0;
  std::uint64_t reclaimed = 0, dropped = 0, rewrites = 0, skips = 0;
  for (std::uint32_t shard = 0; shard < store_.config().shards; ++shard) {
    auto pass = compact_one(shard, stable);
    if (!pass.ok()) {
      note_failure(pass.error().message);
      return finish(pass.error());
    }
    if (pass.value().skipped) {
      ++skips;
    } else {
      ++rewrites;
      dropped += pass.value().records_dropped;
      if (pass.value().bytes_before > pass.value().bytes_after) {
        reclaimed += pass.value().bytes_before - pass.value().bytes_after;
      }
    }
    if (config_.shard_pacing_ms != 0 &&
        shard + 1 != store_.config().shards) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock,
                   std::chrono::milliseconds(config_.shard_pacing_ms),
                   [this] { return stop_requested_; });
      if (stop_requested_) break;
    }
  }
  // Refresh the index accelerator after a successful pass; failure here
  // only costs the next open a rescan.
  (void)store_.write_index();

  bool left_degraded = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.passes;
    stats_.shard_compactions += rewrites;
    stats_.skipped_shards += skips;
    stats_.reclaimed_bytes += reclaimed;
    stats_.dropped_records += dropped;
    stats_.consecutive_failures = 0;
    left_degraded = stats_.degraded;
    stats_.degraded = false;
    backoff_until_ = Clock::time_point{};
  }
  TANGLED_OBS_INC("store.maintenance.passes");
  TANGLED_OBS_ADD("store.maintenance.reclaimed_bytes", reclaimed);
  if (left_degraded) TANGLED_OBS_GAUGE_SET("store.maintenance.degraded", 0);
  publish_gauges(store_.stats());
  return finish({});
}

Result<BackupReport> Maintainer::backup(const std::string& dir) {
  auto report = store_.backup(dir);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (report.ok()) {
      ++stats_.backups;
    } else {
      ++stats_.backup_failures;
      stats_.last_error = report.error().message;
    }
  }
  if (!report.ok()) TANGLED_OBS_INC("store.maintenance.backup_failures");
  return report;
}

void Maintainer::loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock,
                   std::chrono::milliseconds(config_.poll_interval_ms),
                   [this] { return stop_requested_; });
      if (stop_requested_) return;
      if (paused_) continue;
      if (backoff_until_ != Clock::time_point{} &&
          Clock::now() < backoff_until_) {
        continue;
      }
    }
    // Threshold evaluation happens inside run_pass (which also refreshes
    // the gauges each poll). Errors were already recorded by
    // note_failure; the scheduler just keeps ticking.
    (void)run_pass(/*force=*/false);
  }
}

}  // namespace tangled::store
