// Append-only segment files for the disk-backed certificate store.
//
// A segment is a log of framed records, using the same framing discipline
// as the TNGLSNP1 snapshot container (recover/snapshot.h): every record
// carries a SHA-256 trailer over its framing fields and payload, so a
// flipped byte invalidates exactly one record and the scanner can say
// precisely where the clean prefix ends.
//
// Layout (all integers little-endian):
//
//   magic    "TNGLSEG1"                                     8 bytes
//   version  u32 (currently 1)                              4 bytes
//   shard    u32 (which store shard owns this log)          4 bytes
//   id       u64 segment id (monotonic per shard)           8 bytes
//   then per record:
//     kind     u32                                          4 bytes
//     len      u64 payload length                           8 bytes
//     payload  `len` bytes
//     digest   SHA-256 over (kind_le || len_le || payload) 32 bytes
//
// Record kinds (every payload starts with the global sequence number):
//   kCert      seq u64, fingerprint[32], identity[32], spki[32],
//              membership u64, not_after i64, der (length-prefixed)
//   kFlag      seq u64, fingerprint[32], census_shard u8, flags u8
//              — the census's leaf-state journal (1 = seen, 2 = validated)
//   kMember    seq u64, fingerprint[32], membership u64 (OR'ed in)
//   kTombstone seq u64, fingerprint[32]
//
// Corruption taxonomy mirrors the snapshot container: a bad header is
// kParse (the whole file is untrusted), a future version is a typed
// kUnsupported refusal, and a scan stops at the first framing or checksum
// failure — the scanner reports whether the stop is a truncated record at
// end-of-file (the benign torn-tail shape a crash mid-append leaves) or
// damage inside the sealed region.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.h"
#include "util/result.h"

namespace tangled::store {

inline constexpr char kSegmentMagic[8] = {'T', 'N', 'G', 'L',
                                          'S', 'E', 'G', '1'};
inline constexpr std::uint32_t kSegmentVersion = 1;
inline constexpr std::size_t kSegmentDigestSize = 32;
/// magic + version + shard + id.
inline constexpr std::size_t kSegmentHeaderSize = 8 + 4 + 4 + 8;
/// kind + len prefix + digest trailer.
inline constexpr std::size_t kRecordOverhead = 4 + 8 + kSegmentDigestSize;
/// Byte offset of the DER bytes inside a framed kCert record: framing
/// (kind + len), then seq, three digests, membership, not_after, and the
/// DER length prefix. get() turns an index entry into a view with this.
inline constexpr std::size_t kCertDerOffset =
    4 + 8 + 8 + 3 * 32 + 8 + 8 + 8;

enum class RecordKind : std::uint32_t {
  kCert = 1,
  kFlag = 2,
  kMember = 3,
  kTombstone = 4,
};

/// The fields a caller hands to CertStore::put. Views must stay valid for
/// the duration of the call only — the record is copied into the log.
struct CertRecord {
  ByteView fingerprint;  // SHA-256, 32 bytes
  ByteView identity;     // identity-key digest, 32 bytes
  ByteView spki;         // SPKI digest, 32 bytes
  std::uint64_t membership = 0;
  std::int64_t not_after_unix = 0;
  ByteView der;
};

/// One decoded record; views point into the scanned segment buffer.
struct RecordView {
  std::uint32_t kind_raw = 0;  // as stored; may be unknown to this build
  RecordKind kind = RecordKind::kCert;
  std::uint64_t seq = 0;
  ByteView fingerprint;
  // kCert only:
  ByteView identity;
  ByteView spki;
  ByteView der;
  std::uint64_t membership = 0;
  std::int64_t not_after_unix = 0;
  // kFlag only:
  std::uint8_t census_shard = 0;
  std::uint8_t flags = 0;
  // Framing, for compaction's verbatim record copies:
  std::uint64_t offset = 0;  // record start within the segment file
  std::uint64_t length = 0;  // framed length including the digest trailer
};

Bytes encode_segment_header(std::uint32_t shard, std::uint64_t segment_id);

/// Appends one framed record (framing + payload + digest trailer).
void append_record(Bytes& out, RecordKind kind, ByteView payload);

Bytes encode_cert_payload(std::uint64_t seq, const CertRecord& record);
Bytes encode_flag_payload(std::uint64_t seq, ByteView fingerprint,
                          std::uint8_t census_shard, std::uint8_t flags);
Bytes encode_member_payload(std::uint64_t seq, ByteView fingerprint,
                            std::uint64_t membership);
Bytes encode_tombstone_payload(std::uint64_t seq, ByteView fingerprint);

struct SegmentHeaderInfo {
  std::uint32_t shard = 0;
  std::uint64_t segment_id = 0;
};

/// kParse on bad magic / truncated header, kUnsupported on a future
/// version — the same typed refusal the snapshot container makes.
Result<SegmentHeaderInfo> parse_segment_header(ByteView file);

/// Why a scan stopped short of a clean end-of-file.
enum class ScanStop : std::uint8_t {
  kCleanEof = 0,
  /// Record framing or payload runs past end-of-file: the shape a crash
  /// mid-append leaves. Benign for the newest segment of a shard — the
  /// torn suffix postdates the last flush — and truncated away on open.
  kTruncatedTail = 1,
  /// Checksum mismatch or unparseable payload inside the file: damage in
  /// the sealed region, never silently dropped.
  kDamage = 2,
};

/// Walks a mapped segment's records. Call parse_segment_header first;
/// the scanner assumes the header was validated.
class SegmentScanner {
 public:
  explicit SegmentScanner(ByteView file)
      : file_(file), pos_(kSegmentHeaderSize) {}

  /// Next record, or nullopt when the scan cannot continue — check
  /// stop() to distinguish a clean end from a torn tail or damage.
  /// Records of unknown kind are returned with only framing and kind_raw
  /// populated; callers skip what they do not understand (the snapshot
  /// container's unknown-section rule).
  std::optional<RecordView> next();

  ScanStop stop() const { return stop_; }
  /// Offset of the first byte not covered by cleanly scanned records —
  /// the truncation point for a torn tail.
  std::uint64_t stop_offset() const { return pos_; }
  std::string stop_detail() const { return detail_; }

 private:
  ByteView file_;
  std::size_t pos_;
  ScanStop stop_ = ScanStop::kCleanEof;
  std::string detail_;
};

}  // namespace tangled::store
