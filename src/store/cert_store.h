// CertStore: a log-structured, memory-mapped, sharded certificate store.
//
// The paper's Notary corpus held 1.9M unique certificates; the roadmap
// target is 10–100× that, which no longer fits the in-memory NotaryDb /
// census accumulators. The store turns the observation state into a
// durable append-only log:
//
//  * Certificates are appended as kCert records (DER plus the interned
//    digest triple) into per-shard segment files, routed by the first
//    fingerprint byte so appends from parallel shards rarely contend.
//  * The census's leaf dedup state is journaled as tiny kFlag records
//    (seen / validated transitions — at most two per leaf, ever).
//  * Every record carries a global monotonically-increasing sequence
//    number. A recover checkpoint stores only the sequence cursor; resume
//    replays records with seq <= cursor to rebuild in-memory state, so
//    checkpoint bytes stop growing with the corpus.
//
// The in-memory index (fingerprint → segment/offset, membership bitmask,
// SPKI → certificates; all keyed through util::DigestInterner dense ids)
// is rebuilt on recovery: from the checksummed index file when it matches
// the segment files on disk, by scanning the segments otherwise. The index
// file is a pure accelerator — deleting it loses nothing.
//
// Reads pin: get() returns a PinnedRecord whose DER view is backed by a
// shared mapping that compaction and eviction leave untouched while pins
// exist (the Arena::Pin witness idea, here with shared ownership so a
// recycled segment is unreachable by construction). Compaction rewrites
// live records into a fresh segment and unlinks the old files; pinned
// readers keep the old mapping alive through POSIX unlink semantics.
// Eviction unmaps cold, unpinned, sealed segments beyond
// StoreConfig::max_mapped_segments.
//
// Crash taxonomy at open() mirrors the snapshot container: stale atomic-
// write temps are swept (never parsed as segments), a torn tail on the
// newest segment of a shard is truncated away (those records postdate the
// last flush, so no checkpoint cursor can cover them), and damage below
// the clean prefix is surfaced through min_stop_seq() so resume can
// refuse to trust an incomplete replay.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/segment.h"
#include "util/bytes.h"
#include "util/interner.h"
#include "util/mmap_file.h"
#include "util/result.h"

namespace tangled::store {

struct StoreConfig {
  /// Directory holding segment files and the index. Created if absent.
  std::string dir;
  /// Log shards (by first fingerprint byte). More shards = less append
  /// contention and smaller compaction granules.
  std::uint32_t shards = 8;
  /// Active segments seal and rotate past this size.
  std::uint64_t max_segment_bytes = 64ull << 20;
  /// Sealed segments beyond this many stay unmapped; the least recently
  /// used cold mapping is evicted first. Pinned segments never evict.
  std::uint32_t max_mapped_segments = 8;
};

/// What open() found on disk.
struct StoreReport {
  bool index_loaded = false;  // index file matched the segments
  bool full_rescan = false;   // index missing/stale; segments rescanned
  std::size_t swept_temps = 0;
  std::uint64_t truncated_bytes = 0;  // torn tails dropped
  /// Old segments found fully contained (by seq range) in a later
  /// compacted segment of the same shard — the publish-before-unlink
  /// crash window. They were unlinked and the survivors rescanned.
  std::size_t superseded_segments = 0;
  std::vector<std::string> notes;
};

struct StoreStats {
  std::uint64_t live_records = 0;
  std::uint64_t dead_records = 0;
  std::uint64_t segments = 0;
  std::uint64_t mapped_segments = 0;
  std::uint64_t appended_bytes = 0;
  std::uint64_t evictions = 0;
  std::uint64_t reopens = 0;
  std::uint64_t compactions = 0;
  std::uint64_t last_seq = 0;
  /// Bytes currently occupying the directory's segment files versus bytes
  /// referenced by live records — the amplification the maintenance
  /// scheduler triggers on.
  std::uint64_t disk_bytes = 0;
  std::uint64_t live_bytes = 0;
};

/// What one incremental per-shard compaction pass did.
struct ShardCompaction {
  bool skipped = false;  // nothing worth rewriting in this shard
  std::uint64_t segments_rewritten = 0;
  std::uint64_t records_dropped = 0;
  std::uint64_t bytes_before = 0;
  std::uint64_t bytes_after = 0;
};

/// What a live backup captured.
struct BackupReport {
  std::uint64_t files = 0;
  std::uint64_t bytes = 0;
  std::uint64_t hardlinked = 0;  // sealed segments shared by link(2)
  std::uint64_t copied = 0;      // active prefixes and link fallbacks
  /// Highest sequence number the backup covers: every record at or below
  /// it is in the backup, nothing above it is guaranteed.
  std::uint64_t seq = 0;
};

/// What restore_backup() materialized.
struct RestoreReport {
  std::uint64_t files = 0;
  std::uint64_t bytes = 0;
};

/// One segment's runtime identity: the mapping is established at
/// construction and never changes, so a view handed out against it stays
/// valid for the Segment's lifetime. Extending an active segment swaps in
/// a *new* Segment object; pinned readers keep the old one alive.
class Segment {
 public:
  Segment(std::string path, std::uint32_t shard, std::uint64_t id,
          util::MmapFile map)
      : path_(std::move(path)), shard_(shard), id_(id), map_(std::move(map)) {}

  ByteView view() const { return map_.view(); }
  std::uint32_t shard() const { return shard_; }
  std::uint64_t id() const { return id_; }
  const std::string& path() const { return path_; }

  std::uint64_t pins() const {
    return pins_.load(std::memory_order_acquire);
  }

 private:
  friend class PinnedRecord;
  std::string path_;
  std::uint32_t shard_ = 0;
  std::uint64_t id_ = 0;
  util::MmapFile map_;
  mutable std::atomic<std::uint64_t> pins_{0};
};

/// RAII witness over a record read: holds the backing segment mapped (and
/// un-evictable) for as long as the view is alive. Move-only, like
/// Arena::Pin.
class PinnedRecord {
 public:
  PinnedRecord() = default;
  ~PinnedRecord() { release(); }
  PinnedRecord(PinnedRecord&& other) noexcept { *this = std::move(other); }
  PinnedRecord& operator=(PinnedRecord&& other) noexcept {
    if (this != &other) {
      release();
      segment_ = std::move(other.segment_);
      der_ = other.der_;
      other.der_ = {};
    }
    return *this;
  }
  PinnedRecord(const PinnedRecord&) = delete;
  PinnedRecord& operator=(const PinnedRecord&) = delete;

  ByteView der() const { return der_; }
  bool valid() const { return segment_ != nullptr; }

 private:
  friend class CertStore;
  PinnedRecord(std::shared_ptr<const Segment> segment, ByteView der)
      : segment_(std::move(segment)), der_(der) {
    segment_->pins_.fetch_add(1, std::memory_order_acq_rel);
  }
  void release() {
    if (segment_ != nullptr) {
      segment_->pins_.fetch_sub(1, std::memory_order_acq_rel);
      segment_.reset();
    }
  }
  std::shared_ptr<const Segment> segment_;
  ByteView der_;
};

class CertStore {
 public:
  /// Opens (or creates) the store at config.dir: sweeps stale atomic-write
  /// temps, loads or rebuilds the index, truncates torn tails. The report
  /// says what happened. kUnsupported on a future-format segment;
  /// kInvalidState when the directory was written under a different shard
  /// count (a configuration mismatch refuses rather than silently dropping
  /// the missing shards' certificates).
  static Result<std::unique_ptr<CertStore>> open(StoreConfig config);
  ~CertStore();

  const StoreReport& report() const { return report_; }
  const StoreConfig& config() const { return config_; }

  // --- Writes -------------------------------------------------------------
  /// Appends a kCert record unless a live record with this fingerprint
  /// already exists. Returns true when the record was appended.
  Result<bool> put(const CertRecord& record);
  /// Appends a census leaf-state journal record (no index effect).
  Result<void> journal_flag(ByteView fingerprint, std::uint8_t census_shard,
                            std::uint8_t flags);
  /// ORs store-membership bits into an existing record. kNotFound when no
  /// live record has this fingerprint.
  Result<void> merge_membership(ByteView fingerprint, std::uint64_t bits);
  /// Appends a tombstone. Returns true when a live record was removed.
  Result<bool> remove(ByteView fingerprint);

  // --- Index queries ------------------------------------------------------
  bool contains(ByteView fingerprint) const;
  bool contains_identity(ByteView identity) const;
  std::uint64_t membership_of(ByteView fingerprint) const;
  /// OR of membership over live certificates carrying this SPKI — the
  /// Chromium-root-store-JSON question "which stores trust this key",
  /// answered across re-issues of the same key.
  std::uint64_t membership_by_spki(ByteView spki) const;
  std::vector<Bytes> fingerprints_by_spki(ByteView spki) const;

  std::size_t live_count() const;
  std::size_t live_identity_count() const;
  std::size_t live_unexpired_count(std::int64_t now_unix) const;
  std::uint64_t last_seq() const;

  /// Minimum clean sequence number among shards whose log lost records at
  /// open (damage, or a torn tail that had to be dropped). UINT64_MAX when
  /// every shard scanned clean. A resume whose checkpoint cursor exceeds
  /// this cannot trust replay and must cold-start.
  std::uint64_t min_stop_seq() const { return min_stop_seq_; }

  /// Pinned read of a certificate's DER.
  Result<PinnedRecord> get(ByteView fingerprint);

  /// Live entries in fingerprint order (deterministic across runs/modes).
  void for_each_live(
      const std::function<void(ByteView fingerprint, ByteView identity,
                               ByteView spki, std::uint64_t membership,
                               std::int64_t not_after_unix)>& fn) const;

  /// Replays records with seq <= max_seq in sequence order. The resume
  /// path rebuilds in-memory dedup state from this.
  Result<void> replay(
      std::uint64_t max_seq,
      const std::function<void(const RecordView&)>& fn) const;

  // --- Maintenance --------------------------------------------------------
  /// fsyncs every active segment. Checkpoints call this before writing the
  /// snapshot so every record at or below the cursor is durable.
  Result<void> flush();
  /// Writes the checksummed index file (atomic replace).
  Result<void> write_index();
  /// Rewrites each shard's live records into a fresh segment, dropping
  /// records of certificates tombstoned at or before `stable_seq` (the
  /// oldest checkpoint cursor that could still be resumed from — records
  /// above it are preserved verbatim so any later resume still replays
  /// exactly). Concurrent pinned readers keep their old segment mappings.
  /// Implemented as one compact_shard() pass per shard.
  Result<void> compact(std::uint64_t stable_seq);
  /// One incremental compaction pass over a single shard, safe to run
  /// while appends continue: the critical sections only seal the active
  /// segment and swap bookkeeping; the rewrite itself reads immutable
  /// sealed segments with no lock held. Skips (rather than churns) when
  /// the shard has no stable-dead records and at most one sealed segment.
  /// The compacted segment takes an id *below* the fresh active segment,
  /// keeping the shard's active segment at the highest id — the invariant
  /// the duplicate-range reconcile at open() depends on.
  Result<ShardCompaction> compact_shard(std::uint32_t shard,
                                        std::uint64_t stable_seq);
  /// Live backup into `dir` (created if absent; refused if it already
  /// holds a manifest): hardlinks sealed segments where the filesystem
  /// allows, copies the flushed prefix of active segments, and writes a
  /// manifest with a per-file SHA-256 over exactly the covered prefix.
  /// Safe concurrent with appends and compaction — segment mappings are
  /// pinned under the lock first, so a segment unlinked mid-backup still
  /// backs up from its mapping. The manifest is written last: a backup
  /// directory without one is an incomplete backup and restore refuses it.
  Result<BackupReport> backup(const std::string& dir);
  /// Verifies a backup (manifest present, every per-file SHA-256 intact)
  /// and materializes it into `dest_dir` (which must not already hold a
  /// store). Staged through a sibling directory and renamed into place, so
  /// a crash mid-restore never leaves a partial store for open() to trust.
  /// The restored directory carries no index file: the next open() takes
  /// the full-rescan recovery path by construction.
  static Result<RestoreReport> restore_backup(const std::string& backup_dir,
                                              const std::string& dest_dir);
  /// Deletes every record, segment, and index entry — the cold-start
  /// companion: snapshot state gone means the log must restart too.
  Result<void> reset();

  StoreStats stats() const;

 private:
  struct Entry {
    std::uint32_t identity_id = 0;
    std::uint32_t spki_id = 0;
    std::uint64_t membership = 0;
    std::int64_t not_after_unix = 0;
    std::uint64_t seq = 0;            // newest kCert seq
    std::uint64_t tombstone_seq = 0;  // newest kTombstone seq, 0 = none
    bool live = false;
    std::uint32_t shard = 0;
    std::uint64_t segment_id = 0;
    std::uint64_t offset = 0;  // framed record start
    std::uint64_t length = 0;  // framed record length
  };

  /// One shard's log state: the active segment's stdio writer plus every
  /// segment's location on disk.
  struct ShardLog {
    std::FILE* writer = nullptr;
    std::uint64_t active_id = 0;
    std::uint64_t active_size = 0;
    std::uint64_t next_id = 0;
    /// Highest checksum-verified seq in this shard during the open scan
    /// (index-trusted prefixes are re-verified record by record on the
    /// fast-forward walk). min_stop_seq_ derives from this when damage is
    /// found, so it must never exceed what was actually proven intact.
    std::uint64_t last_clean_seq = 0;
    /// id → file size (as known to the index; active grows past it).
    std::map<std::uint64_t, std::uint64_t> segment_sizes;
  };

  CertStore(StoreConfig config);

  std::uint32_t shard_of(ByteView fingerprint) const;
  std::string segment_path(std::uint32_t shard, std::uint64_t id) const;
  std::string index_path() const;

  Result<void> recover_from_disk();
  Result<void> load_index(ByteView payload,
                          std::map<std::pair<std::uint32_t, std::uint64_t>,
                                   std::uint64_t>& listed);
  Bytes encode_index() const;
  Result<void> scan_segment(std::uint32_t shard, std::uint64_t id,
                            std::uint64_t from_offset, bool newest_in_shard);
  void apply_scanned_record(std::uint32_t shard, std::uint64_t id,
                            const RecordView& record);
  void rebuild_derived();
  /// Unlinks segments whose scanned seq range is fully contained in a
  /// later segment of the same shard (the compaction publish-before-unlink
  /// crash window). Returns how many were removed; a nonzero return means
  /// the in-memory state must be rebuilt by a clean rescan.
  std::size_t reconcile_superseded_segments();
  Result<void> open_writer(std::uint32_t shard, bool fresh);
  Result<void> append_to_shard(std::uint32_t shard, ByteView framed);
  Result<void> maybe_rotate(std::uint32_t shard);
  /// Flushes and closes every shard writer. Returns false when any flush
  /// or close reported an error — bytes may not have reached the files, so
  /// the caller must not publish a trusted index over them.
  bool close_writers();

  /// Returns the (possibly freshly mapped) segment, updating the LRU and
  /// evicting cold mappings. `min_size` forces a remap when an existing
  /// mapping predates appended records the caller needs.
  Result<std::shared_ptr<const Segment>> mapped_segment(
      std::uint32_t shard, std::uint64_t id, std::uint64_t min_size);
  void evict_cold_locked();

  StoreConfig config_;
  StoreReport report_;
  /// Set only after recovery succeeds. A store whose open was refused
  /// (e.g. shard-count mismatch) must not write its empty in-memory index
  /// over the valid one on destruction.
  bool opened_ = false;

  /// Serializes whole maintenance operations (compact_shard, reset) so
  /// two rewrites never race over the same shard's sealed set. Held for
  /// the full pass, *around* the short mu_/map_mu_ critical sections.
  /// Lock order: maintenance_mu_ before mu_ before map_mu_. Appends and
  /// reads never take it; backup() deliberately does not either, so a
  /// live backup can run concurrently with a compaction pass.
  std::mutex maintenance_mu_;
  /// Guards the index, sequence counter, and shard writers. Lock order:
  /// mu_ before map_mu_.
  mutable std::mutex mu_;
  std::uint64_t seq_ = 0;
  std::uint64_t min_stop_seq_ = ~std::uint64_t{0};
  util::DigestInterner fp_ids_;
  util::DigestInterner identity_ids_;
  util::DigestInterner spki_ids_;
  std::vector<Entry> entries_;  // by fingerprint dense id
  std::vector<std::uint32_t> identity_live_;      // live certs per identity id
  std::vector<std::vector<std::uint32_t>> by_spki_;  // spki id → fp ids
  /// kMember records seen during scan, resolved against tombstones once
  /// the whole scan is done (fp id → (seq, bits)).
  std::unordered_map<std::uint32_t,
                     std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      scan_members_;
  /// (shard, id) → [min seq, max seq] over every record the open scan
  /// walked (fast-forwarded prefixes included). Only meaningful during
  /// recover_from_disk(); reconcile_superseded_segments() consumes it.
  std::map<std::pair<std::uint32_t, std::uint64_t>,
           std::pair<std::uint64_t, std::uint64_t>>
      scan_seq_ranges_;
  std::vector<ShardLog> shards_;

  /// Guards the mapping table and LRU.
  mutable std::mutex map_mu_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::shared_ptr<Segment>>
      mapped_;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> lru_;

  std::uint64_t dead_records_ = 0;
  std::uint64_t appended_bytes_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t reopens_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace tangled::store
