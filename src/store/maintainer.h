// store::Maintainer: background maintenance for a live CertStore.
//
// A notary that ingests continuously cannot stop the world to compact:
// the scheduler thread here watches the store's dead-record ratio and
// disk/live-bytes amplification and, past configurable thresholds, runs
// CertStore::compact_shard() one shard at a time — each pass seals and
// swaps under short critical sections and rewrites outside them, so
// appends are paced against, never blocked for, the rewrite.
//
// The stable_seq functor ties maintenance to the checkpoint layer without
// a dependency cycle: the store must not know about recover::, so the
// owner hands in a closure over
// recover::CheckpointingCensus::last_checkpoint_store_seq() (or any other
// oldest-resumable-cursor bound). Compaction never drops a record a
// resume from that cursor could still need.
//
// Failure is survivable by design: a failed compaction or backup never
// fails ingest. Failures back off exponentially (bounded), and after
// `degrade_after_failures` consecutive ones the maintainer enters
// *degraded* mode — the store keeps appending, automatic compaction drops
// to a slow retry cadence, and the condition is surfaced through
// health()/stats() gauges so /healthz can report it. A later successful
// pass clears the degradation.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "store/cert_store.h"
#include "util/result.h"

namespace tangled::store {

struct MaintainerConfig {
  /// Compact when dead records exceed this fraction of all records.
  double dead_ratio_trigger = 0.25;
  /// ... or when on-disk bytes exceed live bytes by this factor.
  double amplification_trigger = 2.5;
  /// Below this much on-disk data neither trigger fires — churning a tiny
  /// store reclaims nothing worth the rewrite.
  std::uint64_t min_disk_bytes = 1u << 20;
  /// Scheduler poll cadence.
  std::uint32_t poll_interval_ms = 50;
  /// Pause between per-shard passes, pacing the rewrite against ingest.
  std::uint32_t shard_pacing_ms = 0;
  /// First retry delay after a failed pass; doubles per consecutive
  /// failure up to max_backoff_ms.
  std::uint32_t retry_backoff_ms = 100;
  std::uint32_t max_backoff_ms = 5000;
  /// Consecutive failures before entering degraded (append-only) mode.
  /// While degraded, retries continue at max_backoff_ms cadence only.
  std::uint32_t degrade_after_failures = 3;
  /// Oldest checkpoint cursor any resume could still use — records
  /// tombstoned at or below it may be dropped. Unset means 0: compaction
  /// merges segments but drops nothing.
  std::function<std::uint64_t()> stable_seq;
  /// Test seam: replaces CertStore::compact_shard when set. Production
  /// code leaves it empty.
  std::function<Result<ShardCompaction>(std::uint32_t, std::uint64_t)>
      compact_hook;
};

struct MaintainerStats {
  std::uint64_t passes = 0;             // completed scheduler passes
  std::uint64_t shard_compactions = 0;  // non-skipped shard rewrites
  std::uint64_t skipped_shards = 0;
  std::uint64_t reclaimed_bytes = 0;  // bytes_before - bytes_after, summed
  std::uint64_t dropped_records = 0;
  std::uint64_t failures = 0;
  std::uint64_t consecutive_failures = 0;
  std::uint64_t backups = 0;
  std::uint64_t backup_failures = 0;
  bool degraded = false;
  std::string last_error;
};

class Maintainer {
 public:
  Maintainer(CertStore& store, MaintainerConfig config);
  ~Maintainer();  // stops the scheduler thread

  Maintainer(const Maintainer&) = delete;
  Maintainer& operator=(const Maintainer&) = delete;

  /// Starts the scheduler thread. Idempotent; kInvalidState after stop().
  Result<void> start();
  /// Stops the scheduler, waiting out any in-flight pass.
  void stop();

  /// Blocks until no pass is in flight, then holds the scheduler paused —
  /// serve-layer drains call this before the final checkpoint so the
  /// cursor lands on a settled log. resume_scheduling() re-arms it.
  void quiesce();
  void resume_scheduling();

  /// One full compaction pass over every shard, on the caller's thread.
  /// `force` bypasses the thresholds. Shares the failure/degradation
  /// bookkeeping with scheduled passes.
  Result<void> run_pass(bool force);

  /// Live backup via CertStore::backup, with maintainer bookkeeping: a
  /// failure is counted and surfaced but degrades nothing and never
  /// touches the ingest path.
  Result<BackupReport> backup(const std::string& dir);

  bool degraded() const;
  MaintainerStats stats() const;
  /// One-line health fragment for /healthz, e.g.
  /// "maintenance ok passes=3 reclaimed=1048576" or
  /// "maintenance degraded failures=5 last_error=...".
  std::string health() const;

 private:
  bool should_compact(const StoreStats& stats) const;
  void publish_gauges(const StoreStats& stats) const;
  Result<ShardCompaction> compact_one(std::uint32_t shard,
                                      std::uint64_t stable);
  void note_failure(const std::string& message);
  void loop();

  CertStore& store_;
  MaintainerConfig config_;
  std::thread thread_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool started_ = false;
  bool stopped_ = false;
  bool stop_requested_ = false;
  bool paused_ = false;
  bool pass_in_flight_ = false;
  /// Scheduler sleeps until this deadline after failures (backoff).
  std::chrono::steady_clock::time_point backoff_until_{};
  MaintainerStats stats_;
};

}  // namespace tangled::store
