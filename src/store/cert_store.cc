#include "store/cert_store.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <optional>
#include <unordered_set>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#define TANGLED_STORE_POSIX 1
#else
#define TANGLED_STORE_POSIX 0
#endif

#include "crypto/hash.h"
#include "obs/obs.h"
#include "recover/snapshot.h"
#include "util/atomic_file.h"
#include "util/binio.h"

namespace tangled::store {

namespace {

/// The store's index file reuses the TNGLSNP1 container with this private
/// section id — outside the recover::SectionId namespace on purpose; the
/// index is a different file with a different consumer.
constexpr std::uint32_t kIndexSection = 100;
constexpr std::uint32_t kIndexVersion = 1;
constexpr std::size_t kDigestBytes = 32;

std::string errno_message(const char* what, const std::string& path) {
  std::string out = what;
  out += " ";
  out += path;
  out += ": ";
  out += std::strerror(errno);
  return out;
}

/// Fixed-width segment file name so lexicographic directory order matches
/// (shard, id) order: shard-SSS-seg-NNNNNNNN.tseg
std::string segment_file_name(std::uint32_t shard, std::uint64_t id) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "shard-%03u-seg-%08" PRIu64 ".tseg", shard,
                id);
  return buf;
}

bool parse_segment_file_name(const std::string& name, std::uint32_t& shard,
                             std::uint64_t& id) {
  unsigned s = 0;
  unsigned long long n = 0;
  char tail[8] = {0};
  if (std::sscanf(name.c_str(), "shard-%u-seg-%llu.tse%1s", &s, &n, tail) != 3 ||
      tail[0] != 'g' || name.size() < 6 ||
      name.compare(name.size() - 5, 5, ".tseg") != 0) {
    return false;
  }
  shard = s;
  id = n;
  return true;
}

Result<std::uint64_t> file_size_of(const std::string& path) {
#if TANGLED_STORE_POSIX
  struct stat st{};
  if (stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return not_found_error("no such file: " + path);
    return state_error(errno_message("stat", path));
  }
  return static_cast<std::uint64_t>(st.st_size);
#else
  auto data = util::read_file(path, static_cast<std::size_t>(-1));
  if (!data.ok()) return data.error();
  return static_cast<std::uint64_t>(data.value().size());
#endif
}

Result<void> truncate_file(const std::string& path, std::uint64_t size) {
#if TANGLED_STORE_POSIX
  if (truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return state_error(errno_message("truncate", path));
  }
  return {};
#else
  auto data = util::read_file(path, static_cast<std::size_t>(-1));
  if (!data.ok()) return data.error();
  Bytes head(data.value().begin(),
             data.value().begin() + static_cast<std::ptrdiff_t>(size));
  return util::write_file_atomic(path, head);
#endif
}

}  // namespace

CertStore::CertStore(StoreConfig config) : config_(std::move(config)) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.shards > 256) config_.shards = 256;
  if (config_.max_mapped_segments == 0) config_.max_mapped_segments = 1;
  shards_.resize(config_.shards);
}

CertStore::~CertStore() {
  std::lock_guard<std::mutex> lock(mu_);
  const bool closed_clean = close_writers();
  // A refused open (configuration mismatch, damaged directory) tears down
  // a store that never held the data; writing its empty index here would
  // clobber the valid one the refusal was protecting.
  if (!opened_) return;
  // A close that lost bytes (flush or fclose failed) must not leave a
  // trusted index either: the index would claim segment sizes the files
  // never reached, and the next open would fast-forward past records that
  // do not exist. Skipping the index forces that open into a full rescan,
  // which finds whatever actually hit the disk.
  if (!closed_clean) {
    std::remove(index_path().c_str());
    return;
  }
  // A clean close leaves a matching index so the next open skips the
  // segment scan entirely; a crash (no dtor) just costs that open a scan.
  std::vector<recover::Section> sections;
  sections.push_back({kIndexSection, encode_index()});
  (void)recover::write_snapshot_file(index_path(), sections);
}

std::uint32_t CertStore::shard_of(ByteView fingerprint) const {
  return fingerprint.empty() ? 0 : fingerprint[0] % config_.shards;
}

std::string CertStore::segment_path(std::uint32_t shard,
                                    std::uint64_t id) const {
  return config_.dir + "/" + segment_file_name(shard, id);
}

std::string CertStore::index_path() const {
  return config_.dir + "/index.tnglidx";
}

Result<std::unique_ptr<CertStore>> CertStore::open(StoreConfig config) {
  if (config.dir.empty()) return state_error("store: empty directory");
#if TANGLED_STORE_POSIX
  if (mkdir(config.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return state_error(errno_message("mkdir", config.dir));
  }
#endif
  std::unique_ptr<CertStore> store(new CertStore(std::move(config)));
  // Sweep stale atomic-write temps *before* scanning, so an orphan left by
  // a crash between temp-write and rename is removed and never parsed as
  // a segment or index.
  store->report_.swept_temps =
      util::sweep_stale_temps_in_dir(store->config_.dir);
  if (store->report_.swept_temps != 0) {
    store->report_.notes.push_back(
        "swept " + std::to_string(store->report_.swept_temps) +
        " stale atomic-write temp(s)");
  }
  if (auto ok = store->recover_from_disk(); !ok.ok()) return ok.error();
  store->opened_ = true;
  TANGLED_OBS_INC("store.opens");
  return store;
}

// --- Recovery --------------------------------------------------------------

Result<void> CertStore::recover_from_disk() {
  using SegKey = std::pair<std::uint32_t, std::uint64_t>;

  const auto discover = [this]() -> Result<std::map<SegKey, std::uint64_t>> {
    std::map<SegKey, std::uint64_t> discovered;
#if TANGLED_STORE_POSIX
    DIR* d = opendir(config_.dir.c_str());
    if (d == nullptr) return discovered;
    while (const dirent* entry = readdir(d)) {
      const std::string name = entry->d_name;
      if (name.size() < 5 || name.compare(name.size() - 5, 5, ".tseg") != 0) {
        continue;
      }
      std::uint32_t shard = 0;
      std::uint64_t id = 0;
      if (!parse_segment_file_name(name, shard, id)) {
        report_.notes.push_back("ignoring unrecognized segment file " + name);
        continue;
      }
      if (shard >= config_.shards) {
        // A valid segment of a shard this configuration does not have:
        // the store was written with more shards. Opening anyway would
        // silently lose every certificate in the dropped shards, so this
        // is the same typed configuration refusal the snapshot layer
        // gives for shard-count mismatches — not a rebuild.
        closedir(d);
        return state_error(
            "store: segment file " + name + " belongs to shard " +
            std::to_string(shard) + " but this store is configured with " +
            std::to_string(config_.shards) +
            " shard(s); refusing to open under a mismatched shard count");
      }
      auto size = file_size_of(config_.dir + "/" + name);
      if (!size.ok()) continue;
      discovered[{shard, id}] = size.value();
    }
    closedir(d);
#endif
    return discovered;
  };

  auto discovery = discover();
  if (!discovery.ok()) return discovery.error();
  std::map<SegKey, std::uint64_t> discovered = std::move(discovery).value();

  // Try the index file first: a pure accelerator, validated against the
  // discovered segments and abandoned for a full rescan on any mismatch.
  std::map<SegKey, std::uint64_t> listed;
  bool index_ok = false;
  if (util::file_exists(index_path())) {
    auto loaded = recover::read_snapshot_file(index_path());
    if (loaded.ok()) {
      if (const recover::Section* section = loaded.value().find(
              static_cast<recover::SectionId>(kIndexSection));
          section != nullptr) {
        auto loaded_index = load_index(section->payload, listed);
        if (!loaded_index.ok() &&
            loaded_index.error().code == Errc::kInvalidState) {
          // The index decoded far enough to say it was written under a
          // different shard count. Rescanning the surviving shards would
          // quietly produce a store missing the rest, so refuse, exactly
          // like the census/checkpoint layer refuses mismatched configs.
          return loaded_index.error();
        }
        if (loaded_index.ok()) {
          index_ok = true;
          // Validate: every listed segment must still exist, at least as
          // long as the index knew it (logs only append in place).
          for (const auto& [key, size] : listed) {
            auto it = discovered.find(key);
            if (it == discovered.end() || it->second < size) {
              index_ok = false;
              break;
            }
          }
          // An undiscovered→listed mismatch above covers removals; a
          // discovered file the index predates must be newer than every
          // listed segment of its shard, or the directory diverged.
          if (index_ok) {
            std::vector<std::uint64_t> max_listed(config_.shards, 0);
            std::vector<bool> any_listed(config_.shards, false);
            for (const auto& [key, size] : listed) {
              max_listed[key.first] =
                  std::max(max_listed[key.first], key.second);
              any_listed[key.first] = true;
            }
            for (const auto& [key, size] : discovered) {
              if (listed.contains(key)) continue;
              if (any_listed[key.first] &&
                  key.second <= max_listed[key.first]) {
                index_ok = false;
                break;
              }
            }
          }
        }
      }
    } else if (loaded.error().code == Errc::kUnsupported) {
      return loaded.error();
    }
    if (!index_ok) {
      report_.notes.push_back("index file missing, stale, or corrupt; "
                              "rebuilding from segment scan");
      // Drop whatever a half-loaded index left behind.
      entries_.clear();
      seq_ = 0;
      listed.clear();
      for (ShardLog& log : shards_) log = ShardLog{};
    }
  }
  report_.index_loaded = index_ok;
  report_.full_rescan = !index_ok && !discovered.empty();

  // Scan per shard in id order: listed segments from their recorded size
  // (the clean prefix the index already covers), new segments in full.
  // Returns false when any shard hit damage (the scan already repaired
  // the files: damaged suffixes truncated, unusable segments removed).
  const auto scan_pass = [this, &listed,
                          &discovered]() -> Result<bool> {
    bool clean = true;
    for (std::uint32_t shard = 0; shard < config_.shards; ++shard) {
      std::vector<std::uint64_t> ids;
      for (const auto& [key, size] : discovered) {
        if (key.first == shard) ids.push_back(key.second);
      }
      std::sort(ids.begin(), ids.end());
      bool shard_damaged = false;
      for (std::size_t i = 0; i < ids.size(); ++i) {
        const std::uint64_t id = ids[i];
        const bool newest = i + 1 == ids.size();
        if (shard_damaged) {
          // Everything past a damage point in this shard is dropped:
          // records here may depend on lost predecessors, and
          // min_stop_seq_ already tells resume how far the clean prefix
          // reaches.
          std::remove(segment_path(shard, id).c_str());
          shards_[shard].segment_sizes.erase(id);
          report_.notes.push_back("dropped segment " +
                                  segment_file_name(shard, id) +
                                  " past a damaged predecessor");
          continue;
        }
        std::uint64_t from = kSegmentHeaderSize;
        if (auto it = listed.find({shard, id}); it != listed.end()) {
          from = std::max<std::uint64_t>(from, it->second);
        }
        auto scanned = scan_segment(shard, id, from, newest);
        if (!scanned.ok()) {
          if (scanned.error().code == Errc::kUnsupported) {
            return scanned.error();
          }
          // Damage below the clean prefix of this shard. scan_segment
          // already truncated or removed the damaged file.
          clean = false;
          shard_damaged = true;
          min_stop_seq_ =
              std::min(min_stop_seq_, shards_[shard].last_clean_seq);
          report_.notes.push_back(scanned.error().message);
          TANGLED_OBS_INC("store.recover.damaged_shards");
        }
      }
    }
    return clean;
  };

  auto clean = scan_pass();
  if (!clean.ok()) return clean.error();
  if (!clean.value() && index_ok) {
    // Damage while trusting the index: loaded entries may point into
    // segments the repair just truncated or removed, so rebuild from the
    // (now clean) segment files alone. min_stop_seq_ keeps the damage
    // verdict from the first pass.
    report_.notes.push_back(
        "index-accelerated recovery hit damage; rescanning segments");
    report_.index_loaded = false;
    report_.full_rescan = true;
    entries_.clear();
    seq_ = 0;
    listed.clear();
    scan_seq_ranges_.clear();
    for (ShardLog& log : shards_) log = ShardLog{};
    discovery = discover();
    if (!discovery.ok()) return discovery.error();
    discovered = std::move(discovery).value();
    clean = scan_pass();
    if (!clean.ok()) return clean.error();
  }
  // A compaction that published its output segment but crashed before
  // unlinking the inputs leaves both on disk, every input's seq range
  // contained in the output's. Drop the superseded inputs and rescan the
  // survivors from scratch: a fast-forwarded (index-trusted) first pass
  // skips records the duplicates would otherwise have to reconcile
  // against, so only a clean full scan of the deduplicated files is
  // trustworthy.
  if (const std::size_t superseded = reconcile_superseded_segments();
      superseded != 0) {
    report_.superseded_segments = superseded;
    report_.index_loaded = false;
    report_.full_rescan = true;
    report_.notes.push_back(
        "reconciled " + std::to_string(superseded) +
        " segment(s) superseded by a published compaction; rescanning");
    TANGLED_OBS_ADD("store.recover.superseded_segments", superseded);
    entries_.clear();
    scan_members_.clear();
    seq_ = 0;
    listed.clear();
    scan_seq_ranges_.clear();
    for (ShardLog& log : shards_) log = ShardLog{};
    discovery = discover();
    if (!discovery.ok()) return discovery.error();
    discovered = std::move(discovery).value();
    clean = scan_pass();
    if (!clean.ok()) return clean.error();
  }
  scan_seq_ranges_.clear();
  rebuild_derived();

  // Open (or create) each shard's active segment writer.
  for (std::uint32_t shard = 0; shard < config_.shards; ++shard) {
    ShardLog& log = shards_[shard];
    if (log.segment_sizes.empty()) {
      log.next_id = 0;
      if (auto ok = open_writer(shard, /*fresh=*/true); !ok.ok()) {
        return ok;
      }
    } else {
      const auto newest = std::prev(log.segment_sizes.end());
      log.active_id = newest->first;
      log.active_size = newest->second;
      log.next_id = newest->first + 1;
      if (auto ok = open_writer(shard, /*fresh=*/false); !ok.ok()) {
        return ok;
      }
    }
  }
  return {};
}

Result<void> CertStore::scan_segment(std::uint32_t shard, std::uint64_t id,
                                     std::uint64_t from_offset,
                                     bool newest_in_shard) {
  const std::string path = segment_path(shard, id);
  auto size = file_size_of(path);
  if (!size.ok()) return size.error();
  ShardLog& log = shards_[shard];

  if (size.value() < kSegmentHeaderSize) {
    if (newest_in_shard) {
      // A crash during segment creation: nothing in it can predate the
      // last flush. Drop it.
      std::remove(path.c_str());
      report_.truncated_bytes += size.value();
      report_.notes.push_back("dropped torn segment creation " +
                              segment_file_name(shard, id));
      return {};
    }
    std::remove(path.c_str());
    return state_error("segment " + segment_file_name(shard, id) +
                       ": truncated header in sealed position");
  }

  auto map = util::MmapFile::open(path);
  if (!map.ok()) return map.error();
  const ByteView file = map.value().view();

  auto header = parse_segment_header(file);
  if (!header.ok()) {
    if (header.error().code == Errc::kUnsupported) return header.error();
    // Headers are fsynced at creation, so an unreadable one is damage, not
    // a torn append; nothing in the file can be trusted.
    map.value().reset();
    std::remove(path.c_str());
    return state_error("segment " + segment_file_name(shard, id) + ": " +
                       header.error().message);
  }
  if (header.value().shard != shard || header.value().segment_id != id) {
    map.value().reset();
    std::remove(path.c_str());
    return state_error("segment " + segment_file_name(shard, id) +
                       ": header names shard " +
                       std::to_string(header.value().shard) + " segment " +
                       std::to_string(header.value().segment_id));
  }

  SegmentScanner scanner(file);
  // Fast-forward across the prefix the index already covers: records are
  // framed, so re-deriving boundaries requires a walk, and next() checksums
  // each record on the way. The entries are already in the loaded index
  // (skip), but the verification is what last_clean_seq may trust — if
  // damage turns up deeper in this shard, min_stop_seq_ must name the last
  // seq actually proven intact, not the index's global high-water.
  // Track this segment's [min, max] seq range (fast-forwarded records
  // included): the superseded-segment reconcile compares ranges to detect
  // a compaction that published its output but crashed before unlinking
  // the inputs.
  const auto note_seq = [this, shard, id](std::uint64_t seq) {
    auto [it, inserted] = scan_seq_ranges_.try_emplace(
        std::make_pair(shard, id), std::make_pair(seq, seq));
    if (!inserted) {
      it->second.first = std::min(it->second.first, seq);
      it->second.second = std::max(it->second.second, seq);
    }
  };
  while (scanner.stop_offset() < from_offset) {
    const auto record = scanner.next();
    if (!record.has_value()) break;
    log.last_clean_seq = std::max(log.last_clean_seq, record->seq);
    note_seq(record->seq);
  }
  while (true) {
    const auto record = scanner.next();
    if (!record.has_value()) break;
    apply_scanned_record(shard, id, *record);
    note_seq(record->seq);
  }
  log.segment_sizes[id] = scanner.stop_offset();

  switch (scanner.stop()) {
    case ScanStop::kCleanEof:
      return {};
    case ScanStop::kTruncatedTail: {
      if (!newest_in_shard) {
        // A sealed segment ending mid-record is damage, not a torn
        // append; keep the clean prefix on disk but report the loss.
        map.value().reset();
        (void)truncate_file(path, scanner.stop_offset());
        return state_error("segment " + segment_file_name(shard, id) +
                           ": truncated inside sealed position (" +
                           scanner.stop_detail() + ")");
      }
      // Torn tail on the shard's newest segment: the classic crash-mid-
      // append shape. Records here postdate the last flush (and therefore
      // any checkpoint cursor), so truncating them is loss-free.
      const std::uint64_t lost = size.value() - scanner.stop_offset();
      map.value().reset();  // release the mapping before truncating
      if (auto ok = truncate_file(path, scanner.stop_offset()); !ok.ok()) {
        return ok;
      }
      report_.truncated_bytes += lost;
      report_.notes.push_back("truncated torn tail of " +
                              segment_file_name(shard, id) + " (" +
                              std::to_string(lost) + " bytes)");
      TANGLED_OBS_INC("store.recover.torn_tails");
      return {};
    }
    case ScanStop::kDamage:
      // Keep the clean prefix, drop the damaged suffix from disk so the
      // file and the applied records agree from here on.
      map.value().reset();
      (void)truncate_file(path, scanner.stop_offset());
      return state_error("segment " + segment_file_name(shard, id) + ": " +
                         scanner.stop_detail());
  }
  return {};
}

void CertStore::apply_scanned_record(std::uint32_t shard, std::uint64_t id,
                                     const RecordView& record) {
  seq_ = std::max(seq_, record.seq);
  shards_[shard].last_clean_seq =
      std::max(shards_[shard].last_clean_seq, record.seq);
  switch (record.kind_raw == 0 ? RecordKind::kCert
                               : static_cast<RecordKind>(record.kind_raw)) {
    case RecordKind::kCert: {
      if (record.kind_raw != static_cast<std::uint32_t>(RecordKind::kCert)) {
        break;  // unknown kind: framing only
      }
      const std::uint32_t fp_id = fp_ids_.intern(record.fingerprint);
      if (fp_id >= entries_.size()) entries_.resize(fp_id + 1);
      Entry& entry = entries_[fp_id];
      // Newest cert record wins (a revive after a tombstone); compaction
      // can replay duplicates of the same seq — idempotent by comparison.
      // Membership is *assigned*, matching put() on a tombstone→revive:
      // bits merged before a removal die with the record (kMember records
      // that postdate the tombstone are re-applied in rebuild_derived).
      if (record.seq >= entry.seq) {
        entry.identity_id = identity_ids_.intern(record.identity);
        entry.spki_id = spki_ids_.intern(record.spki);
        entry.membership = record.membership;
        entry.not_after_unix = record.not_after_unix;
        entry.seq = record.seq;
        entry.shard = shard;
        entry.segment_id = id;
        entry.offset = record.offset;
        entry.length = record.length;
      }
      break;
    }
    case RecordKind::kTombstone: {
      const std::uint32_t fp_id = fp_ids_.intern(record.fingerprint);
      if (fp_id >= entries_.size()) entries_.resize(fp_id + 1);
      entries_[fp_id].tombstone_seq =
          std::max(entries_[fp_id].tombstone_seq, record.seq);
      break;
    }
    case RecordKind::kMember: {
      const std::uint32_t fp_id = fp_ids_.intern(record.fingerprint);
      scan_members_[fp_id].emplace_back(record.seq, record.membership);
      break;
    }
    case RecordKind::kFlag:
      break;  // census journal: replayed by the census, not the index
  }
}

void CertStore::rebuild_derived() {
  // Liveness and membership resolve only once every record is in: scan
  // order is (shard, id), which is not sequence order across a
  // compaction, so per-record application must stay order-independent.
  identity_live_.clear();
  by_spki_.clear();
  dead_records_ = 0;
  for (std::uint32_t fp_id = 0; fp_id < entries_.size(); ++fp_id) {
    Entry& entry = entries_[fp_id];
    if (entry.seq == 0) continue;  // interned via flags only, no cert
    entry.live = entry.seq > entry.tombstone_seq;
    if (auto it = scan_members_.find(fp_id); it != scan_members_.end()) {
      for (const auto& [seq, bits] : it->second) {
        // A membership merge survives only if it postdates the latest
        // tombstone — bits merged before a removal die with the record.
        if (seq > entry.tombstone_seq) entry.membership |= bits;
      }
    }
    if (!entry.live) {
      ++dead_records_;
      continue;
    }
    if (entry.identity_id >= identity_live_.size()) {
      identity_live_.resize(entry.identity_id + 1, 0);
    }
    ++identity_live_[entry.identity_id];
    if (entry.spki_id >= by_spki_.size()) by_spki_.resize(entry.spki_id + 1);
    by_spki_[entry.spki_id].push_back(fp_id);
  }
  scan_members_.clear();
}

std::size_t CertStore::reconcile_superseded_segments() {
  // In normal operation a shard's segments carry strictly increasing,
  // disjoint seq ranges (appends only ever extend the newest segment, and
  // a compacted segment's id sits below the fresh active that replaced
  // it). The only way an older segment's range can be *contained* in a
  // newer one's is a compaction that published its merged output and
  // crashed before unlinking the inputs — so containment is the
  // detection, and dropping the input loses nothing: every one of its
  // records exists byte-identically in the container.
  std::size_t removed = 0;
  for (std::uint32_t shard = 0; shard < config_.shards; ++shard) {
    std::vector<std::pair<std::uint64_t, std::pair<std::uint64_t,
                                                   std::uint64_t>>>
        ranges;
    for (const auto& [key, range] : scan_seq_ranges_) {
      if (key.first == shard) ranges.emplace_back(key.second, range);
    }
    for (const auto& [id, range] : ranges) {
      bool superseded = false;
      for (const auto& [other_id, other] : ranges) {
        if (other_id > id && other.first <= range.first &&
            range.second <= other.second) {
          superseded = true;
          break;
        }
      }
      if (!superseded) continue;
      std::remove(segment_path(shard, id).c_str());
      shards_[shard].segment_sizes.erase(id);
      report_.notes.push_back("dropped superseded segment " +
                              segment_file_name(shard, id));
      ++removed;
    }
  }
  return removed;
}

// --- Index codec ------------------------------------------------------------

Bytes CertStore::encode_index() const {
  Bytes out;
  util::put_u32(out, kIndexVersion);
  util::put_u32(out, config_.shards);
  util::put_u64(out, seq_);
  std::uint64_t segment_count = 0;
  for (const ShardLog& log : shards_) segment_count += log.segment_sizes.size();
  util::put_u64(out, segment_count);
  for (std::uint32_t shard = 0; shard < config_.shards; ++shard) {
    for (const auto& [id, size] : shards_[shard].segment_sizes) {
      util::put_u32(out, shard);
      util::put_u64(out, id);
      util::put_u64(out,
                    id == shards_[shard].active_id &&
                            shards_[shard].writer != nullptr
                        ? shards_[shard].active_size
                        : size);
    }
  }
  // Entries sorted by fingerprint digest for deterministic bytes.
  std::vector<std::uint32_t> order;
  order.reserve(entries_.size());
  for (std::uint32_t fp_id = 0; fp_id < entries_.size(); ++fp_id) {
    if (entries_[fp_id].seq != 0) order.push_back(fp_id);
  }
  std::sort(order.begin(), order.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return bytes_less(fp_ids_.digest_of(a), fp_ids_.digest_of(b));
            });
  util::put_u64(out, order.size());
  for (const std::uint32_t fp_id : order) {
    const Entry& entry = entries_[fp_id];
    const Bytes fp = fp_ids_.digest_of(fp_id);
    const Bytes identity = identity_ids_.digest_of(entry.identity_id);
    const Bytes spki = spki_ids_.digest_of(entry.spki_id);
    append(out, fp);
    append(out, identity);
    append(out, spki);
    util::put_u64(out, entry.membership);
    util::put_i64(out, entry.not_after_unix);
    util::put_u64(out, entry.seq);
    util::put_u64(out, entry.tombstone_seq);
    util::put_u8(out, entry.live ? 1 : 0);
    util::put_u32(out, entry.shard);
    util::put_u64(out, entry.segment_id);
    util::put_u64(out, entry.offset);
    util::put_u64(out, entry.length);
  }
  return out;
}

Result<void> CertStore::load_index(
    ByteView payload,
    std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t>& listed) {
  util::BinReader in(payload);
  auto version = in.u32();
  if (!version.ok()) return version.error();
  if (version.value() != kIndexVersion) {
    return parse_error("store index: unknown version");
  }
  auto shard_count = in.u32();
  if (!shard_count.ok()) return shard_count.error();
  if (shard_count.value() != config_.shards) {
    return state_error("store index: shard count mismatch");
  }
  auto seq = in.u64();
  if (!seq.ok()) return seq.error();
  auto segments = in.count(/*min_bytes_per_element=*/20);
  if (!segments.ok()) return segments.error();
  for (std::size_t i = 0; i < segments.value(); ++i) {
    auto shard = in.u32();
    auto id = in.u64();
    auto size = in.u64();
    if (!shard.ok() || !id.ok() || !size.ok()) {
      return parse_error("store index: truncated segment table");
    }
    if (shard.value() >= config_.shards) {
      return parse_error("store index: shard out of range");
    }
    listed[{shard.value(), id.value()}] = size.value();
  }
  auto count = in.count(/*min_bytes_per_element=*/3 * kDigestBytes + 50);
  if (!count.ok()) return count.error();
  for (std::size_t i = 0; i < count.value(); ++i) {
    auto fp = in.take(kDigestBytes);
    auto identity = in.take(kDigestBytes);
    auto spki = in.take(kDigestBytes);
    auto membership = in.u64();
    auto not_after = in.i64();
    auto cert_seq = in.u64();
    auto tombstone_seq = in.u64();
    auto live = in.u8();
    auto shard = in.u32();
    auto segment_id = in.u64();
    auto offset = in.u64();
    auto length = in.u64();
    if (!fp.ok() || !identity.ok() || !spki.ok() || !membership.ok() ||
        !not_after.ok() || !cert_seq.ok() || !tombstone_seq.ok() ||
        !live.ok() || !shard.ok() || !segment_id.ok() || !offset.ok() ||
        !length.ok()) {
      return parse_error("store index: truncated entry table");
    }
    if (shard.value() >= config_.shards) {
      return parse_error("store index: entry shard out of range");
    }
    const std::uint32_t fp_id = fp_ids_.intern(fp.value());
    if (fp_id >= entries_.size()) entries_.resize(fp_id + 1);
    Entry& entry = entries_[fp_id];
    entry.identity_id = identity_ids_.intern(identity.value());
    entry.spki_id = spki_ids_.intern(spki.value());
    entry.membership = membership.value();
    entry.not_after_unix = not_after.value();
    entry.seq = cert_seq.value();
    entry.tombstone_seq = tombstone_seq.value();
    entry.live = live.value() != 0;
    entry.shard = shard.value();
    entry.segment_id = segment_id.value();
    entry.offset = offset.value();
    entry.length = length.value();
  }
  if (auto ok = in.expect_end(); !ok.ok()) return ok;
  seq_ = seq.value();
  // last_clean_seq deliberately stays at 0 here: it is a *verification*
  // high-water, advanced only as the scan checksums records, never by the
  // index's claim of how far the log reached.
  for (const auto& [key, size] : listed) {
    shards_[key.first].segment_sizes[key.second] = size;
  }
  return {};
}

Result<void> CertStore::write_index() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<recover::Section> sections;
  sections.push_back({kIndexSection, encode_index()});
  return recover::write_snapshot_file(index_path(), sections);
}

// --- Writes ----------------------------------------------------------------

Result<void> CertStore::open_writer(std::uint32_t shard, bool fresh) {
  ShardLog& log = shards_[shard];
  if (fresh) {
    log.active_id = log.next_id++;
    const std::string path = segment_path(shard, log.active_id);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return state_error(errno_message("open", path));
    const Bytes header = encode_segment_header(shard, log.active_id);
    if (std::fwrite(header.data(), 1, header.size(), f) != header.size()) {
      std::fclose(f);
      return state_error(errno_message("write header", path));
    }
    // Make the header durable immediately: a later torn-tail scan then
    // always finds a parseable header in front of the clean prefix.
    std::fflush(f);
#if TANGLED_STORE_POSIX
    fsync(fileno(f));
#endif
    log.writer = f;
    log.active_size = header.size();
    log.segment_sizes[log.active_id] = header.size();
    return {};
  }
  const std::string path = segment_path(shard, log.active_id);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return state_error(errno_message("open", path));
  log.writer = f;
  return {};
}

Result<void> CertStore::append_to_shard(std::uint32_t shard, ByteView framed) {
  ShardLog& log = shards_[shard];
  if (log.writer == nullptr) {
    if (auto ok = open_writer(shard, /*fresh=*/false); !ok.ok()) return ok;
  }
  if (std::fwrite(framed.data(), 1, framed.size(), log.writer) !=
      framed.size()) {
    // A short write leaves garbage after the clean prefix; roll the file
    // back so the log stays a clean prefix of valid records.
    const std::string path = segment_path(shard, log.active_id);
    std::fclose(log.writer);
    log.writer = nullptr;
    (void)truncate_file(path, log.active_size);
    return state_error(errno_message("append", path));
  }
  log.active_size += framed.size();
  log.segment_sizes[log.active_id] = log.active_size;
  appended_bytes_ += framed.size();
  return {};
}

Result<void> CertStore::maybe_rotate(std::uint32_t shard) {
  ShardLog& log = shards_[shard];
  if (log.active_size < config_.max_segment_bytes) return {};
  if (log.writer != nullptr) {
    std::fflush(log.writer);
#if TANGLED_STORE_POSIX
    fsync(fileno(log.writer));
#endif
    std::fclose(log.writer);
    log.writer = nullptr;
  }
  TANGLED_OBS_INC("store.segment_rotations");
  return open_writer(shard, /*fresh=*/true);
}

Result<bool> CertStore::put(const CertRecord& record) {
  if (record.fingerprint.size() != kDigestBytes ||
      record.identity.size() != kDigestBytes ||
      record.spki.size() != kDigestBytes) {
    return state_error("store: digests must be 32 bytes");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint32_t fp_id = fp_ids_.intern(record.fingerprint);
  if (fp_id < entries_.size() && entries_[fp_id].live) {
    TANGLED_OBS_INC("store.put_dedup_hits");
    return false;
  }
  const std::uint32_t shard = shard_of(record.fingerprint);
  const std::uint64_t seq = seq_ + 1;
  Bytes framed;
  append_record(framed, RecordKind::kCert, encode_cert_payload(seq, record));
  const std::uint64_t offset = shards_[shard].active_size;
  if (auto ok = append_to_shard(shard, framed); !ok.ok()) return ok.error();
  seq_ = seq;

  if (fp_id >= entries_.size()) entries_.resize(fp_id + 1);
  Entry& entry = entries_[fp_id];
  const bool revive = entry.seq != 0;
  entry.identity_id = identity_ids_.intern(record.identity);
  entry.spki_id = spki_ids_.intern(record.spki);
  entry.membership = record.membership;
  entry.not_after_unix = record.not_after_unix;
  entry.seq = seq;
  entry.live = true;
  entry.shard = shard;
  entry.segment_id = shards_[shard].active_id;
  entry.offset = offset;
  entry.length = framed.size();
  if (revive && dead_records_ > 0) --dead_records_;

  if (entry.identity_id >= identity_live_.size()) {
    identity_live_.resize(entry.identity_id + 1, 0);
  }
  ++identity_live_[entry.identity_id];
  if (entry.spki_id >= by_spki_.size()) by_spki_.resize(entry.spki_id + 1);
  auto& spki_list = by_spki_[entry.spki_id];
  if (std::find(spki_list.begin(), spki_list.end(), fp_id) ==
      spki_list.end()) {
    spki_list.push_back(fp_id);
  }
  TANGLED_OBS_INC("store.puts");
  (void)maybe_rotate(shard);  // rotation failure surfaces on the next append
  return true;
}

Result<void> CertStore::journal_flag(ByteView fingerprint,
                                     std::uint8_t census_shard,
                                     std::uint8_t flags) {
  if (fingerprint.size() != kDigestBytes) {
    return state_error("store: fingerprint must be 32 bytes");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint32_t shard = shard_of(fingerprint);
  const std::uint64_t seq = seq_ + 1;
  Bytes framed;
  append_record(framed, RecordKind::kFlag,
                encode_flag_payload(seq, fingerprint, census_shard, flags));
  if (auto ok = append_to_shard(shard, framed); !ok.ok()) return ok;
  seq_ = seq;
  TANGLED_OBS_INC("store.flag_journal_records");
  (void)maybe_rotate(shard);
  return {};
}

Result<void> CertStore::merge_membership(ByteView fingerprint,
                                         std::uint64_t bits) {
  if (fingerprint.size() != kDigestBytes) {
    return state_error("store: fingerprint must be 32 bytes");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto fp_id = fp_ids_.find(fingerprint);
  if (!fp_id.has_value() || *fp_id >= entries_.size() ||
      !entries_[*fp_id].live) {
    return not_found_error("store: no live record for fingerprint");
  }
  const std::uint32_t shard = shard_of(fingerprint);
  const std::uint64_t seq = seq_ + 1;
  Bytes framed;
  append_record(framed, RecordKind::kMember,
                encode_member_payload(seq, fingerprint, bits));
  if (auto ok = append_to_shard(shard, framed); !ok.ok()) return ok;
  seq_ = seq;
  entries_[*fp_id].membership |= bits;
  (void)maybe_rotate(shard);
  return {};
}

Result<bool> CertStore::remove(ByteView fingerprint) {
  if (fingerprint.size() != kDigestBytes) {
    return state_error("store: fingerprint must be 32 bytes");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto fp_id = fp_ids_.find(fingerprint);
  if (!fp_id.has_value() || *fp_id >= entries_.size() ||
      !entries_[*fp_id].live) {
    return false;
  }
  const std::uint32_t shard = shard_of(fingerprint);
  const std::uint64_t seq = seq_ + 1;
  Bytes framed;
  append_record(framed, RecordKind::kTombstone,
                encode_tombstone_payload(seq, fingerprint));
  if (auto ok = append_to_shard(shard, framed); !ok.ok()) return ok.error();
  seq_ = seq;
  Entry& entry = entries_[*fp_id];
  entry.live = false;
  entry.tombstone_seq = seq;
  ++dead_records_;
  if (entry.identity_id < identity_live_.size() &&
      identity_live_[entry.identity_id] > 0) {
    --identity_live_[entry.identity_id];
  }
  (void)maybe_rotate(shard);
  return true;
}

// --- Index queries ----------------------------------------------------------

bool CertStore::contains(ByteView fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto fp_id = fp_ids_.find(fingerprint);
  return fp_id.has_value() && *fp_id < entries_.size() &&
         entries_[*fp_id].live;
}

bool CertStore::contains_identity(ByteView identity) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto id = identity_ids_.find(identity);
  return id.has_value() && *id < identity_live_.size() &&
         identity_live_[*id] > 0;
}

std::uint64_t CertStore::membership_of(ByteView fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto fp_id = fp_ids_.find(fingerprint);
  if (!fp_id.has_value() || *fp_id >= entries_.size() ||
      !entries_[*fp_id].live) {
    return 0;
  }
  return entries_[*fp_id].membership;
}

std::uint64_t CertStore::membership_by_spki(ByteView spki) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto id = spki_ids_.find(spki);
  if (!id.has_value() || *id >= by_spki_.size()) return 0;
  std::uint64_t mask = 0;
  for (const std::uint32_t fp_id : by_spki_[*id]) {
    if (entries_[fp_id].live) mask |= entries_[fp_id].membership;
  }
  return mask;
}

std::vector<Bytes> CertStore::fingerprints_by_spki(ByteView spki) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Bytes> out;
  const auto id = spki_ids_.find(spki);
  if (!id.has_value() || *id >= by_spki_.size()) return out;
  for (const std::uint32_t fp_id : by_spki_[*id]) {
    if (entries_[fp_id].live) out.push_back(fp_ids_.digest_of(fp_id));
  }
  std::sort(out.begin(), out.end(),
            [](const Bytes& a, const Bytes& b) { return bytes_less(a, b); });
  return out;
}

std::size_t CertStore::live_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Entry& entry : entries_) n += entry.live;
  return n;
}

std::size_t CertStore::live_identity_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const std::uint32_t count : identity_live_) n += count > 0;
  return n;
}

std::size_t CertStore::live_unexpired_count(std::int64_t now_unix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Entry& entry : entries_) {
    n += entry.live && now_unix <= entry.not_after_unix;
  }
  return n;
}

std::uint64_t CertStore::last_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

void CertStore::for_each_live(
    const std::function<void(ByteView, ByteView, ByteView, std::uint64_t,
                             std::int64_t)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint32_t> order;
  for (std::uint32_t fp_id = 0; fp_id < entries_.size(); ++fp_id) {
    if (entries_[fp_id].live) order.push_back(fp_id);
  }
  std::sort(order.begin(), order.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return bytes_less(fp_ids_.digest_of(a), fp_ids_.digest_of(b));
            });
  for (const std::uint32_t fp_id : order) {
    const Entry& entry = entries_[fp_id];
    const Bytes fp = fp_ids_.digest_of(fp_id);
    const Bytes identity = identity_ids_.digest_of(entry.identity_id);
    const Bytes spki = spki_ids_.digest_of(entry.spki_id);
    fn(fp, identity, spki, entry.membership, entry.not_after_unix);
  }
}

// --- Pinned reads -----------------------------------------------------------

Result<std::shared_ptr<const Segment>> CertStore::mapped_segment(
    std::uint32_t shard, std::uint64_t id, std::uint64_t min_size) {
  std::lock_guard<std::mutex> lock(map_mu_);
  const auto key = std::make_pair(shard, id);
  auto it = mapped_.find(key);
  if (it != mapped_.end() && it->second->view().size() >= min_size) {
    auto lru_it = std::find(lru_.begin(), lru_.end(), key);
    if (lru_it != lru_.end()) lru_.erase(lru_it);
    lru_.push_back(key);
    return std::shared_ptr<const Segment>(it->second);
  }
  auto map = util::MmapFile::open(segment_path(shard, id));
  if (!map.ok()) return map.error();
  if (map.value().size() < min_size) {
    // kNotFound: the bytes the caller wants are not in this file (any
    // more) — the shape a concurrent compaction swap produces, which
    // get() retries against a re-read entry. Persistent truncation
    // surfaces this same message once the retries give up.
    return not_found_error("store: segment " + segment_file_name(shard, id) +
                           " shorter than the index expects");
  }
  auto segment = std::make_shared<Segment>(segment_path(shard, id), shard, id,
                                           std::move(map).value());
  ++reopens_;
  if (it != mapped_.end()) {
    // Replace the stale (shorter) mapping with the fresh one. Pinned
    // readers of the old object keep it alive; nothing is remapped in
    // place, so their views stay valid.
    it->second = segment;
  } else {
    mapped_[key] = segment;
    lru_.push_back(key);
  }
  evict_cold_locked();
  return std::shared_ptr<const Segment>(segment);
}

void CertStore::evict_cold_locked() {
  while (mapped_.size() > config_.max_mapped_segments) {
    bool evicted = false;
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      auto found = mapped_.find(*it);
      if (found == mapped_.end()) {
        it = lru_.erase(it);
        evicted = true;
        break;
      }
      if (found->second->pins() != 0) continue;  // never evict pinned
      mapped_.erase(found);
      lru_.erase(it);
      ++evictions_;
      TANGLED_OBS_INC("store.segment_evictions");
      evicted = true;
      break;
    }
    if (!evicted) break;  // everything cold is pinned
  }
}

Result<PinnedRecord> CertStore::get(ByteView fingerprint) {
  std::optional<Error> last_miss;
  for (int attempt = 0; attempt < 4; ++attempt) {
    std::uint32_t shard = 0;
    std::uint64_t segment_id = 0, offset = 0, length = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto fp_id = fp_ids_.find(fingerprint);
      if (!fp_id.has_value() || *fp_id >= entries_.size() ||
          !entries_[*fp_id].live) {
        return not_found_error("store: fingerprint not present");
      }
      const Entry& entry = entries_[*fp_id];
      shard = entry.shard;
      segment_id = entry.segment_id;
      offset = entry.offset;
      length = entry.length;
      if (segment_id == shards_[shard].active_id &&
          shards_[shard].writer != nullptr) {
        // The record may still sit in the stdio buffer; push it to the
        // file so a fresh mapping can see it.
        std::fflush(shards_[shard].writer);
      }
    }
    auto segment = mapped_segment(shard, segment_id, offset + length);
    if (!segment.ok()) {
      if (segment.error().code != Errc::kNotFound) {
        // EACCES, mmap failure, ...: persistent real errors, not the
        // compaction race — propagate immediately with their message.
        return segment.error();
      }
      // Compaction may have unlinked or swapped the segment between the
      // two locks (the file is gone or too short); re-read the entry and
      // try again.
      last_miss = segment.error();
      continue;
    }
    const ByteView view = segment.value()->view();
    if (view.size() < offset + length ||
        length < kCertDerOffset + kSegmentDigestSize) {
      last_miss = not_found_error(
          "store: mapped segment " + segment_file_name(shard, segment_id) +
          " does not cover the indexed record");
      continue;
    }
    const std::size_t der_len =
        static_cast<std::size_t>(length) - kCertDerOffset - kSegmentDigestSize;
    TANGLED_OBS_INC("store.gets");
    return PinnedRecord(std::move(segment).value(),
                        view.subspan(offset + kCertDerOffset, der_len));
  }
  // Every attempt came back race-shaped yet the entry kept pointing at the
  // same hole: report the underlying miss, not a guess about compaction.
  if (last_miss.has_value()) {
    return state_error(last_miss->message +
                       " (after retrying the compaction race)");
  }
  return state_error("store: record moved during concurrent compaction");
}

// --- Replay ----------------------------------------------------------------

Result<void> CertStore::replay(
    std::uint64_t max_seq,
    const std::function<void(const RecordView&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const ShardLog& log : shards_) {
    if (log.writer != nullptr) std::fflush(log.writer);
  }
  std::vector<util::MmapFile> maps;
  std::vector<RecordView> records;
  for (std::uint32_t shard = 0; shard < config_.shards; ++shard) {
    for (const auto& [id, size] : shards_[shard].segment_sizes) {
      auto map = util::MmapFile::open(segment_path(shard, id));
      if (!map.ok()) {
        if (map.error().code == Errc::kNotFound) continue;
        return map.error();
      }
      maps.push_back(std::move(map).value());
      SegmentScanner scanner(maps.back().view());
      while (true) {
        const auto record = scanner.next();
        if (!record.has_value()) break;
        if (record->seq <= max_seq) records.push_back(*record);
      }
      // Torn tails past the last flush are expected mid-run; damage in the
      // sealed region was already handled (or refused) at open.
    }
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const RecordView& a, const RecordView& b) {
                     return a.seq < b.seq;
                   });
  // Equal sequence numbers are byte-identical copies of one record — the
  // shape a compaction's publish-before-unlink crash window leaves until
  // open() reconciles it. Deliver each seq once so the census never
  // replays a journal record twice.
  std::uint64_t prev_seq = 0;
  bool first = true;
  for (const RecordView& record : records) {
    if (!first && record.seq == prev_seq) continue;
    first = false;
    prev_seq = record.seq;
    fn(record);
  }
  return {};
}

// --- Maintenance ------------------------------------------------------------

Result<void> CertStore::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::uint32_t shard = 0; shard < config_.shards; ++shard) {
    ShardLog& log = shards_[shard];
    if (log.writer == nullptr) continue;
    if (std::fflush(log.writer) != 0) {
      return state_error(
          errno_message("flush", segment_path(shard, log.active_id)));
    }
#if TANGLED_STORE_POSIX
    if (fsync(fileno(log.writer)) != 0) {
      return state_error(
          errno_message("fsync", segment_path(shard, log.active_id)));
    }
#endif
  }
  TANGLED_OBS_INC("store.flushes");
  return {};
}

bool CertStore::close_writers() {
  bool clean = true;
  for (ShardLog& log : shards_) {
    if (log.writer != nullptr) {
      // fclose() flushes too, but its error conflates flush and close
      // failures; flushing first pins the blame (and errno) on the write
      // path where the bytes were actually lost.
      if (std::fflush(log.writer) != 0) clean = false;
      if (std::fclose(log.writer) != 0) clean = false;
      log.writer = nullptr;
    }
  }
  if (!clean) TANGLED_OBS_INC("store.close_write_failures");
  return clean;
}

Result<void> CertStore::compact(std::uint64_t stable_seq) {
  for (std::uint32_t shard = 0; shard < config_.shards; ++shard) {
    auto pass = compact_shard(shard, stable_seq);
    if (!pass.ok()) return pass.error();
  }
  // Refresh the index so the next open trusts the rewritten layout; a
  // failure here only costs the next open a rescan.
  (void)write_index();
  return {};
}

Result<ShardCompaction> CertStore::compact_shard(std::uint32_t shard,
                                                 std::uint64_t stable_seq) {
  if (shard >= config_.shards) {
    return state_error("store: compact_shard shard out of range");
  }
  // One maintenance operation at a time: two passes racing over the same
  // shard's sealed set would rewrite and unlink each other's inputs.
  // Appends, reads, and backup() do not take this lock.
  std::lock_guard<std::mutex> maintenance(maintenance_mu_);
  ShardCompaction pass;

  // Phase 1 (short critical section): decide, seal, reserve. The sealed
  // snapshot lists immutable files; the compacted segment's id is reserved
  // *before* the fresh active so the active segment keeps the shard's
  // highest id — a reopened store appends to the newest segment, and the
  // superseded-range reconcile relies on compacted segments never growing.
  std::unordered_set<std::string> drop_fps;  // stable-dead fingerprints
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sealed;  // id, size
  std::uint64_t new_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ShardLog& log = shards_[shard];
    for (std::uint32_t fp_id = 0; fp_id < entries_.size(); ++fp_id) {
      const Entry& entry = entries_[fp_id];
      if (entry.seq != 0 && !entry.live && entry.tombstone_seq != 0 &&
          entry.tombstone_seq <= stable_seq && entry.shard == shard) {
        const Bytes fp = fp_ids_.digest_of(fp_id);
        drop_fps.emplace(reinterpret_cast<const char*>(fp.data()), fp.size());
      }
    }
    std::size_t sealed_count = 0;
    for (const auto& [id, size] : log.segment_sizes) {
      sealed_count += id != log.active_id || log.writer == nullptr;
    }
    if (drop_fps.empty() && sealed_count <= 1) {
      // Nothing to reclaim and at most one sealed file to merge: a rewrite
      // here would churn bytes forever without converging.
      pass.skipped = true;
      return pass;
    }
    new_id = log.next_id++;
    if (log.writer != nullptr) {
      // Seal the active segment so the rewrite input is immutable. Flush
      // errors mean the file may be short of active_size — surface them;
      // the maintenance scheduler counts the failure and backs off while
      // appends keep going through a reopened writer.
      const std::uint64_t prev_active = log.active_id;
      bool seal_clean = std::fflush(log.writer) == 0;
#if TANGLED_STORE_POSIX
      seal_clean = seal_clean && fsync(fileno(log.writer)) == 0;
#endif
      seal_clean = std::fclose(log.writer) == 0 && seal_clean;
      log.writer = nullptr;
      if (!seal_clean) {
        (void)open_writer(shard, /*fresh=*/false);
        return state_error(errno_message("seal for compaction",
                                         segment_path(shard, prev_active)));
      }
      const std::uint64_t prev_size = log.active_size;
      if (auto fresh = open_writer(shard, /*fresh=*/true); !fresh.ok()) {
        // Could not rotate to a fresh active segment. Fall back to
        // appending into the one just sealed — open_writer(fresh) bumped
        // active_id to a file that was never created, and leaving it there
        // would make the next append fabricate a headerless segment.
        TANGLED_OBS_INC("store.maintenance.writer_reopen_failures");
        log.active_id = prev_active;
        log.active_size = prev_size;
        (void)open_writer(shard, /*fresh=*/false);
        return fresh.error();
      }
      for (const auto& [id, size] : log.segment_sizes) {
        if (id != log.active_id && id != new_id) sealed.emplace_back(id, size);
      }
    } else {
      for (const auto& [id, size] : log.segment_sizes) {
        if (id != new_id) sealed.emplace_back(id, size);
      }
    }
  }
  if (sealed.empty()) {
    pass.skipped = true;
    return pass;
  }

  // Phase 2 (no locks held): rewrite the sealed segments. They are
  // immutable, so this can overlap freely with appends to the fresh active
  // segment; the only shared state touched is the drop set captured above,
  // by digest — never the interner or the entry table.
  Bytes out = encode_segment_header(shard, new_id);
  struct Reloc {
    Bytes fingerprint;
    std::uint64_t seq = 0;
    std::uint64_t new_offset = 0;
  };
  std::vector<Reloc> relocated;
  for (const auto& [id, size] : sealed) {
    pass.bytes_before += size;
    auto map = util::MmapFile::open(segment_path(shard, id));
    if (!map.ok()) return map.error();
    SegmentScanner scanner(map.value().view());
    while (true) {
      const auto record = scanner.next();
      if (!record.has_value()) break;
      if (record->fingerprint.size() == kDigestBytes &&
          drop_fps.contains(std::string(
              reinterpret_cast<const char*>(record->fingerprint.data()),
              record->fingerprint.size()))) {
        ++pass.records_dropped;
        continue;
      }
      const std::uint64_t new_offset = out.size();
      append(out, map.value().view().subspan(
                      static_cast<std::size_t>(record->offset),
                      static_cast<std::size_t>(record->length)));
      if (record->kind_raw == static_cast<std::uint32_t>(RecordKind::kCert)) {
        relocated.push_back({Bytes(record->fingerprint.begin(),
                                   record->fingerprint.end()),
                             record->seq, new_offset});
      }
    }
    if (scanner.stop() == ScanStop::kDamage) {
      return state_error("store: damage found while compacting " +
                         segment_file_name(shard, id) + ": " +
                         scanner.stop_detail());
    }
    ++pass.segments_rewritten;
  }
  pass.bytes_after = out.size();

  // Phase 3: publish the compacted segment durably. A crash after this
  // rename but before the unlinks below leaves duplicate seq ranges on
  // disk — the reconcile at open() detects exactly that containment shape
  // and drops the superseded originals.
  if (auto written = util::write_file_atomic(segment_path(shard, new_id), out);
      !written.ok()) {
    // The sealed originals are untouched and the active writer was never
    // disturbed; the half-written temp was cleaned by write_file_atomic.
    return written.error();
  }

  // Phase 4 (short critical section): swap the bookkeeping. Every
  // relocation and drop is re-validated against the current entry — a
  // record revived or re-tombstoned while the rewrite ran keeps its
  // newer state; only entries still pointing into the rewritten set move.
  {
    std::scoped_lock lock(mu_, map_mu_);
    ShardLog& log = shards_[shard];
    std::unordered_set<std::uint64_t> rewritten_ids;
    for (const auto& [id, size] : sealed) rewritten_ids.insert(id);
    for (const Reloc& reloc : relocated) {
      const auto fp_id = fp_ids_.find(reloc.fingerprint);
      if (!fp_id.has_value() || *fp_id >= entries_.size()) continue;
      Entry& entry = entries_[*fp_id];
      if (entry.seq == reloc.seq && entry.shard == shard &&
          rewritten_ids.contains(entry.segment_id)) {
        entry.segment_id = new_id;
        entry.offset = reloc.new_offset;
      }
    }
    for (const std::string& fp : drop_fps) {
      const auto fp_id = fp_ids_.find(ByteView(
          reinterpret_cast<const std::uint8_t*>(fp.data()), fp.size()));
      if (!fp_id.has_value() || *fp_id >= entries_.size()) continue;
      Entry& entry = entries_[*fp_id];
      if (entry.seq != 0 && !entry.live && entry.tombstone_seq != 0 &&
          entry.tombstone_seq <= stable_seq) {
        entry = Entry{};
        if (dead_records_ > 0) --dead_records_;
      }
    }
    for (const auto& [id, size] : sealed) {
      log.segment_sizes.erase(id);
      std::remove(segment_path(shard, id).c_str());
      const auto key = std::make_pair(shard, id);
      mapped_.erase(key);  // pinned readers keep their shared_ptr alive
      auto lru_it = std::find(lru_.begin(), lru_.end(), key);
      if (lru_it != lru_.end()) lru_.erase(lru_it);
    }
    log.segment_sizes[new_id] = out.size();
    if (log.writer == nullptr && rewritten_ids.contains(log.active_id)) {
      // The shard had no open writer (an earlier append failure), so the
      // nominal active segment was rewritten too. Point the active cursor
      // at the compacted segment — it is now the shard's only (and
      // highest-id) segment — so a recovering append reopens a real file
      // instead of fabricating a headerless one.
      log.active_id = new_id;
      log.active_size = out.size();
    }
    ++compactions_;
  }
  TANGLED_OBS_INC("store.compactions");
  return pass;
}

// --- Backup / restore -------------------------------------------------------

namespace {

constexpr std::uint32_t kBackupSection = 101;
constexpr std::uint32_t kBackupVersion = 1;
constexpr const char* kBackupManifestName = "backup.tnglbak";
constexpr const char* kRestoreStagingSuffix = ".restoretmp";

struct BackupEntry {
  std::uint32_t shard = 0;
  std::uint64_t id = 0;
  std::uint64_t size = 0;
  Bytes sha256;
};

Bytes encode_backup_manifest(std::uint32_t shards, std::uint64_t seq,
                             const std::vector<BackupEntry>& files) {
  Bytes out;
  util::put_u32(out, kBackupVersion);
  util::put_u32(out, shards);
  util::put_u64(out, seq);
  util::put_u64(out, files.size());
  for (const BackupEntry& file : files) {
    util::put_u32(out, file.shard);
    util::put_u64(out, file.id);
    util::put_u64(out, file.size);
    append(out, file.sha256);
  }
  return out;
}

Result<std::pair<std::uint32_t, std::vector<BackupEntry>>>
decode_backup_manifest(ByteView payload) {
  util::BinReader in(payload);
  auto version = in.u32();
  if (!version.ok()) return version.error();
  if (version.value() != kBackupVersion) {
    return unsupported_error("store backup: unknown manifest version " +
                             std::to_string(version.value()));
  }
  auto shards = in.u32();
  auto seq = in.u64();
  if (!shards.ok() || !seq.ok()) {
    return parse_error("store backup: truncated manifest header");
  }
  auto count = in.count(/*min_bytes_per_element=*/20 + kDigestBytes);
  if (!count.ok()) return count.error();
  std::vector<BackupEntry> files;
  files.reserve(count.value());
  for (std::size_t i = 0; i < count.value(); ++i) {
    auto shard = in.u32();
    auto id = in.u64();
    auto size = in.u64();
    auto digest = in.take(kDigestBytes);
    if (!shard.ok() || !id.ok() || !size.ok() || !digest.ok()) {
      return parse_error("store backup: truncated manifest file table");
    }
    files.push_back({shard.value(), id.value(), size.value(),
                     Bytes(digest.value().begin(), digest.value().end())});
  }
  if (auto ok = in.expect_end(); !ok.ok()) return ok.error();
  return std::make_pair(shards.value(), std::move(files));
}

Result<void> make_dir(const std::string& dir) {
#if TANGLED_STORE_POSIX
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return state_error(errno_message("mkdir", dir));
  }
#endif
  return {};
}

void remove_dir_recursive(const std::string& dir) {
#if TANGLED_STORE_POSIX
  DIR* d = opendir(dir.c_str());
  if (d != nullptr) {
    while (const dirent* entry = readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      std::remove((dir + "/" + name).c_str());
    }
    closedir(d);
  }
  rmdir(dir.c_str());
#endif
}

bool dir_holds_store(const std::string& dir) {
#if TANGLED_STORE_POSIX
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return false;
  bool found = false;
  while (const dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() >= 5 && name.compare(name.size() - 5, 5, ".tseg") == 0) {
      found = true;
      break;
    }
    if (name == "index.tnglidx") {
      found = true;
      break;
    }
  }
  closedir(d);
  return found;
#else
  return false;
#endif
}

}  // namespace

Result<BackupReport> CertStore::backup(const std::string& dir) {
  if (dir.empty()) return state_error("store backup: empty directory");
  if (auto made = make_dir(dir); !made.ok()) return made.error();
  if (util::file_exists(dir + "/" + kBackupManifestName)) {
    return state_error("store backup: " + dir +
                       " already holds a backup manifest");
  }
  // A crashed earlier backup may have left atomic-write temps behind;
  // they are never part of a manifest, so sweeping them is always safe.
  util::sweep_stale_temps_in_dir(dir);

  // Snapshot phase (short critical section): flush every writer so the
  // covered prefix is readable from the files, fix the covered sequence
  // number, and pin a mapping of every segment. The pins make the backup
  // immune to concurrent compaction: even if a sealed segment is unlinked
  // before it is copied, its bytes stay reachable through the mapping.
  struct Item {
    std::uint32_t shard = 0;
    std::uint64_t id = 0;
    std::uint64_t size = 0;
    bool active = false;
    std::shared_ptr<const Segment> segment;
  };
  std::vector<Item> items;
  BackupReport report;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::uint32_t shard = 0; shard < config_.shards; ++shard) {
      ShardLog& log = shards_[shard];
      if (log.writer != nullptr) {
        if (std::fflush(log.writer) != 0) {
          return state_error(errno_message(
              "backup flush", segment_path(shard, log.active_id)));
        }
#if TANGLED_STORE_POSIX
        if (fsync(fileno(log.writer)) != 0) {
          return state_error(errno_message(
              "backup fsync", segment_path(shard, log.active_id)));
        }
#endif
      }
      for (const auto& [id, size] : log.segment_sizes) {
        Item item;
        item.shard = shard;
        item.id = id;
        item.active = id == log.active_id && log.writer != nullptr;
        item.size = item.active ? log.active_size : size;
        auto segment = mapped_segment(shard, id, item.size);
        if (!segment.ok()) return segment.error();
        item.segment = std::move(segment).value();
        items.push_back(std::move(item));
      }
    }
    report.seq = seq_;
  }

  // Copy phase (no locks): sealed segments hardlink when the filesystem
  // allows — the source is immutable, so sharing the inode is exact and
  // free. Active segments are copied by prefix instead: a hardlink would
  // keep growing with the live writer. Any link failure (cross-device,
  // already unlinked by a concurrent compaction) falls back to writing the
  // pinned mapped bytes.
  std::vector<BackupEntry> manifest;
  for (const Item& item : items) {
    const ByteView covered = item.segment->view().subspan(
        0, static_cast<std::size_t>(item.size));
    const std::string dest =
        dir + "/" + segment_file_name(item.shard, item.id);
    bool linked = false;
#if TANGLED_STORE_POSIX
    if (!item.active) {
      linked = link(item.segment->path().c_str(), dest.c_str()) == 0;
    }
#endif
    if (!linked) {
      if (auto written = util::write_file_atomic(dest, covered);
          !written.ok()) {
        return written.error();
      }
      ++report.copied;
    } else {
      ++report.hardlinked;
    }
    manifest.push_back({item.shard, item.id, item.size,
                        crypto::Sha256::hash(covered)});
    ++report.files;
    report.bytes += item.size;
  }

  // Manifest last: a backup directory without one is, by construction, an
  // incomplete backup — restore_backup refuses it rather than guessing.
  std::vector<recover::Section> sections;
  sections.push_back({kBackupSection, encode_backup_manifest(
                                          config_.shards, report.seq,
                                          manifest)});
  if (auto written = recover::write_snapshot_file(
          dir + "/" + kBackupManifestName, sections);
      !written.ok()) {
    return written.error();
  }
  TANGLED_OBS_INC("store.backups");
  return report;
}

Result<RestoreReport> CertStore::restore_backup(const std::string& backup_dir,
                                                const std::string& dest_dir) {
  if (backup_dir.empty() || dest_dir.empty()) {
    return state_error("store restore: empty directory");
  }
  const std::string manifest_path = backup_dir + "/" + kBackupManifestName;
  if (!util::file_exists(manifest_path)) {
    return state_error("store restore: " + backup_dir +
                       " has no backup manifest (incomplete backup?)");
  }
  auto loaded = recover::read_snapshot_file(manifest_path);
  if (!loaded.ok()) return loaded.error();
  const recover::Section* section =
      loaded.value().find(static_cast<recover::SectionId>(kBackupSection));
  if (section == nullptr) {
    return parse_error("store restore: manifest carries no backup section");
  }
  auto decoded = decode_backup_manifest(section->payload);
  if (!decoded.ok()) return decoded.error();
  const std::vector<BackupEntry>& files = decoded.value().second;

  if (dir_holds_store(dest_dir)) {
    return state_error("store restore: " + dest_dir +
                       " already holds a store; refusing to overwrite");
  }

  // Stage into a sibling directory and rename it into place at the end:
  // a crash mid-restore leaves only the staging directory (swept on the
  // next attempt), never a partial store that open() would mistake for a
  // damaged-but-real one.
  const std::string staging = dest_dir + kRestoreStagingSuffix;
  remove_dir_recursive(staging);
  if (auto made = make_dir(staging); !made.ok()) return made.error();

  RestoreReport report;
  for (const BackupEntry& file : files) {
    const std::string name = segment_file_name(file.shard, file.id);
    auto map = util::MmapFile::open(backup_dir + "/" + name);
    if (!map.ok()) {
      return state_error("store restore: backup file " + name +
                         " missing or unreadable: " + map.error().message);
    }
    if (map.value().size() < file.size) {
      return state_error("store restore: backup file " + name +
                         " shorter than the manifest covers");
    }
    const ByteView covered =
        map.value().view().subspan(0, static_cast<std::size_t>(file.size));
    const Bytes digest = crypto::Sha256::hash(covered);
    if (!bytes_equal(digest, file.sha256)) {
      return state_error("store restore: backup file " + name +
                         " does not match its manifest SHA-256");
    }
    if (auto written =
            util::write_file_atomic(staging + "/" + name, covered);
        !written.ok()) {
      return written.error();
    }
    ++report.files;
    report.bytes += file.size;
  }

#if TANGLED_STORE_POSIX
  rmdir(dest_dir.c_str());  // an existing *empty* target is replaceable
  if (rename(staging.c_str(), dest_dir.c_str()) != 0) {
    return state_error(errno_message("restore rename", dest_dir));
  }
#endif
  TANGLED_OBS_INC("store.restores");
  return report;
}

Result<void> CertStore::reset() {
  // Maintenance lock first: a compaction pass caught mid-rewrite must not
  // publish a zombie segment into the emptied directory.
  std::lock_guard<std::mutex> maintenance(maintenance_mu_);
  std::scoped_lock lock(mu_, map_mu_);
  (void)close_writers();  // the files are about to be deleted anyway
  for (std::uint32_t shard = 0; shard < config_.shards; ++shard) {
    for (const auto& [id, size] : shards_[shard].segment_sizes) {
      std::remove(segment_path(shard, id).c_str());
    }
    shards_[shard] = ShardLog{};
  }
  std::remove(index_path().c_str());
  entries_.clear();
  identity_live_.clear();
  by_spki_.clear();
  scan_members_.clear();
  mapped_.clear();
  lru_.clear();
  seq_ = 0;
  min_stop_seq_ = ~std::uint64_t{0};
  dead_records_ = 0;
  report_ = StoreReport{};
  for (std::uint32_t shard = 0; shard < config_.shards; ++shard) {
    if (auto ok = open_writer(shard, /*fresh=*/true); !ok.ok()) return ok;
  }
  TANGLED_OBS_INC("store.resets");
  return {};
}

StoreStats CertStore::stats() const {
  std::scoped_lock lock(mu_, map_mu_);
  StoreStats stats;
  for (const Entry& entry : entries_) {
    stats.live_records += entry.live;
    if (entry.live) stats.live_bytes += entry.length;
  }
  stats.dead_records = dead_records_;
  for (const ShardLog& log : shards_) {
    stats.segments += log.segment_sizes.size();
    for (const auto& [id, size] : log.segment_sizes) {
      stats.disk_bytes +=
          id == log.active_id && log.writer != nullptr ? log.active_size
                                                       : size;
    }
  }
  stats.mapped_segments = mapped_.size();
  stats.appended_bytes = appended_bytes_;
  stats.evictions = evictions_;
  stats.reopens = reopens_;
  stats.compactions = compactions_;
  stats.last_seq = seq_;
  return stats;
}

}  // namespace tangled::store
