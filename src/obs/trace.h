// Hierarchical trace spans and RAII latency timers.
//
// A Tracer collects SpanRecords; Span is the RAII handle that opens a span
// on construction and records it (with steady-clock duration and nesting
// depth) on destruction, so a bench binary reads as
//
//   obs::Span all(obs::tracer(), "table3");
//   { obs::Span s(obs::tracer(), "build_corpus"); ... }
//   { obs::Span s(obs::tracer(), "census"); ... }
//
// and the exporters render the tree. ScopedTimer is the histogram-feeding
// sibling for per-operation latencies on hot paths.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace tangled::obs {

/// One finished span. `depth` reconstructs the hierarchy: a span is the
/// child of the nearest earlier-starting span with depth-1.
struct SpanRecord {
  std::string name;
  std::uint32_t depth = 0;
  std::uint64_t start_ns = 0;     // since the tracer's epoch
  std::uint64_t duration_ns = 0;
};

class Tracer {
 public:
  explicit Tracer(bool enabled = true) : enabled_(enabled) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Finished spans sorted by start time (parents before children).
  std::vector<SpanRecord> spans() const;
  void clear();

  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

 private:
  friend class Span;
  std::uint32_t open_span() { return depth_++; }
  void close_span(SpanRecord record);

  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  bool enabled_;
  std::uint32_t depth_ = 0;  // current nesting depth (spans nest lexically)
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

/// RAII span handle. Not thread-hopping: open and close on one thread.
class Span {
 public:
  Span(Tracer& tracer, std::string name);
  ~Span() { end(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Close early (idempotent); the destructor becomes a no-op.
  void end();

 private:
  Tracer* tracer_;
  std::string name_;
  std::uint32_t depth_ = 0;
  std::uint64_t start_ns_ = 0;
  bool open_ = false;
};

/// Feeds the elapsed time (microseconds) into a latency histogram when the
/// scope exits.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(&histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->observe(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// The process-wide tracer the bench harness records stages into.
Tracer& tracer();

}  // namespace tangled::obs
