// tangled::obs — lock-light metrics for the measurement pipeline.
//
// A MetricsRegistry hands out stable references to named Counters, Gauges,
// and fixed-bucket Histograms. Registration takes a mutex once; every
// subsequent operation is a relaxed atomic, so instrumentation can sit on
// the census/verifier hot paths without perturbing what it measures.
//
// Two off-switches keep the instrumentation honest for ablations:
//  * compile time — build with -DTANGLED_OBS=OFF (CMake) and the
//    TANGLED_OBS_* macros in obs.h expand to nothing;
//  * runtime — MetricsRegistry::set_enabled(false) turns every update into
//    a single relaxed load-and-branch (the "no-op registry").
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tangled::obs {

class MetricsRegistry;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, const std::atomic<bool>* enabled)
      : name_(std::move(name)), enabled_(enabled) {}
  void reset() { value_.store(0, std::memory_order_relaxed); }

  std::string name_;
  const std::atomic<bool>* enabled_;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written signed value (queue depths, corpus scale, config knobs).
class Gauge {
 public:
  void set(std::int64_t v) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  void add(std::int64_t delta) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Gauge(std::string name, const std::atomic<bool>* enabled)
      : name_(std::move(name)), enabled_(enabled) {}
  void reset() { value_.store(0, std::memory_order_relaxed); }

  std::string name_;
  const std::atomic<bool>* enabled_;
  std::atomic<std::int64_t> value_{0};
};

/// Fixed upper-bound buckets suited to microsecond latencies (1us..1s).
const std::vector<double>& default_latency_buckets_us();
/// Fixed buckets for small counts per operation (0..1000): chain depths,
/// anchors tried per leaf, candidates per lookup.
const std::vector<double>& default_count_buckets();

/// Fixed-bucket histogram: cumulative-style export, relaxed-atomic updates.
/// Bucket i counts observations <= bounds[i]; one overflow bucket catches
/// the rest (+Inf).
class Histogram {
 public:
  void observe(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double mean() const {
    const auto n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  /// Quantile estimate by linear interpolation inside the hit bucket. An
  /// estimate landing in the +Inf overflow bucket — or in a caller-supplied
  /// non-finite bound — clamps to the largest finite bound instead of
  /// interpolating into infinity, so quantiles are always finite and JSON-
  /// representable.
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) count; index bounds().size() is +Inf.
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds,
            const std::atomic<bool>* enabled);
  void reset();

  std::string name_;
  std::vector<double> bounds_;  // sorted ascending upper bounds
  const std::atomic<bool>* enabled_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Owns metrics; name -> instance, stable addresses for the program's life.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` applies only on first registration of `name`. A later call
  /// with *different* bounds still returns the existing histogram, but the
  /// conflict is surfaced instead of silently ignored: the name lands in
  /// histogram_bounds_mismatches() and the
  /// "obs.registry.histogram_bounds_mismatch" counter is bumped — two call
  /// sites disagreeing about a histogram's buckets is an instrumentation
  /// bug, and one of them is recording into buckets it did not ask for.
  Histogram& histogram(std::string_view name,
                       const std::vector<double>& bounds =
                           default_latency_buckets_us());

  /// Names whose re-registration requested different bounds (deduplicated,
  /// registration order).
  std::vector<std::string> histogram_bounds_mismatches() const;

  /// The runtime kill switch: metrics keep their identity but every update
  /// becomes a no-op.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Zeroes every value (benches reset between stages); names survive.
  void reset();

  /// Name-sorted snapshots for the exporters.
  std::vector<const Counter*> counters() const;
  std::vector<const Gauge*> gauges() const;
  std::vector<const Histogram*> histograms() const;

 private:
  template <typename T>
  T& find_or_create(std::string_view name,
                    std::unordered_map<std::string, std::unique_ptr<T>>& map,
                    auto&& make);

  std::atomic<bool> enabled_;
  mutable std::mutex mu_;  // guards the maps, never the values
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<std::string> bounds_mismatches_;  // guarded by mu_
};

/// The process-wide registry the TANGLED_OBS_* macros write to. Starts
/// disabled when the environment sets TANGLED_OBS_DISABLE=1.
MetricsRegistry& metrics();

}  // namespace tangled::obs
