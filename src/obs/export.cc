#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tangled::obs {

namespace {

void appendf(std::string& out, const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out += buf;
}

double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          appendf(out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no Inf/NaN
  std::string out;
  if (value == std::floor(value) && std::fabs(value) < 9e15) {
    appendf(out, "%lld", static_cast<long long>(value));
  } else {
    appendf(out, "%.9g", value);
  }
  return out;
}

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

namespace {

bool valid_prometheus_name(std::string_view name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

/// The metric name of a sample line ("name{labels} value" or "name value").
std::string_view sample_name(std::string_view line) {
  const std::size_t cut = line.find_first_of("{ ");
  return cut == std::string_view::npos ? line : line.substr(0, cut);
}

}  // namespace

std::vector<std::string> prometheus_conformance_errors(std::string_view text) {
  std::vector<std::string> errors;
  std::unordered_map<std::string, std::string> types;  // name -> TYPE
  std::unordered_map<std::string, double> last_bucket;  // cumulative check
  std::unordered_map<std::string, bool> saw_inf_bucket;
  std::size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const std::size_t eol = text.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? text : text.substr(0, eol);
    text = eol == std::string_view::npos ? std::string_view{}
                                         : text.substr(eol + 1);
    if (line.empty()) continue;
    auto complain = [&errors, line_no, line](const std::string& what) {
      errors.push_back("line " + std::to_string(line_no) + ": " + what +
                       " [" + std::string(line.substr(0, 80)) + "]");
    };
    if (line[0] == '#') {
      // Only "# TYPE <name> <type>" comments are checked; others pass.
      if (line.substr(0, 7) != "# TYPE ") continue;
      const std::string_view rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      if (sp == std::string_view::npos) {
        complain("TYPE line without a type");
        continue;
      }
      const std::string name(rest.substr(0, sp));
      const std::string type(rest.substr(sp + 1));
      if (!valid_prometheus_name(name)) {
        complain("invalid metric name in TYPE");
      }
      if (type != "counter" && type != "gauge" && type != "histogram" &&
          type != "summary" && type != "untyped") {
        complain("unknown TYPE \"" + type + "\"");
      }
      if (const auto [it, inserted] = types.emplace(name, type); !inserted) {
        complain("duplicate TYPE for metric \"" + name + "\"");
      }
      continue;
    }
    // Sample line: name[{labels}] value
    const std::string name(sample_name(line));
    if (!valid_prometheus_name(name)) {
      complain("invalid metric name");
      continue;
    }
    const std::size_t value_at = line.rfind(' ');
    if (value_at == std::string_view::npos) {
      complain("sample without a value");
      continue;
    }
    const std::string value_str(line.substr(value_at + 1));
    char* end = nullptr;
    const double value = std::strtod(value_str.c_str(), &end);
    const bool inf_ok = value_str == "+Inf" || value_str == "-Inf" ||
                        value_str == "NaN";
    if (!inf_ok && (end == value_str.c_str() || *end != '\0')) {
      complain("unparseable sample value \"" + value_str + "\"");
      continue;
    }
    // Cumulative-bucket monotonicity and +Inf presence per histogram.
    if (name.size() > 7 && name.substr(name.size() - 7) == "_bucket") {
      const std::string base = name.substr(0, name.size() - 7);
      const auto le_at = line.find("le=\"");
      if (le_at == std::string_view::npos) {
        complain("bucket sample without an le label");
        continue;
      }
      if (const auto it = last_bucket.find(base);
          it != last_bucket.end() && value < it->second) {
        complain("histogram \"" + base + "\" buckets are not cumulative");
      }
      last_bucket[base] = value;
      if (line.substr(le_at + 4, 4) == "+Inf") saw_inf_bucket[base] = true;
    }
  }
  for (const auto& [base, ignored] : last_bucket) {
    if (!saw_inf_bucket.contains(base)) {
      errors.push_back("histogram \"" + base + "\" missing its +Inf bucket");
    }
  }
  return errors;
}

std::unordered_map<std::string, double> parse_prometheus_samples(
    std::string_view text) {
  std::unordered_map<std::string, double> out;
  while (!text.empty()) {
    const std::size_t eol = text.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? text : text.substr(0, eol);
    text = eol == std::string_view::npos ? std::string_view{}
                                         : text.substr(eol + 1);
    if (line.empty() || line[0] == '#') continue;
    if (line.find('{') != std::string_view::npos) continue;  // labeled
    const std::size_t sp = line.find(' ');
    if (sp == std::string_view::npos) continue;
    const std::string value_str(line.substr(sp + 1));
    char* end = nullptr;
    const double value = std::strtod(value_str.c_str(), &end);
    if (end == value_str.c_str()) continue;
    out.emplace(std::string(line.substr(0, sp)), value);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Registry exporters
// ---------------------------------------------------------------------------

std::string to_text(const MetricsRegistry& registry) {
  std::string out;
  for (const Counter* c : registry.counters()) {
    appendf(out, "counter  %-44s %llu\n", c->name().c_str(),
            static_cast<unsigned long long>(c->value()));
  }
  for (const Gauge* g : registry.gauges()) {
    appendf(out, "gauge    %-44s %lld\n", g->name().c_str(),
            static_cast<long long>(g->value()));
  }
  for (const Histogram* h : registry.histograms()) {
    appendf(out, "hist     %-44s count=%llu mean=%s p50=%s p99=%s\n",
            h->name().c_str(), static_cast<unsigned long long>(h->count()),
            json_number(h->mean()).c_str(), json_number(h->quantile(0.5)).c_str(),
            json_number(h->quantile(0.99)).c_str());
  }
  return out;
}

std::string to_prometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const Counter* c : registry.counters()) {
    const std::string name = prometheus_name(c->name());
    appendf(out, "# TYPE %s counter\n%s %llu\n", name.c_str(), name.c_str(),
            static_cast<unsigned long long>(c->value()));
  }
  for (const Gauge* g : registry.gauges()) {
    const std::string name = prometheus_name(g->name());
    appendf(out, "# TYPE %s gauge\n%s %lld\n", name.c_str(), name.c_str(),
            static_cast<long long>(g->value()));
  }
  for (const Histogram* h : registry.histograms()) {
    const std::string name = prometheus_name(h->name());
    appendf(out, "# TYPE %s histogram\n", name.c_str());
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      cumulative += h->bucket_count(i);
      appendf(out, "%s_bucket{le=\"%s\"} %llu\n", name.c_str(),
              json_number(h->bounds()[i]).c_str(),
              static_cast<unsigned long long>(cumulative));
    }
    cumulative += h->bucket_count(h->bounds().size());
    appendf(out, "%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
            static_cast<unsigned long long>(cumulative));
    appendf(out, "%s_sum %s\n", name.c_str(), json_number(h->sum()).c_str());
    appendf(out, "%s_count %llu\n", name.c_str(),
            static_cast<unsigned long long>(h->count()));
  }
  return out;
}

std::string to_json(const MetricsRegistry& registry) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const Counter* c : registry.counters()) {
    appendf(out, "%s\"%s\":%llu", first ? "" : ",",
            json_escape(c->name()).c_str(),
            static_cast<unsigned long long>(c->value()));
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const Gauge* g : registry.gauges()) {
    appendf(out, "%s\"%s\":%lld", first ? "" : ",",
            json_escape(g->name()).c_str(), static_cast<long long>(g->value()));
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const Histogram* h : registry.histograms()) {
    appendf(out, "%s\"%s\":{\"count\":%llu,\"sum\":%s,\"mean\":%s,"
                 "\"p50\":%s,\"p90\":%s,\"p99\":%s,\"buckets\":[",
            first ? "" : ",", json_escape(h->name()).c_str(),
            static_cast<unsigned long long>(h->count()),
            json_number(h->sum()).c_str(), json_number(h->mean()).c_str(),
            json_number(h->quantile(0.5)).c_str(),
            json_number(h->quantile(0.9)).c_str(),
            json_number(h->quantile(0.99)).c_str());
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      const std::string le = i < h->bounds().size()
                                 ? json_number(h->bounds()[i])
                                 : std::string("\"+Inf\"");
      appendf(out, "%s{\"le\":%s,\"count\":%llu}", i == 0 ? "" : ",",
              le.c_str(), static_cast<unsigned long long>(h->bucket_count(i)));
    }
    out += "]}";
    first = false;
  }
  out += "}}";
  return out;
}

// ---------------------------------------------------------------------------
// Tracer exporters
// ---------------------------------------------------------------------------

std::string to_text(const Tracer& tracer) {
  std::string out;
  for (const SpanRecord& span : tracer.spans()) {
    appendf(out, "%*s%-*s %10.3f ms\n", static_cast<int>(span.depth * 2), "",
            static_cast<int>(40 - span.depth * 2), span.name.c_str(),
            ms(span.duration_ns));
  }
  return out;
}

std::string to_json(const Tracer& tracer) {
  std::string out = "[";
  bool first = true;
  for (const SpanRecord& span : tracer.spans()) {
    appendf(out,
            "%s{\"name\":\"%s\",\"depth\":%u,\"start_ms\":%s,"
            "\"duration_ms\":%s}",
            first ? "" : ",", json_escape(span.name).c_str(), span.depth,
            json_number(ms(span.start_ns)).c_str(),
            json_number(ms(span.duration_ns)).c_str());
    first = false;
  }
  out += "]";
  return out;
}

}  // namespace tangled::obs
