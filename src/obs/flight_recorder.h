// obs::FlightRecorder — a crash flight recorder for the pipeline.
//
// Lock-light per-thread ring buffers of recent structured events (verify
// outcomes, budget exhaustion, stream fault classifications, checkpoint
// lifecycle). Each thread records into its own fixed-capacity ring, so the
// hot path never contends: the per-ring mutex is only ever shared with a
// drain, which is rare and cold. Events are fixed-size (the detail string
// is truncated into an inline char array), so recording allocates nothing
// after a thread's ring exists.
//
// Drains merge every ring by the global sequence number, reconstructing a
// total order of the last ~capacity events per thread. The recorder feeds
// three consumers:
//  * the TelemetryServer's /flightrecorder endpoint (JSON drain);
//  * the SIGTERM checkpoint path, which persists the drain as a checksummed
//    recover-snapshot section (SectionId::kFlightRecorder) so a killed run
//    leaves a post-mortem record;
//  * tests, via drain() directly.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace tangled::obs {

/// Event taxonomy. Values are part of the snapshot codec — append only.
enum class FlightEventKind : std::uint8_t {
  kVerifyOk = 1,         // a = anchors found, b = budget steps spent
  kVerifyFail = 2,       // a = Errc of the terminal error, b = budget steps
  kBudgetExhausted = 3,  // a = budget steps spent when the search stopped
  kStreamFault = 4,      // a = stream::FaultKind, b = flow id
  kCheckpointWrite = 5,  // a = observations ingested, b = snapshot bytes
  kCheckpointResume = 6, // a = observations restored, b = 1 when cold start
  kCensusBatch = 7,      // a = batch size, b = cumulative observations
  kTelemetryRequest = 8, // a = HTTP status served
  kCustom = 9,           // free-form; meaning carried by `detail`
};

std::string_view to_string(FlightEventKind kind);

/// One recorded event. Fixed size: `detail` is truncated into the inline
/// array so ring slots never own heap memory.
struct FlightEvent {
  static constexpr std::size_t kDetailCapacity = 48;

  std::uint64_t seq = 0;   // global order across all threads (1-based)
  std::uint64_t t_ns = 0;  // nanoseconds since the recorder's construction
  FlightEventKind kind = FlightEventKind::kCustom;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  char detail_buf[kDetailCapacity] = {};

  std::string_view detail() const {
    return std::string_view(detail_buf,
                            ::strnlen(detail_buf, kDetailCapacity));
  }
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1024;

  explicit FlightRecorder(std::size_t ring_capacity = kDefaultRingCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  /// Records one event into the calling thread's ring. `detail` beyond
  /// FlightEvent::kDetailCapacity bytes is truncated. Safe from any thread;
  /// a disabled recorder turns this into one relaxed load.
  void record(FlightEventKind kind, std::uint64_t a = 0, std::uint64_t b = 0,
              std::string_view detail = {});

  /// Snapshot of every thread's surviving events merged by global sequence
  /// (ascending). Non-destructive: rings keep their contents.
  std::vector<FlightEvent> drain() const;

  /// Empties every ring (the global sequence keeps counting).
  void clear();

  /// Runtime kill switch, mirroring MetricsRegistry::set_enabled.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Total events ever recorded, including ones the rings overwrote.
  std::uint64_t events_recorded() const {
    return seq_.load(std::memory_order_relaxed);
  }
  std::size_t ring_capacity() const { return ring_capacity_; }
  /// Number of per-thread rings registered so far.
  std::size_t ring_count() const;

  /// Snapshot-section payload: the current drain, binary-encoded.
  Bytes encode_events() const;
  /// Decodes a payload produced by encode_events (any build that knows the
  /// section). Rejects unknown event kinds and malformed framing.
  static Result<std::vector<FlightEvent>> decode_events(ByteView data);

  /// JSON drain for the /flightrecorder endpoint.
  std::string to_json() const;

 private:
  struct Ring {
    mutable std::mutex mu;
    std::vector<FlightEvent> slots;
    std::uint64_t next = 0;  // total writes; slot index = next % capacity
  };

  Ring& ring_for_this_thread();

  const std::size_t ring_capacity_;
  const std::uint64_t instance_id_;  // invalidates stale thread-local caches
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> seq_{0};
  mutable std::mutex registry_mu_;  // guards rings_, never the slots
  std::vector<std::unique_ptr<Ring>> rings_;
  std::unordered_map<std::thread::id, Ring*> ring_by_thread_;
};

/// JSON array rendering shared by to_json() and snapshot consumers that
/// already hold decoded events.
std::string to_json(std::span<const FlightEvent> events);

/// The process-wide recorder the TANGLED_OBS_EVENT macro writes to. Starts
/// disabled when the environment sets TANGLED_OBS_DISABLE=1 (same knob as
/// the metrics registry).
FlightRecorder& flight_recorder();

}  // namespace tangled::obs
