// obs::TelemetryServer — a minimal poll-based HTTP/1.0 endpoint exposing
// the process's observability state while a long census/ingest run is live.
// This is the first listening socket in the codebase and the seed of the
// ROADMAP's notary-as-a-service ingest server.
//
// Routes:
//   GET /metrics         Prometheus text exposition (to_prometheus)
//   GET /metrics.json    JSON registry dump (to_json)
//   GET /healthz         plain-text liveness body (configurable)
//   GET /flightrecorder  JSON drain of the flight recorder
//
// Design constraints, deliberately boring: one background thread, blocking
// accept guarded by poll() with a short timeout so stop() is prompt,
// one request per connection ("Connection: close"), 4 KiB request cap,
// 127.0.0.1 by default. Every exporter it calls is already thread-safe, so
// serving concurrently with ingest needs no extra locking. It is a
// diagnostics port, not an internet-facing server.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace tangled::obs {

/// Calls `op` again while it fails with EINTR — the POSIX convention where a
/// negative return means "check errno". A signal landing mid-recv/send/poll
/// (SIGTERM requesting a checkpoint, a profiler's SIGPROF) must not be
/// mistaken for a dead peer: before this helper, an interrupted send_all
/// silently abandoned the response and an interrupted http_get truncated the
/// read loop. Any other outcome (success or a real error) is returned as-is.
template <typename Op>
auto retry_eintr(Op&& op) -> decltype(op()) {
  for (;;) {
    const auto result = op();
    if (result >= 0 || errno != EINTR) return result;
  }
}

/// Blocking send of the whole buffer, EINTR-retrying; returns false when the
/// peer is gone (EPIPE/reset) and the response was abandoned. Exposed for the
/// serve subsystem's blocking client and for direct unit testing.
bool send_all(int fd, std::string_view data);

struct TelemetryConfig {
  /// Interface to bind; loopback by default — telemetry is host-local.
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; the bound port is readable via TelemetryServer::port().
  std::uint16_t port = 0;
  /// Registry served at /metrics; nullptr = the process-wide metrics().
  MetricsRegistry* registry = nullptr;
  /// Recorder served at /flightrecorder; nullptr = flight_recorder().
  FlightRecorder* recorder = nullptr;
  /// Body of /healthz; default "ok\n". Runs on the server thread, so it
  /// must be thread-safe against the instrumented workload.
  std::function<std::string()> health;
  /// Wall-clock budget for reading one request, in milliseconds. The server
  /// is single-threaded, so without this a client dripping one byte per
  /// 499 ms would hold the serve loop (and /healthz) hostage until the 4 KiB
  /// request cap — over half an hour. On expiry the request is answered
  /// 408 and the connection closed.
  int request_deadline_ms = 2000;
};

class TelemetryServer {
 public:
  explicit TelemetryServer(TelemetryConfig config = {});
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;
  ~TelemetryServer();

  /// Binds, listens, and starts the serving thread. kInvalidState when
  /// already running; socket errors surface with errno text.
  Result<void> start();

  /// Stops the serving thread and closes the socket. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  /// The bound port (resolves an ephemeral request); 0 before start().
  std::uint16_t port() const { return port_; }
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Requests cut off by the per-request wall-clock deadline (answered 408).
  std::uint64_t requests_timed_out() const {
    return timeouts_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_client(int client_fd);

  TelemetryConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::thread thread_;
};

/// Minimal blocking HTTP/1.0 GET against a local endpoint — exactly enough
/// client for the tests and benches to scrape their own server. Returns the
/// raw response (status line + headers + body).
Result<std::string> http_get(const std::string& host, std::uint16_t port,
                             const std::string& path);

/// Splits a raw HTTP response into status code and body.
struct HttpResponse {
  int status = 0;
  std::string body;
};
Result<HttpResponse> parse_http_response(std::string_view raw);

}  // namespace tangled::obs
