#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

namespace tangled::obs {

const std::vector<double>& default_latency_buckets_us() {
  static const std::vector<double> buckets = {
      1,    2,    5,     10,    25,    50,     100,    250,    500,
      1e3,  2.5e3, 5e3,  1e4,   2.5e4, 5e4,    1e5,    2.5e5,  5e5,
      1e6};
  return buckets;
}

const std::vector<double>& default_count_buckets() {
  static const std::vector<double> buckets = {0,  1,  2,   3,   4,   5,  8,
                                              12, 16, 25,  50,  100, 250,
                                              500, 1000};
  return buckets;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::string name, std::vector<double> bounds,
                     const std::atomic<bool>* enabled)
    : name_(std::move(name)), bounds_(std::move(bounds)), enabled_(enabled) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::observe(double value) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS loop instead of atomic<double>::fetch_add for toolchain portability.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

namespace {

/// Largest finite upper bound, scanning from the top; 0.0 when none exists.
/// This is the quantile clamp for estimates that would otherwise land on a
/// non-finite bound — the overflow bucket, or a caller-supplied +Inf.
double largest_finite_bound(const std::vector<double>& bounds) {
  for (auto it = bounds.rbegin(); it != bounds.rend(); ++it) {
    if (std::isfinite(*it)) return *it;
  }
  return 0.0;
}

}  // namespace

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double cap = largest_finite_bound(bounds_);
  const double target = q * static_cast<double>(n);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t in_bucket = bucket_count(i);
    if (static_cast<double>(cumulative + in_bucket) < target) {
      cumulative += in_bucket;
      continue;
    }
    if (i == bounds_.size()) return cap;
    const double hi = bounds_[i];
    if (!std::isfinite(hi)) return cap;
    if (in_bucket == 0) return hi;
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const double within = target - static_cast<double>(cumulative);
    return lo + (hi - lo) * within / static_cast<double>(in_bucket);
  }
  return cap;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

template <typename T>
T& MetricsRegistry::find_or_create(
    std::string_view name, std::unordered_map<std::string, std::unique_ptr<T>>& map,
    auto&& make) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map.find(std::string(name));
  if (it != map.end()) return *it->second;
  auto [inserted, ok] = map.emplace(std::string(name), make());
  assert(ok);
  return *inserted->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return find_or_create(name, counters_, [&] {
    return std::unique_ptr<Counter>(new Counter(std::string(name), &enabled_));
  });
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return find_or_create(name, gauges_, [&] {
    return std::unique_ptr<Gauge>(new Gauge(std::string(name), &enabled_));
  });
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const std::vector<double>& bounds) {
  bool mismatch = false;
  Histogram* out = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = histograms_.find(std::string(name));
    if (it != histograms_.end()) {
      if (it->second->bounds() != bounds &&
          std::find(bounds_mismatches_.begin(), bounds_mismatches_.end(),
                    it->first) == bounds_mismatches_.end()) {
        bounds_mismatches_.push_back(it->first);
        mismatch = true;
      }
      out = it->second.get();
    } else {
      auto [inserted, ok] = histograms_.emplace(
          std::string(name), std::unique_ptr<Histogram>(new Histogram(
                                 std::string(name), bounds, &enabled_)));
      assert(ok);
      out = inserted->second.get();
    }
  }
  // Bump outside the lock: counter() re-takes mu_.
  if (mismatch) counter("obs.registry.histogram_bounds_mismatch").inc();
  return *out;
}

std::vector<std::string> MetricsRegistry::histogram_bounds_mismatches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bounds_mismatches_;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

namespace {

template <typename T>
std::vector<const T*> sorted_view(
    const std::unordered_map<std::string, std::unique_ptr<T>>& map) {
  std::vector<const T*> out;
  out.reserve(map.size());
  for (const auto& [_, value] : map) out.push_back(value.get());
  std::sort(out.begin(), out.end(),
            [](const T* a, const T* b) { return a->name() < b->name(); });
  return out;
}

}  // namespace

std::vector<const Counter*> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sorted_view(counters_);
}

std::vector<const Gauge*> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sorted_view(gauges_);
}

std::vector<const Histogram*> MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sorted_view(histograms_);
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry = [] {
    const char* env = std::getenv("TANGLED_OBS_DISABLE");
    const bool disabled = env != nullptr && env[0] == '1' && env[1] == '\0';
    return MetricsRegistry(!disabled);
  }();
  return registry;
}

}  // namespace tangled::obs
