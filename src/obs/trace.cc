#include "obs/trace.h"

#include <algorithm>

namespace tangled::obs {

std::vector<SpanRecord> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out = spans_;
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                                     : a.depth < b.depth;
                   });
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

void Tracer::close_span(SpanRecord record) {
  --depth_;
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(record));
}

Span::Span(Tracer& tracer, std::string name)
    : tracer_(&tracer), name_(std::move(name)) {
  if (!tracer_->enabled()) return;
  depth_ = tracer_->open_span();
  start_ns_ = tracer_->now_ns();
  open_ = true;
}

void Span::end() {
  if (!open_) return;
  open_ = false;
  tracer_->close_span(
      {std::move(name_), depth_, start_ns_, tracer_->now_ns() - start_ns_});
}

Tracer& tracer() {
  static Tracer t;
  return t;
}

}  // namespace tangled::obs
