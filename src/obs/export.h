// Exporters for the metrics registry and the tracer.
//
// Three formats, all deterministic (metrics name-sorted, spans start-sorted)
// so goldens are stable:
//  * text       — human-readable dump for terminals and logs;
//  * prometheus — Prometheus text exposition (counters, gauges, cumulative
//                 histogram buckets with le labels);
//  * json       — machine-readable, embedded verbatim in BENCH_*.json.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tangled::obs {

std::string to_text(const MetricsRegistry& registry);
std::string to_prometheus(const MetricsRegistry& registry);
std::string to_json(const MetricsRegistry& registry);

/// Indented span tree with millisecond durations.
std::string to_text(const Tracer& tracer);
/// Array of {name, depth, start_ms, duration_ms}.
std::string to_json(const Tracer& tracer);

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(std::string_view s);
/// Shortest-round-trip-ish number rendering used by all JSON output
/// ("%.17g" trimmed); integers print without a decimal point.
std::string json_number(double value);
/// "metric.name" -> "metric_name": Prometheus metric-name sanitization.
std::string prometheus_name(std::string_view name);

/// Format-conformance check over a Prometheus text exposition. Returns one
/// message per violation (empty = conformant): invalid metric-name charset,
/// unknown TYPE, duplicate TYPE for one metric, unparseable sample values,
/// non-monotonic cumulative histogram buckets, or a histogram without its
/// "+Inf" bucket. This is what the exporter's own tests — and the live
/// /metrics scrape check in bench/stream_ingest — run against the output.
std::vector<std::string> prometheus_conformance_errors(std::string_view text);

/// Plain (label-free) samples of an exposition: name -> value. Histogram
/// bucket lines carry labels and are skipped; _sum/_count lines are plain
/// and included. Lets a scraper compare a live response to the registry.
std::unordered_map<std::string, double> parse_prometheus_samples(
    std::string_view text);

}  // namespace tangled::obs
