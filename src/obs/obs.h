// Umbrella header + instrumentation macros for tangled::obs.
//
// Library code instruments through the TANGLED_OBS_* macros, never by
// calling the registry directly, so the whole subsystem compiles away when
// the build sets -DTANGLED_OBS=OFF (CMake option -> TANGLED_OBS_ENABLED=0).
// Each macro caches its metric reference in a function-local static, so the
// steady-state cost with instrumentation ON is one relaxed load + one
// relaxed RMW.
#pragma once

#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#if !defined(TANGLED_OBS_ENABLED)
#define TANGLED_OBS_ENABLED 1
#endif

#define TANGLED_OBS_CAT_(a, b) a##b
#define TANGLED_OBS_CAT(a, b) TANGLED_OBS_CAT_(a, b)

#if TANGLED_OBS_ENABLED

/// Bump a named counter by 1 / by `n`.
#define TANGLED_OBS_INC(name) TANGLED_OBS_ADD(name, 1)
#define TANGLED_OBS_ADD(name, n)                                        \
  do {                                                                  \
    static ::tangled::obs::Counter& tangled_obs_counter_ =              \
        ::tangled::obs::metrics().counter(name);                        \
    tangled_obs_counter_.inc(static_cast<std::uint64_t>(n));            \
  } while (0)

/// Set a named gauge to `v`.
#define TANGLED_OBS_GAUGE_SET(name, v)                                  \
  do {                                                                  \
    static ::tangled::obs::Gauge& tangled_obs_gauge_ =                  \
        ::tangled::obs::metrics().gauge(name);                          \
    tangled_obs_gauge_.set(static_cast<std::int64_t>(v));               \
  } while (0)

/// Record `v` into a named histogram (default latency buckets, µs).
#define TANGLED_OBS_OBSERVE(name, v)                                    \
  do {                                                                  \
    static ::tangled::obs::Histogram& tangled_obs_hist_ =               \
        ::tangled::obs::metrics().histogram(name);                      \
    tangled_obs_hist_.observe(static_cast<double>(v));                  \
  } while (0)

/// Record a small per-operation count (chain depth, candidates tried).
#define TANGLED_OBS_OBSERVE_COUNT(name, v)                              \
  do {                                                                  \
    static ::tangled::obs::Histogram& tangled_obs_hist_ =               \
        ::tangled::obs::metrics().histogram(                            \
            name, ::tangled::obs::default_count_buckets());             \
    tangled_obs_hist_.observe(static_cast<double>(v));                  \
  } while (0)

/// Record a structured event into the process-wide flight recorder. For
/// hot-path call sites (per-verify outcomes): compiles away under
/// -DTANGLED_OBS=OFF. Cold-path lifecycle events (checkpoint write/resume,
/// stream faults) call flight_recorder().record() directly instead, so
/// post-mortem dumps stay useful even in OBS=OFF builds.
#define TANGLED_OBS_EVENT(kind, a, b, detail)                           \
  ::tangled::obs::flight_recorder().record(                             \
      (kind), static_cast<std::uint64_t>(a),                            \
      static_cast<std::uint64_t>(b), (detail))

/// RAII: time the enclosing scope into a named latency histogram (µs).
#define TANGLED_OBS_SCOPED_TIMER(name)                                  \
  static ::tangled::obs::Histogram& TANGLED_OBS_CAT(                    \
      tangled_obs_timer_hist_, __LINE__) =                              \
      ::tangled::obs::metrics().histogram(name);                        \
  ::tangled::obs::ScopedTimer TANGLED_OBS_CAT(tangled_obs_timer_,       \
                                              __LINE__)(                \
      TANGLED_OBS_CAT(tangled_obs_timer_hist_, __LINE__))

#else  // !TANGLED_OBS_ENABLED — everything vanishes.

#define TANGLED_OBS_INC(name) do {} while (0)
#define TANGLED_OBS_ADD(name, n) do {} while (0)
#define TANGLED_OBS_GAUGE_SET(name, v) do {} while (0)
#define TANGLED_OBS_OBSERVE(name, v) do {} while (0)
#define TANGLED_OBS_OBSERVE_COUNT(name, v) do {} while (0)
#define TANGLED_OBS_EVENT(kind, a, b, detail) do {} while (0)
#define TANGLED_OBS_SCOPED_TIMER(name) do {} while (0)

#endif  // TANGLED_OBS_ENABLED
