#include "obs/telemetry.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/export.h"

namespace tangled::obs {

namespace {

Error socket_error(const std::string& what) {
  return state_error(what + ": " + std::strerror(errno));
}

/// Parses "GET /path HTTP/1.x" out of a raw request; empty on anything else.
/// The query string is routing-irrelevant here and is stripped: Prometheus
/// and curl both legitimately append one (GET /metrics?ts=...), and keeping
/// it in the path used to 404 every such scrape.
std::string request_path(std::string_view request, bool& is_get) {
  is_get = false;
  const std::size_t line_end = request.find("\r\n");
  const std::string_view line =
      line_end == std::string_view::npos ? request : request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return {};
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return {};
  is_get = line.substr(0, sp1) == "GET";
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (const std::size_t q = target.find('?'); q != std::string_view::npos) {
    target = target.substr(0, q);
  }
  return std::string(target);
}

std::string http_response(int status, std::string_view reason,
                          std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.0 " + std::to_string(status) + " " +
                    std::string(reason) + "\r\n";
  out += "Content-Type: " + std::string(content_type) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

constexpr int kPollTimeoutMs = 50;
constexpr std::size_t kMaxRequestBytes = 4096;

}  // namespace

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = retry_eintr([&] {
      return ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    });
    if (n <= 0) return false;  // peer gone: abandon the response
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

TelemetryServer::TelemetryServer(TelemetryConfig config)
    : config_(std::move(config)) {
  if (config_.registry == nullptr) config_.registry = &metrics();
  if (config_.recorder == nullptr) config_.recorder = &flight_recorder();
  if (!config_.health) {
    config_.health = [] { return std::string("ok\n"); };
  }
}

TelemetryServer::~TelemetryServer() { stop(); }

Result<void> TelemetryServer::start() {
  if (running_.load(std::memory_order_relaxed)) {
    return state_error("telemetry server already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return socket_error("telemetry: socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return state_error("telemetry: bad bind address \"" +
                       config_.bind_address + "\"");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Error err = socket_error("telemetry: bind " + config_.bind_address +
                                   ":" + std::to_string(config_.port));
    ::close(fd);
    return err;
  }
  if (::listen(fd, 16) != 0) {
    const Error err = socket_error("telemetry: listen");
    ::close(fd);
    return err;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    const Error err = socket_error("telemetry: getsockname");
    ::close(fd);
    return err;
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  stop_requested_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
  return {};
}

void TelemetryServer::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_relaxed);
}

void TelemetryServer::serve_loop() {
  pollfd pfd{};
  pfd.fd = listen_fd_;
  pfd.events = POLLIN;
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    const int ready = ::poll(&pfd, 1, kPollTimeoutMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_client(client);
    ::close(client);
  }
}

void TelemetryServer::handle_client(int client_fd) {
  // Read until the blank line ending the headers, a cap, a short idle
  // timeout, or — the slow-loris guard — an overall wall-clock deadline.
  // The per-chunk poll alone is not enough: a client dripping one byte per
  // poll window keeps every poll "ready" and would hold this
  // single-threaded loop for up to kMaxRequestBytes polls.
  using clock = std::chrono::steady_clock;
  const auto deadline =
      clock::now() + std::chrono::milliseconds(config_.request_deadline_ms);
  bool timed_out = false;
  std::string request;
  pollfd pfd{};
  pfd.fd = client_fd;
  pfd.events = POLLIN;
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - clock::now());
    if (remaining.count() <= 0) {
      timed_out = true;
      break;
    }
    const int timeout =
        static_cast<int>(std::min<std::int64_t>(500, remaining.count()));
    const int ready = retry_eintr([&] { return ::poll(&pfd, 1, timeout); });
    if (ready < 0) break;
    if (ready == 0) {
      // A 500 ms silent gap keeps its pre-deadline meaning: give up on the
      // client. A shorter gap only means the wall deadline is closer than
      // 500 ms — loop once more so it is the deadline that fires, not the
      // idle break.
      if (timeout == 500) break;
      continue;
    }
    char buf[1024];
    const ssize_t n =
        retry_eintr([&] { return ::recv(client_fd, buf, sizeof(buf), 0); });
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }

  bool is_get = false;
  const std::string path = request_path(request, is_get);
  int status = 200;
  std::string response;
  if (timed_out) {
    status = 408;
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    response = http_response(408, "Request Timeout", "text/plain",
                             "request deadline expired\n");
  } else if (path.empty()) {
    status = 400;
    response = http_response(400, "Bad Request", "text/plain",
                             "malformed request\n");
  } else if (!is_get) {
    status = 405;
    response = http_response(405, "Method Not Allowed", "text/plain",
                             "only GET is served\n");
  } else if (path == "/metrics") {
    response = http_response(200, "OK",
                             "text/plain; version=0.0.4; charset=utf-8",
                             to_prometheus(*config_.registry));
  } else if (path == "/metrics.json") {
    response = http_response(200, "OK", "application/json",
                             to_json(*config_.registry));
  } else if (path == "/healthz") {
    response = http_response(200, "OK", "text/plain", config_.health());
  } else if (path == "/flightrecorder") {
    response = http_response(200, "OK", "application/json",
                             config_.recorder->to_json());
  } else {
    status = 404;
    response = http_response(404, "Not Found", "text/plain",
                             "unknown path: " + path + "\n");
  }
  send_all(client_fd, response);
  requests_.fetch_add(1, std::memory_order_relaxed);
  config_.recorder->record(FlightEventKind::kTelemetryRequest,
                           static_cast<std::uint64_t>(status), 0,
                           path.empty() ? std::string_view("<malformed>")
                                        : std::string_view(path));
}

Result<std::string> http_get(const std::string& host, std::uint16_t port,
                             const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return socket_error("http_get: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return state_error("http_get: bad host \"" + host + "\"");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Error err = socket_error("http_get: connect " + host + ":" +
                                   std::to_string(port));
    ::close(fd);
    return err;
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  send_all(fd, request);
  std::string response;
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    if (retry_eintr([&] { return ::poll(&pfd, 1, 2000); }) <= 0) break;
    char buf[4096];
    const ssize_t n =
        retry_eintr([&] { return ::recv(fd, buf, sizeof(buf), 0); });
    if (n <= 0) break;  // 0 = server closed (Connection: close)
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (response.empty()) {
    return state_error("http_get: empty response from " + host + ":" +
                       std::to_string(port) + path);
  }
  return response;
}

Result<HttpResponse> parse_http_response(std::string_view raw) {
  if (raw.substr(0, 5) != "HTTP/") {
    return parse_error("http response: missing status line");
  }
  const std::size_t sp = raw.find(' ');
  if (sp == std::string_view::npos || sp + 4 > raw.size()) {
    return parse_error("http response: malformed status line");
  }
  int status = 0;
  for (std::size_t i = sp + 1; i < sp + 4 && i < raw.size(); ++i) {
    const char c = raw[i];
    if (c < '0' || c > '9') {
      return parse_error("http response: non-numeric status");
    }
    status = status * 10 + (c - '0');
  }
  const std::size_t body_at = raw.find("\r\n\r\n");
  if (body_at == std::string_view::npos) {
    return parse_error("http response: headers never end");
  }
  HttpResponse out;
  out.status = status;
  out.body = std::string(raw.substr(body_at + 4));
  return out;
}

}  // namespace tangled::obs
