#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdlib>

#include "obs/export.h"
#include "util/binio.h"

namespace tangled::obs {

namespace {

/// Unique per-recorder id so a thread-local cache entry from a destroyed
/// recorder can never match a new recorder reusing the same address.
std::atomic<std::uint64_t> g_instance_counter{0};

struct ThreadRingCache {
  std::uint64_t instance_id = 0;
  void* ring = nullptr;
};

thread_local ThreadRingCache t_ring_cache;

Result<FlightEventKind> decode_kind(std::uint8_t raw) {
  switch (static_cast<FlightEventKind>(raw)) {
    case FlightEventKind::kVerifyOk:
    case FlightEventKind::kVerifyFail:
    case FlightEventKind::kBudgetExhausted:
    case FlightEventKind::kStreamFault:
    case FlightEventKind::kCheckpointWrite:
    case FlightEventKind::kCheckpointResume:
    case FlightEventKind::kCensusBatch:
    case FlightEventKind::kTelemetryRequest:
    case FlightEventKind::kCustom:
      return static_cast<FlightEventKind>(raw);
  }
  return parse_error("flight-recorder: unknown event kind " +
                     std::to_string(raw));
}

constexpr std::uint8_t kCodecVersion = 1;

}  // namespace

std::string_view to_string(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kVerifyOk: return "verify-ok";
    case FlightEventKind::kVerifyFail: return "verify-fail";
    case FlightEventKind::kBudgetExhausted: return "budget-exhausted";
    case FlightEventKind::kStreamFault: return "stream-fault";
    case FlightEventKind::kCheckpointWrite: return "checkpoint-write";
    case FlightEventKind::kCheckpointResume: return "checkpoint-resume";
    case FlightEventKind::kCensusBatch: return "census-batch";
    case FlightEventKind::kTelemetryRequest: return "telemetry-request";
    case FlightEventKind::kCustom: return "custom";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      instance_id_(g_instance_counter.fetch_add(1,
                                                std::memory_order_relaxed) +
                   1),
      epoch_(std::chrono::steady_clock::now()) {}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder::Ring& FlightRecorder::ring_for_this_thread() {
  if (t_ring_cache.instance_id == instance_id_) {
    return *static_cast<Ring*>(t_ring_cache.ring);
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  const auto id = std::this_thread::get_id();
  auto it = ring_by_thread_.find(id);
  if (it == ring_by_thread_.end()) {
    auto ring = std::make_unique<Ring>();
    ring->slots.resize(ring_capacity_);
    it = ring_by_thread_.emplace(id, ring.get()).first;
    rings_.push_back(std::move(ring));
  }
  t_ring_cache = {instance_id_, it->second};
  return *it->second;
}

void FlightRecorder::record(FlightEventKind kind, std::uint64_t a,
                            std::uint64_t b, std::string_view detail) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring& ring = ring_for_this_thread();
  FlightEvent event;
  event.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  event.t_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  event.kind = kind;
  event.a = a;
  event.b = b;
  const std::size_t n =
      std::min(detail.size(), FlightEvent::kDetailCapacity - 1);
  if (n > 0) std::memcpy(event.detail_buf, detail.data(), n);
  event.detail_buf[n] = '\0';
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.slots[ring.next % ring_capacity_] = event;
  ++ring.next;
}

std::vector<FlightEvent> FlightRecorder::drain() const {
  std::vector<FlightEvent> out;
  {
    std::lock_guard<std::mutex> registry_lock(registry_mu_);
    for (const auto& ring : rings_) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      const std::uint64_t live = std::min<std::uint64_t>(
          ring->next, static_cast<std::uint64_t>(ring_capacity_));
      for (std::uint64_t i = ring->next - live; i < ring->next; ++i) {
        out.push_back(ring->slots[i % ring_capacity_]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> registry_lock(registry_mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->next = 0;
  }
}

std::size_t FlightRecorder::ring_count() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return rings_.size();
}

Bytes FlightRecorder::encode_events() const {
  const std::vector<FlightEvent> events = drain();
  Bytes out;
  util::put_u8(out, kCodecVersion);
  util::put_u64(out, events.size());
  for (const FlightEvent& event : events) {
    util::put_u64(out, event.seq);
    util::put_u64(out, event.t_ns);
    util::put_u8(out, static_cast<std::uint8_t>(event.kind));
    util::put_u64(out, event.a);
    util::put_u64(out, event.b);
    util::put_string(out, event.detail());
  }
  return out;
}

Result<std::vector<FlightEvent>> FlightRecorder::decode_events(ByteView data) {
  util::BinReader in(data);
  auto version = in.u8();
  if (!version.ok()) return version.error();
  if (version.value() != kCodecVersion) {
    return unsupported_error("flight-recorder: codec version " +
                             std::to_string(version.value()) +
                             " is not ours");
  }
  // seq + t_ns + kind + a + b + detail length prefix.
  auto n = in.count(/*min_bytes_per_element=*/41);
  if (!n.ok()) return n.error();
  std::vector<FlightEvent> events;
  events.reserve(n.value());
  for (std::size_t i = 0; i < n.value(); ++i) {
    FlightEvent event;
    auto seq = in.u64();
    if (!seq.ok()) return seq.error();
    event.seq = seq.value();
    auto t_ns = in.u64();
    if (!t_ns.ok()) return t_ns.error();
    event.t_ns = t_ns.value();
    auto kind_byte = in.u8();
    if (!kind_byte.ok()) return kind_byte.error();
    auto kind = decode_kind(kind_byte.value());
    if (!kind.ok()) return kind.error();
    event.kind = kind.value();
    auto a = in.u64();
    if (!a.ok()) return a.error();
    event.a = a.value();
    auto b = in.u64();
    if (!b.ok()) return b.error();
    event.b = b.value();
    auto detail = in.string();
    if (!detail.ok()) return detail.error();
    const std::size_t len =
        std::min(detail.value().size(), FlightEvent::kDetailCapacity - 1);
    if (len > 0) std::memcpy(event.detail_buf, detail.value().data(), len);
    event.detail_buf[len] = '\0';
    events.push_back(event);
  }
  if (auto ok = in.expect_end(); !ok.ok()) return ok.error();
  return events;
}

std::string to_json(std::span<const FlightEvent> events) {
  std::string out = "[";
  bool first = true;
  for (const FlightEvent& event : events) {
    out += first ? "" : ",";
    out += "{\"seq\":" + std::to_string(event.seq);
    out += ",\"t_ns\":" + std::to_string(event.t_ns);
    out += ",\"kind\":\"" + std::string(to_string(event.kind)) + "\"";
    out += ",\"a\":" + std::to_string(event.a);
    out += ",\"b\":" + std::to_string(event.b);
    out += ",\"detail\":\"" + json_escape(event.detail()) + "\"}";
    first = false;
  }
  out += "]";
  return out;
}

std::string FlightRecorder::to_json() const {
  const std::vector<FlightEvent> events = drain();
  return obs::to_json(std::span<const FlightEvent>(events));
}

FlightRecorder& flight_recorder() {
  static FlightRecorder* recorder = [] {
    auto* r = new FlightRecorder();
    const char* env = std::getenv("TANGLED_OBS_DISABLE");
    if (env != nullptr && env[0] == '1' && env[1] == '\0') {
      r->set_enabled(false);
    }
    return r;
  }();
  return *recorder;
}

}  // namespace tangled::obs
