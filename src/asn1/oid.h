// ASN.1 OBJECT IDENTIFIER type plus the registry of PKIX OIDs libtangled
// understands (attribute types, signature algorithms, extensions).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace tangled::asn1 {

/// An OBJECT IDENTIFIER as a sequence of arcs, e.g. {2,5,4,3} for id-at-cn.
class Oid {
 public:
  Oid() = default;
  Oid(std::initializer_list<std::uint32_t> arcs) : arcs_(arcs) {}
  explicit Oid(std::vector<std::uint32_t> arcs) : arcs_(std::move(arcs)) {}

  /// Parses dotted-decimal notation ("2.5.4.3").
  static Result<Oid> from_dotted(std::string_view text);

  /// Decodes the *contents* octets of an OID TLV (not including tag/length).
  static Result<Oid> from_der_body(ByteView body);

  /// Encodes to contents octets (base-128 arcs, first two packed).
  Result<Bytes> to_der_body() const;

  std::string to_dotted() const;

  const std::vector<std::uint32_t>& arcs() const { return arcs_; }
  bool empty() const { return arcs_.empty(); }

  friend bool operator==(const Oid&, const Oid&) = default;
  friend auto operator<=>(const Oid&, const Oid&) = default;

 private:
  std::vector<std::uint32_t> arcs_;
};

/// Well-known OIDs. Kept as functions returning const refs so the objects
/// are constructed once and header inclusion stays cheap.
namespace oids {

// X.520 attribute types (subject/issuer RDNs).
const Oid& common_name();             // 2.5.4.3
const Oid& country();                 // 2.5.4.6
const Oid& locality();                // 2.5.4.7
const Oid& state();                   // 2.5.4.8
const Oid& organization();            // 2.5.4.10
const Oid& organizational_unit();     // 2.5.4.11
const Oid& email_address();           // 1.2.840.113549.1.9.1

// Public-key and signature algorithms.
const Oid& rsa_encryption();          // 1.2.840.113549.1.1.1
const Oid& sha256_with_rsa();         // 1.2.840.113549.1.1.11
const Oid& sha1_with_rsa();           // 1.2.840.113549.1.1.5
const Oid& sim_sig();                 // 1.3.6.1.4.1.55555.1.1 (simulation-only)

// Digests (for DigestInfo).
const Oid& sha1();                    // 1.3.14.3.2.26
const Oid& sha256();                  // 2.16.840.1.101.3.4.2.1

// Certificate extensions.
const Oid& basic_constraints();       // 2.5.29.19
const Oid& key_usage();               // 2.5.29.15
const Oid& subject_key_id();          // 2.5.29.14
const Oid& authority_key_id();        // 2.5.29.35
const Oid& ext_key_usage();           // 2.5.29.37
const Oid& subject_alt_name();        // 2.5.29.17

// Extended key usage purposes.
const Oid& eku_server_auth();         // 1.3.6.1.5.5.7.3.1
const Oid& eku_client_auth();         // 1.3.6.1.5.5.7.3.2
const Oid& eku_code_signing();        // 1.3.6.1.5.5.7.3.3
const Oid& eku_email_protection();    // 1.3.6.1.5.5.7.3.4
const Oid& eku_time_stamping();       // 1.3.6.1.5.5.7.3.8

/// Short display name ("CN", "O", …) for DN rendering; empty if unknown.
std::string_view attribute_short_name(const Oid& oid);

}  // namespace oids

}  // namespace tangled::asn1
