#include "asn1/der.h"

#include <cassert>

namespace tangled::asn1 {

namespace {

/// Number of octets a definite-form length needs.
std::size_t length_octets(std::size_t len) {
  if (len < 0x80) return 1;
  std::size_t n = 0;
  while (len > 0) {
    ++n;
    len >>= 8;
  }
  return 1 + n;
}

void encode_length(Bytes& out, std::size_t len) {
  if (len < 0x80) {
    out.push_back(static_cast<std::uint8_t>(len));
    return;
  }
  std::uint8_t tmp[sizeof(std::size_t)];
  std::size_t n = 0;
  while (len > 0) {
    tmp[n++] = static_cast<std::uint8_t>(len & 0xff);
    len >>= 8;
  }
  out.push_back(static_cast<std::uint8_t>(0x80 | n));
  for (std::size_t i = n; i > 0; --i) out.push_back(tmp[i - 1]);
}

}  // namespace

// ---------------------------------------------------------------------------
// DerWriter
// ---------------------------------------------------------------------------

void DerWriter::begin(std::uint8_t raw_tag) {
  open_.push_back(buffer_.size());
  buffer_.push_back(raw_tag);
  // Placeholder single-octet length; end() re-encodes when the body is known.
  buffer_.push_back(0x00);
}

void DerWriter::end() {
  assert(!open_.empty() && "end() without begin()");
  const std::size_t tag_pos = open_.back();
  open_.pop_back();
  const std::size_t body_start = tag_pos + 2;
  const std::size_t body_len = buffer_.size() - body_start;
  const std::size_t need = length_octets(body_len);
  if (need > 1) {
    // Grow the length field in place, shifting the body right.
    Bytes len_bytes;
    encode_length(len_bytes, body_len);
    buffer_.insert(buffer_.begin() + static_cast<std::ptrdiff_t>(tag_pos + 1),
                   len_bytes.size() - 1, 0);
    std::copy(len_bytes.begin(), len_bytes.end(),
              buffer_.begin() + static_cast<std::ptrdiff_t>(tag_pos + 1));
  } else {
    buffer_[tag_pos + 1] = static_cast<std::uint8_t>(body_len);
  }
}

void DerWriter::primitive(std::uint8_t raw_tag, ByteView body) {
  buffer_.push_back(raw_tag);
  encode_length(buffer_, body.size());
  append(buffer_, body);
}

void DerWriter::write_boolean(bool value) {
  const std::uint8_t body = value ? 0xff : 0x00;
  primitive(Tag::kBoolean, ByteView(&body, 1));
}

void DerWriter::write_integer_unsigned(ByteView magnitude) {
  std::size_t start = 0;
  while (start + 1 < magnitude.size() && magnitude[start] == 0) ++start;
  Bytes body;
  if (magnitude.empty() || (magnitude.size() - start == 1 && magnitude[start] == 0)) {
    body.push_back(0x00);
  } else {
    if (magnitude[start] & 0x80) body.push_back(0x00);
    append(body, magnitude.subspan(start));
  }
  primitive(Tag::kInteger, body);
}

void DerWriter::write_integer(std::int64_t value) {
  // Two's-complement minimal encoding.
  Bytes body;
  bool more = true;
  while (more) {
    const auto octet = static_cast<std::uint8_t>(value & 0xff);
    value >>= 8;
    body.insert(body.begin(), octet);
    const bool sign_bit = (octet & 0x80) != 0;
    more = !((value == 0 && !sign_bit) || (value == -1 && sign_bit));
  }
  primitive(Tag::kInteger, body);
}

void DerWriter::write_null() {
  primitive(Tag::kNull, {});
}

void DerWriter::write_oid(const Oid& oid) {
  auto body = oid.to_der_body();
  assert(body.ok() && "writing malformed OID");
  primitive(Tag::kOid, body.value());
}

void DerWriter::write_octet_string(ByteView body) {
  primitive(Tag::kOctetString, body);
}

void DerWriter::write_bit_string(ByteView body) {
  Bytes b;
  b.reserve(body.size() + 1);
  b.push_back(0x00);  // unused bits
  append(b, body);
  primitive(Tag::kBitString, b);
}

void DerWriter::write_utf8_string(std::string_view s) {
  primitive(Tag::kUtf8String, to_bytes(s));
}

void DerWriter::write_printable_string(std::string_view s) {
  primitive(Tag::kPrintableString, to_bytes(s));
}

void DerWriter::write_ia5_string(std::string_view s) {
  primitive(Tag::kIa5String, to_bytes(s));
}

void DerWriter::write_raw(ByteView der) {
  append(buffer_, der);
}

Bytes DerWriter::take() {
  assert(open_.empty() && "take() with open containers");
  return std::move(buffer_);
}

// ---------------------------------------------------------------------------
// DerReader
// ---------------------------------------------------------------------------

Result<std::uint8_t> DerReader::peek_tag() const {
  if (at_end()) return parse_error("peek past end of DER window");
  return data_[pos_];
}

Result<Tlv> DerReader::read_tlv(ByteView* tlv_der) {
  const std::size_t start = pos_;
  if (at_end()) return parse_error("read past end of DER window");
  const std::uint8_t raw_tag = data_[pos_++];
  if ((raw_tag & 0x1f) == 0x1f) {
    return unsupported_error("multi-byte tags not used by X.509");
  }
  if (at_end()) return parse_error("truncated DER length");
  const std::uint8_t first = data_[pos_++];
  std::size_t len = 0;
  if (first < 0x80) {
    len = first;
  } else if (first == 0x80) {
    return parse_error("indefinite length forbidden in DER");
  } else {
    const std::size_t n = first & 0x7f;
    if (n > sizeof(std::size_t)) return parse_error("DER length too large");
    if (remaining() < n) return parse_error("truncated DER length octets");
    for (std::size_t i = 0; i < n; ++i) {
      len = (len << 8) | data_[pos_++];
    }
    // Bound the declared length against the window immediately, before any
    // further interpretation: a hostile multi-octet length (up to 2^64-1)
    // must never reach code that would size a buffer from it. Bodies are
    // returned as views into the validated window, so no read path
    // allocates from `len` — this check keeps that invariant explicit.
    if (len > remaining()) {
      return parse_error("declared DER length exceeds remaining input");
    }
    // DER: shortest possible length form, no leading zero octets.
    if (len < 0x80 || (n > 1 && data_[start + 2] == 0x00)) {
      return parse_error("non-minimal DER length");
    }
  }
  if (remaining() < len) return parse_error("truncated DER body");
  Tlv tlv;
  tlv.raw_tag = raw_tag;
  tlv.body = data_.subspan(pos_, len);
  pos_ += len;
  if (tlv_der != nullptr) *tlv_der = data_.subspan(start, pos_ - start);
  return tlv;
}

Result<Tlv> DerReader::expect(Tag tag, ByteView* tlv_der) {
  return expect_raw(static_cast<std::uint8_t>(tag), tlv_der);
}

Result<Tlv> DerReader::expect_raw(std::uint8_t raw_tag, ByteView* tlv_der) {
  auto tlv = read_tlv(tlv_der);
  if (!tlv.ok()) return tlv;
  if (tlv.value().raw_tag != raw_tag) {
    return parse_error("unexpected DER tag " + std::to_string(tlv.value().raw_tag) +
                       ", wanted " + std::to_string(raw_tag));
  }
  return tlv;
}

Result<bool> DerReader::read_boolean() {
  auto tlv = expect(Tag::kBoolean);
  if (!tlv.ok()) return tlv.error();
  const ByteView body = tlv.value().body;
  if (body.size() != 1) return parse_error("BOOLEAN must be one octet");
  if (body[0] != 0x00 && body[0] != 0xff) {
    return parse_error("DER BOOLEAN must be 0x00 or 0xff");
  }
  return body[0] == 0xff;
}

Result<Bytes> DerReader::read_integer_unsigned() {
  auto tlv = expect(Tag::kInteger);
  if (!tlv.ok()) return tlv.error();
  ByteView body = tlv.value().body;
  if (body.empty()) return parse_error("empty INTEGER");
  if (body[0] & 0x80) return parse_error("negative INTEGER where unsigned expected");
  if (body.size() >= 2 && body[0] == 0x00 && !(body[1] & 0x80)) {
    return parse_error("non-minimal INTEGER encoding");
  }
  if (body.size() > 1 && body[0] == 0x00) body = body.subspan(1);
  return Bytes(body.begin(), body.end());
}

Result<std::int64_t> DerReader::read_small_integer() {
  auto tlv = expect(Tag::kInteger);
  if (!tlv.ok()) return tlv.error();
  const ByteView body = tlv.value().body;
  if (body.empty()) return parse_error("empty INTEGER");
  if (body.size() > 8) return range_error("INTEGER too large for int64");
  std::int64_t value = (body[0] & 0x80) ? -1 : 0;
  for (std::uint8_t b : body) value = (value << 8) | b;
  return value;
}

Result<Oid> DerReader::read_oid() {
  auto tlv = expect(Tag::kOid);
  if (!tlv.ok()) return tlv.error();
  return Oid::from_der_body(tlv.value().body);
}

Result<Bytes> DerReader::read_octet_string() {
  auto tlv = expect(Tag::kOctetString);
  if (!tlv.ok()) return tlv.error();
  return Bytes(tlv.value().body.begin(), tlv.value().body.end());
}

Result<Bytes> DerReader::read_bit_string() {
  auto tlv = expect(Tag::kBitString);
  if (!tlv.ok()) return tlv.error();
  const ByteView body = tlv.value().body;
  if (body.empty()) return parse_error("empty BIT STRING");
  if (body[0] != 0) return unsupported_error("BIT STRING with unused bits");
  return Bytes(body.begin() + 1, body.end());
}

Result<std::string> DerReader::read_string() {
  auto tlv = read_tlv();
  if (!tlv.ok()) return tlv.error();
  const auto& t = tlv.value();
  if (!t.is(Tag::kUtf8String) && !t.is(Tag::kPrintableString) &&
      !t.is(Tag::kIa5String)) {
    return parse_error("expected a string type");
  }
  return to_string(t.body);
}

Result<void> DerReader::expect_end() const {
  if (!at_end()) return parse_error("trailing bytes after DER value");
  return {};
}

}  // namespace tangled::asn1
