#include "asn1/oid.h"

#include <charconv>

namespace tangled::asn1 {

Result<Oid> Oid::from_dotted(std::string_view text) {
  std::vector<std::uint32_t> arcs;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t dot = text.find('.', pos);
    const std::string_view piece =
        text.substr(pos, dot == std::string_view::npos ? text.size() - pos : dot - pos);
    std::uint32_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(piece.data(), piece.data() + piece.size(), value);
    if (ec != std::errc{} || ptr != piece.data() + piece.size() || piece.empty()) {
      return parse_error("bad OID component in '" + std::string(text) + "'");
    }
    arcs.push_back(value);
    if (dot == std::string_view::npos) break;
    pos = dot + 1;
  }
  if (arcs.size() < 2) return parse_error("OID needs at least two arcs");
  if (arcs[0] > 2 || (arcs[0] < 2 && arcs[1] > 39)) {
    return parse_error("invalid leading OID arcs");
  }
  return Oid(std::move(arcs));
}

Result<Oid> Oid::from_der_body(ByteView body) {
  if (body.empty()) return parse_error("empty OID body");
  std::vector<std::uint32_t> arcs;
  std::size_t i = 0;
  bool first = true;
  while (i < body.size()) {
    std::uint64_t value = 0;
    bool done = false;
    std::size_t len = 0;
    while (i < body.size()) {
      const std::uint8_t b = body[i++];
      ++len;
      if (len == 1 && b == 0x80) return parse_error("non-minimal OID arc encoding");
      if (len > 5) return parse_error("OID arc too large");
      value = (value << 7) | (b & 0x7f);
      if ((b & 0x80) == 0) {
        done = true;
        break;
      }
    }
    if (!done) return parse_error("truncated OID arc");
    if (first) {
      // First subidentifier packs the first two arcs: 40*a0 + a1.
      const auto a0 = static_cast<std::uint32_t>(value >= 80 ? 2 : value / 40);
      const std::uint64_t a1 = value - 40ull * a0;
      if (a1 > 0xffffffffull) return range_error("OID arc exceeds 32 bits");
      arcs.push_back(a0);
      arcs.push_back(static_cast<std::uint32_t>(a1));
      first = false;
    } else {
      if (value > 0xffffffffull) return range_error("OID arc exceeds 32 bits");
      arcs.push_back(static_cast<std::uint32_t>(value));
    }
  }
  return Oid(std::move(arcs));
}

Result<Bytes> Oid::to_der_body() const {
  if (arcs_.size() < 2) return state_error("OID needs at least two arcs");
  if (arcs_[0] > 2 || (arcs_[0] < 2 && arcs_[1] > 39)) {
    return state_error("invalid leading OID arcs");
  }
  Bytes out;
  auto emit = [&out](std::uint64_t value) {
    std::uint8_t tmp[10];
    int n = 0;
    do {
      tmp[n++] = static_cast<std::uint8_t>(value & 0x7f);
      value >>= 7;
    } while (value != 0);
    for (int i = n - 1; i >= 0; --i) {
      out.push_back(static_cast<std::uint8_t>(tmp[i] | (i > 0 ? 0x80 : 0x00)));
    }
  };
  emit(40ull * arcs_[0] + arcs_[1]);
  for (std::size_t i = 2; i < arcs_.size(); ++i) emit(arcs_[i]);
  return out;
}

std::string Oid::to_dotted() const {
  std::string out;
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(arcs_[i]);
  }
  return out;
}

namespace oids {

#define TANGLED_DEFINE_OID(fn, ...)         \
  const Oid& fn() {                         \
    static const Oid oid{__VA_ARGS__};      \
    return oid;                             \
  }

TANGLED_DEFINE_OID(common_name, 2, 5, 4, 3)
TANGLED_DEFINE_OID(country, 2, 5, 4, 6)
TANGLED_DEFINE_OID(locality, 2, 5, 4, 7)
TANGLED_DEFINE_OID(state, 2, 5, 4, 8)
TANGLED_DEFINE_OID(organization, 2, 5, 4, 10)
TANGLED_DEFINE_OID(organizational_unit, 2, 5, 4, 11)
TANGLED_DEFINE_OID(email_address, 1, 2, 840, 113549, 1, 9, 1)

TANGLED_DEFINE_OID(rsa_encryption, 1, 2, 840, 113549, 1, 1, 1)
TANGLED_DEFINE_OID(sha256_with_rsa, 1, 2, 840, 113549, 1, 1, 11)
TANGLED_DEFINE_OID(sha1_with_rsa, 1, 2, 840, 113549, 1, 1, 5)
TANGLED_DEFINE_OID(sim_sig, 1, 3, 6, 1, 4, 1, 55555, 1, 1)

TANGLED_DEFINE_OID(sha1, 1, 3, 14, 3, 2, 26)
TANGLED_DEFINE_OID(sha256, 2, 16, 840, 1, 101, 3, 4, 2, 1)

TANGLED_DEFINE_OID(basic_constraints, 2, 5, 29, 19)
TANGLED_DEFINE_OID(key_usage, 2, 5, 29, 15)
TANGLED_DEFINE_OID(subject_key_id, 2, 5, 29, 14)
TANGLED_DEFINE_OID(authority_key_id, 2, 5, 29, 35)
TANGLED_DEFINE_OID(ext_key_usage, 2, 5, 29, 37)
TANGLED_DEFINE_OID(subject_alt_name, 2, 5, 29, 17)

TANGLED_DEFINE_OID(eku_server_auth, 1, 3, 6, 1, 5, 5, 7, 3, 1)
TANGLED_DEFINE_OID(eku_client_auth, 1, 3, 6, 1, 5, 5, 7, 3, 2)
TANGLED_DEFINE_OID(eku_code_signing, 1, 3, 6, 1, 5, 5, 7, 3, 3)
TANGLED_DEFINE_OID(eku_email_protection, 1, 3, 6, 1, 5, 5, 7, 3, 4)
TANGLED_DEFINE_OID(eku_time_stamping, 1, 3, 6, 1, 5, 5, 7, 3, 8)

#undef TANGLED_DEFINE_OID

std::string_view attribute_short_name(const Oid& oid) {
  if (oid == common_name()) return "CN";
  if (oid == country()) return "C";
  if (oid == locality()) return "L";
  if (oid == state()) return "ST";
  if (oid == organization()) return "O";
  if (oid == organizational_unit()) return "OU";
  if (oid == email_address()) return "emailAddress";
  return {};
}

}  // namespace oids

}  // namespace tangled::asn1
