// DER (Distinguished Encoding Rules) reader and writer.
//
// The writer builds nested TLVs with definite lengths by back-patching
// container lengths on end_*(). The reader is a bounds-checked cursor over a
// byte span; it never throws and never reads past its window, so it is safe
// on hostile input.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "asn1/oid.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tangled::asn1 {

/// Universal-class tag numbers used by X.509.
enum class Tag : std::uint8_t {
  kBoolean = 0x01,
  kInteger = 0x02,
  kBitString = 0x03,
  kOctetString = 0x04,
  kNull = 0x05,
  kOid = 0x06,
  kUtf8String = 0x0c,
  kPrintableString = 0x13,
  kIa5String = 0x16,
  kUtcTime = 0x17,
  kGeneralizedTime = 0x18,
  kSequence = 0x30,  // constructed bit already set
  kSet = 0x31,       // constructed bit already set
};

/// Raw identifier octet for a context-specific tag, e.g. [0] EXPLICIT.
constexpr std::uint8_t context_tag(std::uint8_t number, bool constructed) {
  return static_cast<std::uint8_t>(0x80 | (constructed ? 0x20 : 0x00) | number);
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Appends DER TLVs to an internal buffer. Containers nest via
/// begin(tag)/end(); lengths are patched when the container closes.
class DerWriter {
 public:
  /// Opens a constructed TLV with the given identifier octet.
  void begin(std::uint8_t raw_tag);
  void begin(Tag tag) { begin(static_cast<std::uint8_t>(tag)); }
  /// Closes the innermost open container.
  void end();

  /// Writes a complete primitive TLV.
  void primitive(std::uint8_t raw_tag, ByteView body);
  void primitive(Tag tag, ByteView body) {
    primitive(static_cast<std::uint8_t>(tag), body);
  }

  void write_boolean(bool value);
  /// INTEGER from a big-endian unsigned magnitude; prepends 0x00 when the
  /// leading bit is set, strips redundant leading zeros.
  void write_integer_unsigned(ByteView magnitude);
  void write_integer(std::int64_t value);
  void write_null();
  void write_oid(const Oid& oid);
  void write_octet_string(ByteView body);
  /// BIT STRING with zero unused bits (the only form X.509 needs here).
  void write_bit_string(ByteView body);
  void write_utf8_string(std::string_view s);
  void write_printable_string(std::string_view s);
  void write_ia5_string(std::string_view s);
  /// Writes pre-encoded DER verbatim (a complete TLV produced elsewhere).
  void write_raw(ByteView der);

  /// Finishes and returns the buffer. All containers must be closed.
  Bytes take();

  /// Current encoded size (useful for assertions in tests).
  std::size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
  std::vector<std::size_t> open_;  // offsets of container *tag* bytes
};

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// One decoded TLV: identifier octet plus its contents window.
struct Tlv {
  std::uint8_t raw_tag = 0;
  ByteView body;

  bool is(Tag tag) const { return raw_tag == static_cast<std::uint8_t>(tag); }
  bool is_context(std::uint8_t number) const {
    return (raw_tag & 0xc0) == 0x80 && (raw_tag & 0x1f) == number;
  }
};

/// Bounds-checked cursor over a DER-encoded window.
class DerReader {
 public:
  explicit DerReader(ByteView data) : data_(data) {}

  bool at_end() const { return pos_ >= data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  /// Peeks the next identifier octet without consuming.
  Result<std::uint8_t> peek_tag() const;

  /// Reads the next TLV (header + body), advancing past it. Also returns the
  /// full encoding window via `tlv_der` when non-null (used for signatures
  /// over raw TBS bytes).
  Result<Tlv> read_tlv(ByteView* tlv_der = nullptr);

  /// Reads a TLV and checks its tag.
  Result<Tlv> expect(Tag tag, ByteView* tlv_der = nullptr);
  Result<Tlv> expect_raw(std::uint8_t raw_tag, ByteView* tlv_der = nullptr);

  /// Typed convenience readers.
  Result<bool> read_boolean();
  /// INTEGER as big-endian magnitude (rejects negatives; strips sign octet).
  Result<Bytes> read_integer_unsigned();
  Result<std::int64_t> read_small_integer();
  Result<Oid> read_oid();
  Result<Bytes> read_octet_string();
  /// BIT STRING; requires zero unused bits.
  Result<Bytes> read_bit_string();
  /// Any of UTF8String/PrintableString/IA5String as text.
  Result<std::string> read_string();

  /// Fails unless the whole window was consumed (DER forbids trailing bytes).
  Result<void> expect_end() const;

 private:
  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace tangled::asn1
