// ASN.1 time: UTCTime / GeneralizedTime parsing and encoding, plus the small
// amount of civil-calendar arithmetic the validity checks need.
//
// X.509 (RFC 5280) rules: dates through 2049 use UTCTime (YYMMDDHHMMSSZ,
// years 50-99 -> 19xx, 00-49 -> 20xx); 2050 onward uses GeneralizedTime
// (YYYYMMDDHHMMSSZ). Only the Zulu forms are valid in DER certificates.
#pragma once

#include <cstdint>
#include <string>

#include "util/result.h"

namespace tangled::asn1 {

/// A civil UTC timestamp with second resolution.
struct Time {
  int year = 1970;   // full year, e.g. 2014
  int month = 1;     // 1-12
  int day = 1;       // 1-31
  int hour = 0;      // 0-23
  int minute = 0;    // 0-59
  int second = 0;    // 0-59 (leap seconds not modeled)

  /// Seconds since the Unix epoch (proleptic Gregorian, days-from-civil).
  std::int64_t to_unix() const;
  static Time from_unix(std::int64_t seconds);

  /// Parses either UTCTime or GeneralizedTime contents ("140101000000Z").
  static Result<Time> parse_utc(std::string_view body);
  static Result<Time> parse_generalized(std::string_view body);

  /// Encodes per the RFC 5280 rule (UTCTime for [1950, 2049], else
  /// Generalized). Returns the contents string; the caller wraps it in the
  /// right tag. encode_utc refuses years UTCTime cannot represent — the
  /// two-digit year window is 1950-2049, so 2150 would silently round-trip
  /// as 1950 and pre-1900 years would print a negative field.
  Result<std::string> encode_utc() const;  // "YYMMDDHHMMSSZ"
  std::string encode_generalized() const;  // "YYYYMMDDHHMMSSZ"
  bool needs_generalized() const { return year < 1950 || year >= 2050; }

  /// ISO 8601 rendering for reports: "2014-12-02T00:00:00Z".
  std::string to_iso8601() const;

  bool valid() const;

  friend bool operator==(const Time&, const Time&) = default;
};

/// Ordering via Unix conversion.
bool operator<(const Time& a, const Time& b);
bool operator<=(const Time& a, const Time& b);
bool operator>(const Time& a, const Time& b);
bool operator>=(const Time& a, const Time& b);

/// Convenience constructor.
Time make_time(int year, int month, int day, int hour = 0, int minute = 0,
               int second = 0);

}  // namespace tangled::asn1
