#include "asn1/time.h"

#include <array>
#include <cstdio>

namespace tangled::asn1 {

namespace {

bool is_leap(int y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

int days_in_month(int y, int m) {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (m == 2 && is_leap(y)) return 29;
  return kDays[m - 1];
}

// Howard Hinnant's days_from_civil: days since 1970-01-01.
std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
                       static_cast<unsigned>(d) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, int& y, int& m, int& d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp < 10 ? mp + 3 : mp - 9);
  y = static_cast<int>(yy + (m <= 2));
}

Result<int> parse_digits(std::string_view s, std::size_t pos, std::size_t n) {
  if (pos > s.size() || n > s.size() - pos) {
    return parse_error("truncated ASN.1 time");
  }
  int value = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const char c = s[pos + i];
    if (c < '0' || c > '9') return parse_error("non-digit in ASN.1 time");
    value = value * 10 + (c - '0');
  }
  return value;
}

Result<Time> parse_time_fields(std::string_view s, int year, std::size_t pos) {
  Time t;
  t.year = year;
  auto get = [&s, &pos](std::size_t n) { return parse_digits(s, pos, n); };
  auto mo = get(2);
  if (!mo.ok()) return mo.error();
  t.month = mo.value();
  pos += 2;
  auto da = parse_digits(s, pos, 2);
  if (!da.ok()) return da.error();
  t.day = da.value();
  pos += 2;
  auto ho = parse_digits(s, pos, 2);
  if (!ho.ok()) return ho.error();
  t.hour = ho.value();
  pos += 2;
  auto mi = parse_digits(s, pos, 2);
  if (!mi.ok()) return mi.error();
  t.minute = mi.value();
  pos += 2;
  auto se = parse_digits(s, pos, 2);
  if (!se.ok()) return se.error();
  t.second = se.value();
  if (!t.valid()) return range_error("ASN.1 time fields out of range");
  return t;
}

}  // namespace

std::int64_t Time::to_unix() const {
  return days_from_civil(year, month, day) * 86400 + hour * 3600 + minute * 60 +
         second;
}

Time Time::from_unix(std::int64_t seconds) {
  std::int64_t days = seconds / 86400;
  std::int64_t rem = seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  Time t;
  civil_from_days(days, t.year, t.month, t.day);
  t.hour = static_cast<int>(rem / 3600);
  t.minute = static_cast<int>((rem % 3600) / 60);
  t.second = static_cast<int>(rem % 60);
  return t;
}

Result<Time> Time::parse_utc(std::string_view body) {
  // YYMMDDHHMMSSZ — 13 chars, DER requires seconds and Zulu.
  if (body.size() != 13 || body.back() != 'Z') {
    return parse_error("UTCTime must be YYMMDDHHMMSSZ");
  }
  auto yy = parse_digits(body, 0, 2);
  if (!yy.ok()) return yy.error();
  const int year = yy.value() >= 50 ? 1900 + yy.value() : 2000 + yy.value();
  return parse_time_fields(body, year, 2);
}

Result<Time> Time::parse_generalized(std::string_view body) {
  // YYYYMMDDHHMMSSZ — 15 chars.
  if (body.size() != 15 || body.back() != 'Z') {
    return parse_error("GeneralizedTime must be YYYYMMDDHHMMSSZ");
  }
  auto yyyy = parse_digits(body, 0, 4);
  if (!yyyy.ok()) return yyyy.error();
  return parse_time_fields(body, yyyy.value(), 4);
}

Result<std::string> Time::encode_utc() const {
  if (year < 1950 || year > 2049) {
    return range_error("UTCTime cannot represent year " + std::to_string(year) +
                       " (two-digit window is 1950-2049; use GeneralizedTime)");
  }
  char buf[16];
  std::snprintf(buf, sizeof buf, "%02d%02d%02d%02d%02d%02dZ", year % 100, month,
                day, hour, minute, second);
  return std::string(buf);
}

std::string Time::encode_generalized() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%04d%02d%02d%02d%02d%02dZ", year, month, day,
                hour, minute, second);
  return buf;
}

std::string Time::to_iso8601() const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02dZ", year, month,
                day, hour, minute, second);
  return buf;
}

bool Time::valid() const {
  if (month < 1 || month > 12) return false;
  if (day < 1 || day > days_in_month(year, month)) return false;
  if (hour < 0 || hour > 23) return false;
  if (minute < 0 || minute > 59) return false;
  if (second < 0 || second > 59) return false;
  return true;
}

bool operator<(const Time& a, const Time& b) { return a.to_unix() < b.to_unix(); }
bool operator<=(const Time& a, const Time& b) { return a.to_unix() <= b.to_unix(); }
bool operator>(const Time& a, const Time& b) { return b < a; }
bool operator>=(const Time& a, const Time& b) { return b <= a; }

Time make_time(int year, int month, int day, int hour, int minute, int second) {
  Time t;
  t.year = year;
  t.month = month;
  t.day = day;
  t.hour = hour;
  t.minute = minute;
  t.second = second;
  return t;
}

}  // namespace tangled::asn1
