// Certification-path building and validation.
//
// TrustAnchors indexes root certificates by subject DN and by key id;
// ChainVerifier builds a path from a leaf through supplied intermediates to
// an anchor, checking signatures, validity windows, basic constraints, and
// guarding against loops. This is the engine behind the paper's §5.3
// validation census ("number of TLS certificates that each root certificate
// can validate").
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "asn1/time.h"
#include "pki/decision_trace.h"
#include "util/bytes.h"
#include "util/result.h"
#include "x509/certificate.h"

namespace tangled::pki {

class VerifyCache;

/// Trust purposes, modeled on Mozilla's trust bits. §8 faults Android for
/// lacking exactly this: an AOSP root "can be used for any operation from
/// TLS server verification to code signing". Anchors added without flags
/// behave Android-style (trusted for everything); scoped anchors behave
/// Mozilla-style.
enum class TrustPurpose : std::uint8_t {
  kServerAuth = 1 << 0,
  kClientAuth = 1 << 1,
  kCodeSigning = 1 << 2,
  kEmail = 1 << 3,
  kTimestamping = 1 << 4,
};

using TrustFlags = std::uint8_t;
inline constexpr TrustFlags kTrustAll = 0xff;

constexpr TrustFlags trust_flag(TrustPurpose purpose) {
  return static_cast<TrustFlags>(purpose);
}

/// A set of trusted roots with issuer-lookup indexes and optional
/// per-anchor trust scoping.
class TrustAnchors {
 public:
  TrustAnchors() = default;
  explicit TrustAnchors(const std::vector<x509::Certificate>& roots);

  void add(const x509::Certificate& root, TrustFlags flags = kTrustAll);

  /// Whether `anchor` (a member) is trusted for `purpose`. Unknown certs
  /// are trusted for nothing.
  bool trusted_for(const x509::Certificate& anchor, TrustPurpose purpose) const;
  std::size_t size() const { return anchors_.size(); }
  bool empty() const { return anchors_.empty(); }
  const std::vector<x509::Certificate>& all() const { return anchors_; }

  /// Anchors whose subject matches `issuer_name` (hash-indexed).
  std::vector<const x509::Certificate*> by_subject(const x509::Name& issuer_name) const;
  /// Same, with the caller supplying fnv1a64(issuer_name.to_der()) — the
  /// verifier passes a certificate's interned hash to avoid re-encoding the
  /// DN on every lookup.
  std::vector<const x509::Certificate*> by_subject(
      const x509::Name& issuer_name, std::uint64_t issuer_name_hash) const;
  /// Allocation-free variant for the verifier's hot path: calls `fn` on
  /// each subject match, in index order; `fn` returns false to stop early.
  /// Matching is by canonical subject-Name DER (hash prefilter, then byte
  /// equality) — identical to Name equality for DER-parsed certificates,
  /// without the deep RDN comparison.
  template <typename Fn>
  void for_each_by_subject(ByteView subject_der,
                           std::uint64_t subject_name_hash, Fn&& fn) const {
    const auto [begin, end] = subject_index_.equal_range(subject_name_hash);
    for (auto it = begin; it != end; ++it) {
      const x509::Certificate& cand = anchors_[it->second];
      if (bytes_equal(cand.subject_name_der(), subject_der) && !fn(cand)) {
        return;
      }
    }
  }
  /// Anchors whose subject key id matches (when present).
  std::vector<const x509::Certificate*> by_key_id(ByteView key_id) const;

  /// True if a byte-identical anchor is present.
  bool contains(const x509::Certificate& cert) const;

 private:
  std::vector<x509::Certificate> anchors_;
  std::vector<TrustFlags> flags_;
  std::unordered_multimap<std::uint64_t, std::size_t> subject_index_;
  std::unordered_multimap<std::uint64_t, std::size_t> key_id_index_;
};

/// Bounds on one verify call's path search. Real cross-sign graphs are
/// tangled enough that an unbounded depth-first search is itself a
/// robustness hazard: a dense mesh of mutually cross-signed CAs gives the
/// search an exponential frontier, and one pathological leaf would stall a
/// whole census shard. The budget turns that into graceful degradation —
/// the search stops, the result is flagged `budget_exhausted`, and the obs
/// registry counts it.
struct ResourceBudget {
  /// Spent once per candidate link considered (anchors + intermediates
  /// tried). The default is orders of magnitude above anything an honest
  /// hierarchy needs (census leaves spend a handful), so only adversarial
  /// meshes ever hit it. 0 = unlimited.
  std::size_t max_search_steps = 1u << 20;
  /// When nonzero, caps the path depth below VerifyOptions::max_depth
  /// (whichever is smaller wins).
  std::size_t max_depth = 0;
  /// Wall-clock deadline for one verify call, in microseconds; 0 = none.
  /// Checked every 64 steps to keep clock reads off the per-candidate hot
  /// path. Inherently nondeterministic — reproduction runs and the census
  /// equivalence tests rely on max_search_steps instead; the deadline is
  /// the belt-and-braces bound for production serving.
  std::int64_t deadline_us = 0;
};

/// Validation policy knobs.
struct VerifyOptions {
  asn1::Time at = asn1::make_time(2014, 4, 1);  // paper's measurement window
  bool check_validity = true;
  bool check_signatures = true;
  bool require_ca_bit = true;   // intermediates/roots must be CAs
  std::size_t max_depth = 8;    // leaf + intermediates + root
  /// When set, the chain must terminate at an anchor trusted for this
  /// purpose (Mozilla-style scoping; unset = Android-style "any use"), and
  /// a leaf carrying an ExtendedKeyUsage extension must allow the matching
  /// purpose OID.
  std::optional<TrustPurpose> purpose;
  /// Enforce BasicConstraints pathLenConstraint (RFC 5280 §6.1.4). A path
  /// violating it is rejected during the search and the search backtracks —
  /// another path (a re-issued anchor without the constraint, a different
  /// cross-signing intermediate) can still succeed.
  bool check_path_length = true;
  /// Consult the attached VerifyCache (no-op when none is attached).
  /// Results are bit-identical either way; only wall time differs.
  bool use_verify_cache = true;
  /// Fill AnchorSurvey::chain with the first valid path. The census only
  /// needs the anchor set, so it turns this off to skip a per-leaf copy of
  /// the whole chain.
  bool collect_chain = true;
  /// Search-resource bounds (steps, depth, wall clock). Identical results
  /// for any budget large enough to finish the search; a too-small budget
  /// degrades to a partial answer marked budget_exhausted, never a stall.
  ResourceBudget budget;
};

/// A validated path, leaf first, anchor last.
struct Chain {
  std::vector<x509::Certificate> certificates;

  const x509::Certificate& leaf() const { return certificates.front(); }
  const x509::Certificate& anchor() const { return certificates.back(); }
  std::size_t length() const { return certificates.size(); }

  /// Multi-block PEM bundle in presentation order (leaf first) — the usual
  /// fullchain.pem layout.
  std::string to_pem_bundle() const;
};

/// Every trust anchor that can terminate some valid path for one leaf —
/// the multi-anchor result the §5.3 census needs: with cross-signing, a
/// leaf is validated by *each* store holding *any* of these anchors, not
/// just by the store holding the first anchor a path search happens upon.
struct AnchorSurvey {
  /// The first valid chain found (same shortest-first search order as
  /// `verify`), kept for callers that also want one concrete path.
  Chain chain;
  /// Every distinct anchor (by DER) terminating some valid path, in the
  /// order the search found them. Pointers into the TrustAnchors' storage;
  /// valid for the anchors' lifetime.
  std::vector<const x509::Certificate*> anchors;
  /// The search stopped because the ResourceBudget ran out, so `anchors`
  /// may be a subset of what an unbounded search would find. Anchors listed
  /// are still genuinely valid (the budget only truncates, never corrupts).
  bool budget_exhausted = false;
};

/// Thread-safety: ChainVerifier and TrustAnchors are immutable after
/// construction; every `verify*` call keeps its search state (candidate
/// indexes, path, statistics accumulators) on the stack, so concurrent
/// const calls from multiple threads are safe. The obs counters they bump
/// are atomic, and the optional attached VerifyCache is internally
/// synchronized (attach it before the first verify call).
class ChainVerifier {
 public:
  explicit ChainVerifier(const TrustAnchors& anchors, VerifyOptions options = {})
      : anchors_(anchors), options_(options) {}

  /// Attaches a shared link-signature cache (non-owning; must outlive the
  /// verifier). nullptr detaches. Verification results are bit-identical
  /// with or without a cache.
  void set_verify_cache(VerifyCache* cache) { cache_ = cache; }
  VerifyCache* verify_cache() const { return cache_; }

  /// Builds and validates a path for `leaf` given untrusted `intermediates`
  /// (any order, duplicates tolerated). Returns the first valid chain found
  /// (shortest-first search).
  Result<Chain> verify(const x509::Certificate& leaf,
                       std::span<const x509::Certificate> intermediates) const {
    return verify(leaf, intermediates, nullptr);
  }
  /// Tracing variant: when `trace` is non-null, every search decision is
  /// recorded into it (attempts, rejections, backtracks, cache hits) and
  /// `trace->verdict` is stamped to match the returned Result exactly.
  /// The result is bit-identical to the untraced call.
  Result<Chain> verify(const x509::Certificate& leaf,
                       std::span<const x509::Certificate> intermediates,
                       DecisionTrace* trace) const;
  Result<Chain> verify(
      const x509::Certificate& leaf,
      std::initializer_list<x509::Certificate> intermediates) const {
    return verify(leaf, std::span<const x509::Certificate>(
                            intermediates.begin(), intermediates.size()));
  }

  /// Exhaustive variant: enumerates every trust anchor that terminates a
  /// valid path for `leaf` (cross-signed hierarchies reach several). A path
  /// that fails a policy check (expiry, signature, pathLenConstraint) is
  /// skipped without disqualifying its anchor — the anchor survives if any
  /// of its paths is valid. Errors only when no valid path exists at all.
  Result<AnchorSurvey> verify_all_anchors(
      const x509::Certificate& leaf,
      std::span<const x509::Certificate> intermediates) const {
    return verify_all_anchors(leaf, intermediates, nullptr);
  }
  /// Tracing variant (see the traced verify overload): identical result,
  /// with the exhaustive search's decisions recorded into `trace`.
  Result<AnchorSurvey> verify_all_anchors(
      const x509::Certificate& leaf,
      std::span<const x509::Certificate> intermediates,
      DecisionTrace* trace) const;
  Result<AnchorSurvey> verify_all_anchors(
      const x509::Certificate& leaf,
      std::initializer_list<x509::Certificate> intermediates) const {
    return verify_all_anchors(leaf,
                              std::span<const x509::Certificate>(
                                  intermediates.begin(), intermediates.size()));
  }

  /// Convenience for pre-ordered chains as presented in a TLS handshake:
  /// presented[0] is the leaf, the rest are its intermediates.
  Result<Chain> verify_presented(const std::vector<x509::Certificate>& presented) const;

  const VerifyOptions& options() const { return options_; }

 private:
  const TrustAnchors& anchors_;
  VerifyOptions options_;
  VerifyCache* cache_ = nullptr;
};

/// Hash of a DN's DER used by the lookup indexes.
std::uint64_t name_hash(const x509::Name& name);

}  // namespace tangled::pki
