#include "pki/decision_trace.h"

#include "obs/export.h"

namespace tangled::pki {

std::string_view to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kAnchorAttempt: return "anchor_attempt";
    case TraceEventKind::kAnchorAccepted: return "anchor_accepted";
    case TraceEventKind::kIntermediateAttempt: return "intermediate_attempt";
    case TraceEventKind::kIntermediateDescend: return "intermediate_descend";
    case TraceEventKind::kRejectExpired: return "reject_expired";
    case TraceEventKind::kRejectNotCa: return "reject_not_ca";
    case TraceEventKind::kRejectBadSignature: return "reject_bad_signature";
    case TraceEventKind::kRejectPurpose: return "reject_purpose";
    case TraceEventKind::kPathLenBacktrack: return "pathlen_backtrack";
    case TraceEventKind::kDepthLimit: return "depth_limit";
    case TraceEventKind::kLoopGuard: return "loop_guard";
    case TraceEventKind::kCacheHit: return "cache_hit";
    case TraceEventKind::kCacheMiss: return "cache_miss";
    case TraceEventKind::kBudgetExhausted: return "budget_exhausted";
  }
  return "unknown";
}

std::atomic<std::uint64_t>& detail::TraceInstanceCounter::count() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}

void DecisionTrace::add_event(TraceEventKind kind, std::size_t depth,
                              std::string_view subject) {
  if (events.size() >= kMaxEvents) {
    truncated = true;
    return;
  }
  TraceEvent event;
  event.kind = kind;
  event.depth = static_cast<std::uint16_t>(
      depth > 0xffff ? 0xffff : depth);
  event.subject.assign(subject);
  events.push_back(std::move(event));
}

std::string DecisionTrace::to_json() const {
  using obs::json_escape;
  std::string out = "{";
  out += "\"leaf\":\"" + json_escape(leaf_fingerprint) + "\",";
  out += "\"verdict\":\"" + json_escape(verdict) + "\",";
  out += "\"anchors_tried\":" + std::to_string(anchors_tried) + ",";
  out += "\"intermediates_tried\":" + std::to_string(intermediates_tried) +
         ",";
  out += "\"signature_checks\":" + std::to_string(signature_checks) + ",";
  out += "\"cache_hits\":" + std::to_string(cache_hits) + ",";
  out += "\"cache_misses\":" + std::to_string(cache_misses) + ",";
  out += "\"pathlen_backtracks\":" + std::to_string(pathlen_backtracks) + ",";
  out += "\"budget_steps_used\":" + std::to_string(budget_steps_used) + ",";
  out += std::string("\"budget_exhausted\":") +
         (budget_exhausted ? "true" : "false") + ",";
  out += std::string("\"truncated\":") + (truncated ? "true" : "false") + ",";
  out += "\"anchors_found\":[";
  for (std::size_t i = 0; i < anchors_found.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(anchors_found[i]) + "\"";
  }
  out += "],\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out += ",";
    out += "{\"kind\":\"" + std::string(to_string(e.kind)) + "\",";
    out += "\"depth\":" + std::to_string(e.depth) + ",";
    out += "\"subject\":\"" + json_escape(e.subject) + "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace tangled::pki
