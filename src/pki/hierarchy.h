// CA hierarchy generation: self-signed roots, intermediates, and leaf
// (server) certificates, using any SignatureScheme. The root-store catalogs
// and the notary corpus generator are both built on this.
#pragma once

#include <string>
#include <vector>

#include "crypto/signature.h"
#include "util/result.h"
#include "util/rng.h"
#include "x509/builder.h"
#include "x509/certificate.h"

namespace tangled::pki {

/// A CA: its certificate plus the keypair that signs children.
struct CaNode {
  x509::Certificate cert;
  crypto::KeyPair key;
};

/// Issues a self-signed root CA certificate. `legacy_v1` emits a 1990s-era
/// v1 root (no extensions — the form many of Figure 2's VeriSign/Thawte
/// roots still had in 2014).
Result<CaNode> make_root(const crypto::SignatureScheme& scheme,
                         crypto::KeyPair key, const x509::Name& subject,
                         const x509::Validity& validity, std::uint64_t serial,
                         bool legacy_v1 = false);

/// Issues an intermediate CA under `parent`. `path_len` becomes its
/// BasicConstraints pathLenConstraint (nullopt = unbounded).
Result<CaNode> make_intermediate(const crypto::SignatureScheme& scheme,
                                 const CaNode& parent, crypto::KeyPair key,
                                 const x509::Name& subject,
                                 const x509::Validity& validity,
                                 std::uint64_t serial,
                                 std::optional<int> path_len = std::nullopt);

/// Issues a TLS server (leaf) certificate for `dns_name` under `parent`.
Result<x509::Certificate> make_leaf(const crypto::SignatureScheme& scheme,
                                    const CaNode& parent, crypto::KeyPair key,
                                    const std::string& dns_name,
                                    const x509::Validity& validity,
                                    std::uint64_t serial);

/// Convenience Name factories.
x509::Name ca_name(const std::string& organization, const std::string& common_name);
x509::Name server_name(const std::string& dns_name);

/// A ready-made three-tier test hierarchy (1 root, n intermediates, leaves
/// on demand). Used by unit tests and examples.
class CaHierarchy {
 public:
  /// Builds root and intermediates with fresh keys from `rng`.
  /// `sim_keys` selects fast SimSig keys + scheme; otherwise real RSA
  /// (1024-bit) + sha256WithRSAEncryption.
  static Result<CaHierarchy> build(Xoshiro256& rng, const std::string& org,
                                   std::size_t n_intermediates, bool sim_keys);

  const CaNode& root() const { return root_; }
  const std::vector<CaNode>& intermediates() const { return intermediates_; }
  const crypto::SignatureScheme& scheme() const { return *scheme_; }

  /// Issues a leaf under intermediate `i` (or directly under the root when
  /// no intermediates exist).
  Result<x509::Certificate> issue(Xoshiro256& rng, const std::string& dns_name,
                                  std::size_t intermediate_index = 0);

  /// The presented chain for a leaf from `issue` (leaf + intermediate).
  std::vector<x509::Certificate> presented_chain(
      const x509::Certificate& leaf, std::size_t intermediate_index = 0) const;

 private:
  CaNode root_;
  std::vector<CaNode> intermediates_;
  const crypto::SignatureScheme* scheme_ = nullptr;
  bool sim_keys_ = true;
  std::uint64_t next_serial_ = 1000;
};

}  // namespace tangled::pki
