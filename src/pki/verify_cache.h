// Link-signature memoization for the chain verifier.
//
// The §5.3 census validates ~1M leaves against every root store; the same
// (intermediate, issuer) signature links recur under thousands of leaves,
// so their RSA/SimSig outcomes are memoized here and shared across all
// leaves, shards, and worker threads. The cache is invalidation-free by
// construction: an entry is keyed by cryptographic digests of the exact
// child bytes and issuer key, the outcome of check_signature_from is a pure
// function of those inputs, and certificates are immutable after parse —
// so an entry can never go stale, only be evicted for capacity.
//
// Determinism: a hit returns a stored copy of the exact Result the first
// computation produced (same code, same message), so verification results
// are bit-identical with the cache present, absent, or racing across
// threads.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "util/result.h"
#include "util/striped_cache.h"
#include "x509/certificate.h"

namespace tangled::pki {

/// Cache key: the child certificate's SHA-256 fingerprint and the issuer
/// key's SHA-256 SPKI digest, stored in full. Earlier revisions truncated
/// each digest to 128 bits; an engineered half-digest collision could then
/// serve one link's verdict for a different link, so the stored key now
/// carries all 512 bits — a false hit requires a full SHA-256 collision.
struct LinkKey {
  std::array<std::uint64_t, 4> child{};   // full fingerprint, LE words
  std::array<std::uint64_t, 4> issuer{};  // full SPKI digest, LE words

  friend bool operator==(const LinkKey&, const LinkKey&) = default;
};

struct LinkKeyHash {
  std::size_t operator()(const LinkKey& k) const {
    // The components are already uniform SHA-256 words; fold them.
    std::uint64_t h = k.child[0] ^ (k.child[1] * 0x9e3779b97f4a7c15ULL);
    h ^= k.child[2] * 0xc2b2ae3d27d4eb4fULL;
    h ^= k.child[3];
    h ^= k.issuer[0] * 0xff51afd7ed558ccdULL;
    h ^= k.issuer[1] ^ (k.issuer[2] * 0x9e3779b97f4a7c15ULL);
    h ^= k.issuer[3];
    return static_cast<std::size_t>(h);
  }
};

/// Key of the dense-id fast path: (child fingerprint id << 32) | issuer
/// SPKI id. Both ids are interned bijections of the full digests, so this
/// 64-bit key is exactly as collision-free as the wide key — the interner
/// already did the byte comparison once at parse time.
struct DenseLinkKeyHash {
  std::size_t operator()(std::uint64_t k) const {
    // splitmix64 finalizer: the raw key is two small counters.
    k ^= k >> 30;
    k *= 0xbf58476d1ce4e5b9ULL;
    k ^= k >> 27;
    k *= 0x94d049bb133111ebULL;
    k ^= k >> 31;
    return static_cast<std::size_t>(k);
  }
};

/// Thread-safe, sharded memo of check_signature_from outcomes. One instance
/// is shared by every ChainVerifier a census run creates; all methods are
/// safe to call concurrently.
class VerifyCache {
 public:
  static constexpr std::size_t kDefaultMaxEntries = 1 << 22;  // ~4M links

  explicit VerifyCache(std::size_t max_entries = kDefaultMaxEntries);

  /// The cached or freshly computed outcome of
  /// child.check_signature_from(issuer.public_key()).
  Result<void> check_link_signature(const x509::Certificate& child,
                                    const x509::Certificate& issuer) {
    return check_link_signature(child, issuer, nullptr);
  }
  /// Same, reporting whether the outcome was served from memory. The flag
  /// feeds per-link cache-hit events in pki::DecisionTrace audit records;
  /// it changes nothing about the result.
  Result<void> check_link_signature(const x509::Certificate& child,
                                    const x509::Certificate& issuer,
                                    bool* cache_hit);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;
  /// hits / (hits + misses); 0 when never consulted.
  double hit_rate() const;

  // --- Snapshot codec (recover::snapshot) ---------------------------------
  /// Serializes every memoized link outcome for the snapshot's optional
  /// warm-cache section. Purely an optimization payload: dropping it (or a
  /// corrupt copy of it) costs recomputation on resume, never correctness.
  Bytes export_state() const;
  /// Re-inserts exported entries (first writer wins; the capacity bound
  /// still applies). The whole buffer is validated before the first insert,
  /// so a corrupt payload changes nothing.
  Result<void> import_state(ByteView data);

 private:
  /// A stored Result<void>: success, or the error's code + message.
  struct Outcome {
    bool ok = false;
    Errc code = Errc::kVerifyFailed;
    std::string message;
  };

  Result<void> probe_dense(const x509::Certificate& child,
                           const x509::Certificate& issuer, bool* cache_hit);
  Result<void> probe_wide(const x509::Certificate& child,
                          const x509::Certificate& issuer, bool* cache_hit);

  /// Latched at construction from TANGLED_DENSE_IDS: true routes probes
  /// through the 64-bit id-pair cache, false through the wide digest key.
  /// The two modes memoize the same pure function under bijective keys, so
  /// results are identical either way; only probe cost differs. The export
  /// codec always writes full digests, so snapshots are mode-independent.
  const bool dense_;
  util::StripedCache<LinkKey, Outcome, LinkKeyHash> cache_;
  util::StripedCache<std::uint64_t, Outcome, DenseLinkKeyHash> dense_cache_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Runtime kill switch: TANGLED_VERIFY_CACHE unset/"1"/"on"/"true" enables
/// the cache, "0"/"off"/"false" disables it (the census then verifies every
/// link from scratch — the cache-equivalence baseline). Anything else is a
/// hard error, matching the strict TANGLED_THREADS / TANGLED_BENCH_CERTS
/// parsing contract.
bool verify_cache_env_enabled();

}  // namespace tangled::pki
