// Link-signature memoization for the chain verifier.
//
// The §5.3 census validates ~1M leaves against every root store; the same
// (intermediate, issuer) signature links recur under thousands of leaves,
// so their RSA/SimSig outcomes are memoized here and shared across all
// leaves, shards, and worker threads. The cache is invalidation-free by
// construction: an entry is keyed by cryptographic digests of the exact
// child bytes and issuer key, the outcome of check_signature_from is a pure
// function of those inputs, and certificates are immutable after parse —
// so an entry can never go stale, only be evicted for capacity.
//
// Determinism: a hit returns a stored copy of the exact Result the first
// computation produced (same code, same message), so verification results
// are bit-identical with the cache present, absent, or racing across
// threads.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/result.h"
#include "util/striped_cache.h"
#include "x509/certificate.h"

namespace tangled::pki {

/// Cache key: the child certificate's SHA-256 fingerprint and the issuer
/// key's SHA-256 SPKI digest, each truncated to 128 bits. Unlike the bare
/// fnv1a64 handles, a collision here requires a 128-bit birthday on
/// SHA-256 halves (~2^-64 at a billion entries), so no byte-compare on hit
/// is needed.
struct LinkKey {
  std::uint64_t child_lo = 0, child_hi = 0;
  std::uint64_t issuer_lo = 0, issuer_hi = 0;

  friend bool operator==(const LinkKey&, const LinkKey&) = default;
};

struct LinkKeyHash {
  std::size_t operator()(const LinkKey& k) const {
    // The components are already uniform SHA-256 words; fold them.
    std::uint64_t h = k.child_lo ^ (k.child_hi * 0x9e3779b97f4a7c15ULL);
    h ^= k.issuer_lo * 0xc2b2ae3d27d4eb4fULL;
    h ^= k.issuer_hi;
    return static_cast<std::size_t>(h);
  }
};

/// Thread-safe, sharded memo of check_signature_from outcomes. One instance
/// is shared by every ChainVerifier a census run creates; all methods are
/// safe to call concurrently.
class VerifyCache {
 public:
  static constexpr std::size_t kDefaultMaxEntries = 1 << 22;  // ~4M links

  explicit VerifyCache(std::size_t max_entries = kDefaultMaxEntries);

  /// The cached or freshly computed outcome of
  /// child.check_signature_from(issuer.public_key()).
  Result<void> check_link_signature(const x509::Certificate& child,
                                    const x509::Certificate& issuer) {
    return check_link_signature(child, issuer, nullptr);
  }
  /// Same, reporting whether the outcome was served from memory. The flag
  /// feeds per-link cache-hit events in pki::DecisionTrace audit records;
  /// it changes nothing about the result.
  Result<void> check_link_signature(const x509::Certificate& child,
                                    const x509::Certificate& issuer,
                                    bool* cache_hit);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;
  /// hits / (hits + misses); 0 when never consulted.
  double hit_rate() const;

  // --- Snapshot codec (recover::snapshot) ---------------------------------
  /// Serializes every memoized link outcome for the snapshot's optional
  /// warm-cache section. Purely an optimization payload: dropping it (or a
  /// corrupt copy of it) costs recomputation on resume, never correctness.
  Bytes export_state() const;
  /// Re-inserts exported entries (first writer wins; the capacity bound
  /// still applies). The whole buffer is validated before the first insert,
  /// so a corrupt payload changes nothing.
  Result<void> import_state(ByteView data);

 private:
  /// A stored Result<void>: success, or the error's code + message.
  struct Outcome {
    bool ok = false;
    Errc code = Errc::kVerifyFailed;
    std::string message;
  };

  util::StripedCache<LinkKey, Outcome, LinkKeyHash> cache_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Runtime kill switch: TANGLED_VERIFY_CACHE unset/"1"/"on"/"true" enables
/// the cache, "0"/"off"/"false" disables it (the census then verifies every
/// link from scratch — the cache-equivalence baseline). Anything else is a
/// hard error, matching the strict TANGLED_THREADS / TANGLED_BENCH_CERTS
/// parsing contract.
bool verify_cache_env_enabled();

}  // namespace tangled::pki
