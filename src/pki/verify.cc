#include "pki/verify.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <string>
#include <string_view>

#include "obs/obs.h"
#include "pki/decision_trace.h"
#include "pki/verify_cache.h"
#include "util/features.h"
#include "x509/pem.h"

namespace tangled::pki {

namespace {

/// Byte-identity of two parsed certificates. dense_id() is an interned
/// bijection of the SHA-256 fingerprint (itself a digest of the full DER),
/// so one 32-bit compare replaces the DER byte compare when
/// TANGLED_DENSE_IDS is on; the answer is identical in either mode.
bool same_cert(const x509::Certificate& a, const x509::Certificate& b) {
  if (util::dense_ids_enabled()) return a.dense_id() == b.dense_id();
  return a.der() == b.der();
}

}  // namespace

std::string Chain::to_pem_bundle() const {
  std::string out;
  for (const auto& cert : certificates) out += x509::to_pem(cert);
  return out;
}

std::uint64_t name_hash(const x509::Name& name) {
  return fnv1a64(name.to_der());
}

// ---------------------------------------------------------------------------
// TrustAnchors
// ---------------------------------------------------------------------------

TrustAnchors::TrustAnchors(const std::vector<x509::Certificate>& roots) {
  for (const auto& root : roots) add(root);
}

void TrustAnchors::add(const x509::Certificate& root, TrustFlags flags) {
  const std::size_t idx = anchors_.size();
  anchors_.push_back(root);
  flags_.push_back(flags);
  subject_index_.emplace(root.subject_name_hash(), idx);
  if (const auto ski = root.extensions().subject_key_id(); ski.has_value()) {
    key_id_index_.emplace(fnv1a64(*ski), idx);
  }
}

bool TrustAnchors::trusted_for(const x509::Certificate& anchor,
                               TrustPurpose purpose) const {
  const auto [begin, end] =
      subject_index_.equal_range(anchor.subject_name_hash());
  for (auto it = begin; it != end; ++it) {
    if (same_cert(anchors_[it->second], anchor)) {
      return (flags_[it->second] & trust_flag(purpose)) != 0;
    }
  }
  return false;
}

std::vector<const x509::Certificate*> TrustAnchors::by_subject(
    const x509::Name& issuer_name) const {
  return by_subject(issuer_name, name_hash(issuer_name));
}

std::vector<const x509::Certificate*> TrustAnchors::by_subject(
    const x509::Name& issuer_name, std::uint64_t issuer_name_hash) const {
  std::vector<const x509::Certificate*> out;
  const Bytes issuer_der = issuer_name.to_der();
  for_each_by_subject(issuer_der, issuer_name_hash,
                      [&out](const x509::Certificate& cand) {
                        out.push_back(&cand);
                        return true;
                      });
  return out;
}

std::vector<const x509::Certificate*> TrustAnchors::by_key_id(
    ByteView key_id) const {
  std::vector<const x509::Certificate*> out;
  const auto [begin, end] = key_id_index_.equal_range(fnv1a64(key_id));
  for (auto it = begin; it != end; ++it) {
    const x509::Certificate& cand = anchors_[it->second];
    const auto ski = cand.extensions().subject_key_id();
    if (ski.has_value() && bytes_equal(*ski, key_id)) out.push_back(&cand);
  }
  return out;
}

bool TrustAnchors::contains(const x509::Certificate& cert) const {
  const auto [begin, end] =
      subject_index_.equal_range(cert.subject_name_hash());
  for (auto it = begin; it != end; ++it) {
    if (same_cert(anchors_[it->second], cert)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// ChainVerifier
// ---------------------------------------------------------------------------

namespace {

/// Deferred "last failure" for the search hot path. A rejected candidate is
/// recorded as (kind, certificate) — no string is built — and rendered into
/// an Error only when the whole search fails. Successful verifies never pay
/// for DN rendering; the rendered messages are byte-identical to what the
/// checks used to construct eagerly. The recorded certificate is a borrowed
/// pointer into the anchors/intermediates, alive for the whole verify call.
class PendingError {
 public:
  enum class Kind : std::uint8_t {
    kNone,             // nothing failed yet → "no path" on render
    kDepth,            // max_depth exceeded
    kOutsideValidity,  // candidate outside the validity window
    kNotCa,            // candidate lacks the CA bit
    kPathLen,          // pathLenConstraint violated at `cert`
    kPurpose,          // anchor not trusted for the requested purpose
    kOther,            // pre-rendered Error (signature mismatch, cache)
  };

  void set(Kind kind, const x509::Certificate* cert) {
    kind_ = kind;
    cert_ = cert;
  }
  void set(Error error) {
    kind_ = Kind::kOther;
    error_ = std::move(error);
  }

  Error render(const x509::Certificate& leaf) const {
    switch (kind_) {
      case Kind::kNone:
        return not_found_error("no path to a trust anchor for issuer " +
                               leaf.issuer().to_string());
      case Kind::kDepth:
        return verify_error("maximum chain depth exceeded");
      case Kind::kOutsideValidity:
        return expired_error("certificate outside validity window: " +
                             cert_->subject().to_string());
      case Kind::kNotCa:
        return verify_error("issuer is not a CA: " +
                            cert_->subject().to_string());
      case Kind::kPathLen:
        return verify_error("pathLenConstraint violated at " +
                            cert_->subject().to_string());
      case Kind::kPurpose:
        return verify_error("anchor not trusted for requested purpose: " +
                            cert_->subject().to_string());
      case Kind::kOther:
        return error_;
    }
    return error_;
  }

 private:
  Kind kind_ = Kind::kNone;
  const x509::Certificate* cert_ = nullptr;
  Error error_;
};

/// Message-free per-certificate checks (validity window, CA bit) for the
/// candidate loops; the caller records a failure into a PendingError.
PendingError::Kind check_cert_kind(const x509::Certificate& cert,
                                   bool must_be_ca,
                                   const VerifyOptions& options,
                                   std::int64_t at_unix) {
  if (options.check_validity && !cert.valid_at_unix(at_unix)) {
    return PendingError::Kind::kOutsideValidity;
  }
  if (options.require_ca_bit && must_be_ca && !cert.is_ca()) {
    return PendingError::Kind::kNotCa;
  }
  return PendingError::Kind::kNone;
}

/// Eager-message variant for cold paths (leaf_precheck).
Result<void> check_cert(const x509::Certificate& cert, bool must_be_ca,
                        const VerifyOptions& options) {
  PendingError pending;
  const auto kind =
      check_cert_kind(cert, must_be_ca, options, options.at.to_unix());
  if (kind == PendingError::Kind::kNone) return {};
  pending.set(kind, &cert);
  return pending.render(cert);
}

/// Per-call statistics accumulator. Lives on the verify call's stack (via
/// SearchContext), never in the verifier, so concurrent const verifies
/// from different threads never share mutable state.
struct SearchStats {
  std::size_t anchors_tried = 0;
  std::size_t intermediates_tried = 0;
  std::size_t signature_checks = 0;
};

/// The search path as borrowed pointers (leaf first). Storage is inline up
/// to the default max_depth, heap only beyond it, so a census verify call
/// allocates nothing for its path; certificates are deep-copied once, into
/// the returned Chain, when a path actually wins.
class CertPath {
 public:
  std::size_t size() const { return size_; }
  const x509::Certificate* operator[](std::size_t i) const {
    return i < kInline ? inline_[i] : overflow_[i - kInline];
  }
  void push_back(const x509::Certificate* cert) {
    if (size_ < kInline) inline_[size_] = cert;
    else overflow_.push_back(cert);
    ++size_;
  }
  void pop_back() {
    if (size_ > kInline) overflow_.pop_back();
    --size_;
  }

 private:
  static constexpr std::size_t kInline = 8;  // covers the default max_depth
  std::array<const x509::Certificate*, kInline> inline_{};
  std::vector<const x509::Certificate*> overflow_;
  std::size_t size_ = 0;
};

/// A stack-disciplined set of certificate identities with linear lookup.
/// The search path is at most max_depth (8) deep and anchor sets per leaf
/// are tiny, so inline scanned storage beats an unordered_set's per-call
/// allocations on the census hot path. Keys are interned dense ids when
/// TANGLED_DENSE_IDS is on (one 32-bit compare per probe), otherwise views
/// into interned fingerprint_hex strings, stable for the certificates'
/// lifetime. Both key kinds are bijections of the full fingerprint, so
/// membership answers are identical in either mode.
class SmallIdSet {
 public:
  SmallIdSet() : dense_(util::dense_ids_enabled()) {}

  bool contains(const x509::Certificate& cert) const {
    if (dense_) {
      const std::uint32_t id = cert.dense_id();
      for (std::size_t i = 0; i < size_; ++i) {
        if (id_at(i) == id) return true;
      }
      return false;
    }
    const std::string_view id = cert.fingerprint_hex();
    for (std::size_t i = 0; i < size_; ++i) {
      if (hex_at(i) == id) return true;
    }
    return false;
  }
  /// Returns false if already present.
  bool insert(const x509::Certificate& cert) {
    if (contains(cert)) return false;
    if (dense_) {
      if (size_ < kInline) inline_ids_[size_] = cert.dense_id();
      else overflow_ids_.push_back(cert.dense_id());
    } else {
      if (size_ < kInline) inline_hex_[size_] = cert.fingerprint_hex();
      else overflow_hex_.push_back(cert.fingerprint_hex());
    }
    ++size_;
    return true;
  }
  void pop() {
    if (size_ > kInline) {
      if (dense_) overflow_ids_.pop_back();
      else overflow_hex_.pop_back();
    }
    --size_;
  }

 private:
  std::uint32_t id_at(std::size_t i) const {
    return i < kInline ? inline_ids_[i] : overflow_ids_[i - kInline];
  }
  std::string_view hex_at(std::size_t i) const {
    return i < kInline ? inline_hex_[i] : overflow_hex_[i - kInline];
  }
  static constexpr std::size_t kInline = 8;
  const bool dense_;
  std::array<std::uint32_t, kInline> inline_ids_{};
  std::array<std::string_view, kInline> inline_hex_;
  std::vector<std::uint32_t> overflow_ids_;
  std::vector<std::string_view> overflow_hex_;
  std::size_t size_ = 0;
};

struct SearchContext {
  const TrustAnchors& anchors;
  const VerifyOptions& options;
  /// Shared link-signature memo; nullptr verifies every link directly.
  VerifyCache* cache = nullptr;
  /// The leaf under verification. Leaf→issuer links bypass the cache: each
  /// leaf's signature is checked exactly once per census, so caching it
  /// would only fill the table with never-hit entries.
  const x509::Certificate* leaf = nullptr;
  std::span<const x509::Certificate> intermediates;
  /// Subject-hash index over `intermediates`, built only when the set is
  /// big enough to repay the allocation; typical presented chains hold a
  /// handful of certs and are cheaper to scan.
  std::unordered_multimap<std::uint64_t, const x509::Certificate*> inter_index;
  static constexpr std::size_t kIndexThreshold = 8;

  // Search statistics, observed into the obs registry after the search.
  mutable SearchStats stats;

  /// Opt-in audit record. nullptr (the default, and the only mode the
  /// census hot path uses) records nothing and costs one pointer test per
  /// emission site; non-null appends structured events as the search runs.
  /// Observation only — the search's decisions never consult it.
  DecisionTrace* trace = nullptr;

  /// options.at converted once per call; every candidate validity check
  /// compares integers instead of redoing calendar math.
  std::int64_t at_unix = 0;

  /// ResourceBudget accounting. Mutable for the same reason as `stats`: the
  /// context is threaded const through the recursive search, and spending is
  /// per-call bookkeeping. Steps are spent once per candidate *before* any
  /// check runs, so the count depends only on the candidate enumeration —
  /// identical with and without a verify cache, and across serial/parallel
  /// census runs.
  mutable std::size_t budget_steps_used = 0;
  mutable bool budget_exhausted = false;
  std::size_t budget_step_limit = 0;  // 0 = unlimited
  std::chrono::steady_clock::time_point budget_deadline{};  // epoch = none
  /// min(options.max_depth, budget.max_depth when set).
  std::size_t effective_max_depth = 0;

  void prepare() {
    at_unix = options.at.to_unix();
    const ResourceBudget& budget = options.budget;
    budget_step_limit = budget.max_search_steps;
    effective_max_depth = options.max_depth;
    if (budget.max_depth != 0 && budget.max_depth < effective_max_depth) {
      effective_max_depth = budget.max_depth;
    }
    if (budget.deadline_us > 0) {
      budget_deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(budget.deadline_us);
    }
    if (intermediates.size() < kIndexThreshold) return;
    inter_index.reserve(intermediates.size());
    for (const auto& inter : intermediates) {
      inter_index.emplace(inter.subject_name_hash(), &inter);
    }
  }

  /// Calls `fn` on each intermediate whose subject matches `tip`'s issuer,
  /// in supplied order; `fn` returns false to stop. Allocation-free.
  template <typename Fn>
  void for_each_intermediate(const x509::Certificate& tip, Fn&& fn) const {
    if (inter_index.empty()) {
      for (const auto& inter : intermediates) {
        if (inter.subject_name_hash() == tip.issuer_name_hash() &&
            bytes_equal(inter.subject_name_der(), tip.issuer_name_der()) &&
            !fn(inter)) {
          return;
        }
      }
      return;
    }
    const auto [begin, end] = inter_index.equal_range(tip.issuer_name_hash());
    for (auto it = begin; it != end; ++it) {
      if (bytes_equal(it->second->subject_name_der(), tip.issuer_name_der()) &&
          !fn(*it->second)) {
        return;
      }
    }
  }

  /// Spends one search step. Returns false once the budget is gone — the
  /// caller stops enumerating candidates, the recursion unwinds (every
  /// deeper loop's first spend_step also fails), and the search terminates
  /// promptly instead of stalling on a pathological cross-sign mesh. The
  /// wall-clock deadline is only consulted every 64 steps so the common
  /// path stays a compare-and-increment.
  bool spend_step() const {
    if (budget_exhausted) return false;
    ++budget_steps_used;
    if (budget_step_limit != 0 && budget_steps_used > budget_step_limit) {
      budget_exhausted = true;
      return false;
    }
    if (budget_deadline.time_since_epoch().count() != 0 &&
        (budget_steps_used & 63u) == 0 &&
        std::chrono::steady_clock::now() >= budget_deadline) {
      budget_exhausted = true;
      return false;
    }
    return true;
  }
};

Result<void> check_link(const x509::Certificate& child,
                        const x509::Certificate& issuer,
                        const SearchContext& ctx) {
  if (!ctx.options.check_signatures) return {};
  ++ctx.stats.signature_checks;
  if (ctx.cache != nullptr && &child != ctx.leaf) {
    if (ctx.trace == nullptr) {
      return ctx.cache->check_link_signature(child, issuer);
    }
    bool cache_hit = false;
    auto result = ctx.cache->check_link_signature(child, issuer, &cache_hit);
    if (cache_hit) {
      ++ctx.trace->cache_hits;
      ctx.trace->add_event(TraceEventKind::kCacheHit, 0,
                           issuer.subject().to_string());
    } else {
      ++ctx.trace->cache_misses;
      ctx.trace->add_event(TraceEventKind::kCacheMiss, 0,
                           issuer.subject().to_string());
    }
    return result;
  }
  // The certificate overload reuses the issuer's interned SimSig hash
  // prefix (when TANGLED_BATCH_HASH is on), so leaf links and cache-off
  // runs skip the per-check modulus re-serialization too.
  return child.check_signature_from(issuer);
}

/// Trace kind for a check_cert_kind rejection (validity window / CA bit).
TraceEventKind trace_reject_kind(PendingError::Kind kind) {
  return kind == PendingError::Kind::kOutsideValidity
             ? TraceEventKind::kRejectExpired
             : TraceEventKind::kRejectNotCa;
}

/// RFC 5280 §6.1.4: a CA's pathLenConstraint bounds how many non-leaf
/// certificates may follow it toward the leaf. Chain order: leaf first,
/// anchor last; the CA at index i has i-1 intermediates below it. Returns
/// the first violating certificate, or nullptr when the path is fine.
const x509::Certificate* path_len_violation(const CertPath& path) {
  for (std::size_t i = 1; i < path.size(); ++i) {
    const auto path_len = path[i]->path_len_constraint();
    if (!path_len.has_value()) continue;
    const std::size_t below = i - 1;  // intermediates between it and leaf
    if (below > static_cast<std::size_t>(*path_len)) return path[i];
  }
  return nullptr;
}

/// Deep-copies a winning pointer path into an owning Chain.
Chain materialize(const CertPath& path) {
  Chain chain;
  chain.certificates.reserve(path.size());
  for (std::size_t i = 0; i < path.size(); ++i) {
    chain.certificates.push_back(*path[i]);
  }
  return chain;
}

/// Depth-first path extension. `path` holds certs from leaf to current tip.
bool extend(const x509::Certificate& tip, CertPath& path, SmallIdSet& on_path,
            const SearchContext& ctx, PendingError& last_error) {
  if (path.size() >= ctx.effective_max_depth) {
    // A budget-imposed cap below the policy max_depth is a truncation of
    // the search, not a policy verdict — flag it as exhaustion.
    if (ctx.effective_max_depth < ctx.options.max_depth) {
      ctx.budget_exhausted = true;
    }
    last_error.set(PendingError::Kind::kDepth, nullptr);
    if (ctx.trace != nullptr) {
      ctx.trace->add_event(TraceEventKind::kDepthLimit, path.size(), {});
    }
    return false;
  }

  // Scoped trust (§8 recommendation): an anchor terminates the chain only
  // when it is trusted for the requested purpose.
  auto purpose_ok = [&ctx, &path, &last_error](const x509::Certificate& anchor) {
    if (!ctx.options.purpose.has_value()) return true;
    if (ctx.anchors.trusted_for(anchor, *ctx.options.purpose)) return true;
    last_error.set(PendingError::Kind::kPurpose, &anchor);
    if (ctx.trace != nullptr) {
      ctx.trace->add_event(TraceEventKind::kRejectPurpose, path.size(),
                           anchor.subject().to_string());
    }
    return false;
  };

  // pathLenConstraint is checked at every candidate termination, not after
  // the whole search: a violating path is rejected here and the search
  // backtracks, so a re-issued anchor or a different cross-signing route
  // can still succeed — matching what verify_all_anchors() concludes.
  auto path_ok = [&ctx, &path, &last_error]() {
    if (!ctx.options.check_path_length) return true;
    if (const x509::Certificate* bad = path_len_violation(path)) {
      last_error.set(PendingError::Kind::kPathLen, bad);
      if (ctx.trace != nullptr) {
        ++ctx.trace->pathlen_backtracks;
        ctx.trace->add_event(TraceEventKind::kPathLenBacktrack, path.size(),
                             bad->subject().to_string());
      }
      return false;
    }
    return true;
  };

  // A self-signed tip that is itself an anchor terminates immediately
  // (a root presented as its own chain).
  if (tip.is_self_issued() && ctx.anchors.contains(tip) && purpose_ok(tip) &&
      path_ok()) {
    if (ctx.trace != nullptr) {
      ctx.trace->add_event(TraceEventKind::kAnchorAccepted, path.size(),
                           tip.subject().to_string());
      ctx.trace->anchors_found.push_back(tip.fingerprint_hex());
    }
    return true;
  }

  // Anchors first: prefer terminating the chain over growing it.
  bool found = false;
  ctx.anchors.for_each_by_subject(
      tip.issuer_name_der(), tip.issuer_name_hash(),
      [&](const x509::Certificate& anchor) {
        if (!ctx.spend_step()) return false;
        ++ctx.stats.anchors_tried;
        if (same_cert(anchor, tip)) return true;
        if (ctx.trace != nullptr) {
          ctx.trace->add_event(TraceEventKind::kAnchorAttempt, path.size(),
                               anchor.subject().to_string());
        }
        if (!purpose_ok(anchor)) return true;
        if (const auto kind =
                check_cert_kind(anchor, /*must_be_ca=*/true, ctx.options, ctx.at_unix);
            kind != PendingError::Kind::kNone) {
          last_error.set(kind, &anchor);
          if (ctx.trace != nullptr) {
            ctx.trace->add_event(trace_reject_kind(kind), path.size(),
                                 anchor.subject().to_string());
          }
          return true;
        }
        if (auto ok = check_link(tip, anchor, ctx); !ok.ok()) {
          last_error.set(ok.error());
          if (ctx.trace != nullptr) {
            ctx.trace->add_event(TraceEventKind::kRejectBadSignature,
                                 path.size(), anchor.subject().to_string());
          }
          return true;
        }
        path.push_back(&anchor);
        if (path_ok()) {
          if (ctx.trace != nullptr) {
            ctx.trace->add_event(TraceEventKind::kAnchorAccepted, path.size(),
                                 anchor.subject().to_string());
            ctx.trace->anchors_found.push_back(anchor.fingerprint_hex());
          }
          found = true;
          return false;
        }
        path.pop_back();  // pathLen violated: try the next anchor or route
        return true;
      });
  if (found) return true;

  ctx.for_each_intermediate(tip, [&](const x509::Certificate& inter) {
    if (!ctx.spend_step()) return false;
    ++ctx.stats.intermediates_tried;
    if (ctx.trace != nullptr) {
      ctx.trace->add_event(TraceEventKind::kIntermediateAttempt, path.size(),
                           inter.subject().to_string());
    }
    // Loop guard keyed on the full SHA-256 fingerprint (via SmallIdSet's
    // interned key), not a 64-bit DER hash: an fnv1a64 collision between
    // two distinct certs on the same path would silently prune a valid
    // route.
    if (on_path.contains(inter)) {
      if (ctx.trace != nullptr) {
        ctx.trace->add_event(TraceEventKind::kLoopGuard, path.size(),
                             inter.subject().to_string());
      }
      return true;  // loop guard
    }
    if (same_cert(inter, tip)) return true;
    if (const auto kind =
            check_cert_kind(inter, /*must_be_ca=*/true, ctx.options, ctx.at_unix);
        kind != PendingError::Kind::kNone) {
      last_error.set(kind, &inter);
      if (ctx.trace != nullptr) {
        ctx.trace->add_event(trace_reject_kind(kind), path.size(),
                             inter.subject().to_string());
      }
      return true;
    }
    if (auto ok = check_link(tip, inter, ctx); !ok.ok()) {
      last_error.set(ok.error());
      if (ctx.trace != nullptr) {
        ctx.trace->add_event(TraceEventKind::kRejectBadSignature, path.size(),
                             inter.subject().to_string());
      }
      return true;
    }
    path.push_back(&inter);
    on_path.insert(inter);
    if (ctx.trace != nullptr) {
      ctx.trace->add_event(TraceEventKind::kIntermediateDescend, path.size(),
                           inter.subject().to_string());
    }
    if (extend(inter, path, on_path, ctx, last_error)) {
      found = true;
      return false;
    }
    on_path.pop();
    path.pop_back();
    return true;
  });
  return found;
}

}  // namespace

namespace {

/// The ExtendedKeyUsage OID a TrustPurpose corresponds to.
const asn1::Oid& eku_oid_for(TrustPurpose purpose) {
  switch (purpose) {
    case TrustPurpose::kServerAuth: return asn1::oids::eku_server_auth();
    case TrustPurpose::kClientAuth: return asn1::oids::eku_client_auth();
    case TrustPurpose::kCodeSigning: return asn1::oids::eku_code_signing();
    case TrustPurpose::kEmail: return asn1::oids::eku_email_protection();
    case TrustPurpose::kTimestamping: return asn1::oids::eku_time_stamping();
  }
  return asn1::oids::eku_server_auth();
}

/// Leaf-level checks shared by verify() and verify_all_anchors(): validity
/// window, and EKU admissibility when a trust purpose is requested.
Result<void> leaf_precheck(const x509::Certificate& leaf,
                           const VerifyOptions& options) {
  if (auto ok = check_cert(leaf, /*must_be_ca=*/false, options); !ok.ok()) {
    return ok;
  }
  if (options.purpose.has_value()) {
    const auto eku = leaf.extensions().extended_key_usage();
    if (eku.has_value() && !eku->allows(eku_oid_for(*options.purpose))) {
      return verify_error("leaf ExtendedKeyUsage forbids requested purpose");
    }
  }
  return {};
}

/// Exhaustive depth-first search: where `extend` stops at the first
/// terminating anchor, this visits every extension and records every
/// distinct anchor whose full path passes the policy checks. An invalid
/// path never disqualifies its anchor — another path may still reach it.
void collect_anchors(const x509::Certificate& tip, CertPath& path,
                     SmallIdSet& on_path, const SearchContext& ctx,
                     AnchorSurvey& survey, SmallIdSet& found_anchors,
                     PendingError& last_error) {
  if (path.size() >= ctx.effective_max_depth) {
    if (ctx.effective_max_depth < ctx.options.max_depth) {
      ctx.budget_exhausted = true;
    }
    last_error.set(PendingError::Kind::kDepth, nullptr);
    if (ctx.trace != nullptr) {
      ctx.trace->add_event(TraceEventKind::kDepthLimit, path.size(), {});
    }
    return;
  }

  auto purpose_ok = [&ctx, &path, &last_error](const x509::Certificate& anchor) {
    if (!ctx.options.purpose.has_value()) return true;
    if (ctx.anchors.trusted_for(anchor, *ctx.options.purpose)) return true;
    last_error.set(PendingError::Kind::kPurpose, &anchor);
    if (ctx.trace != nullptr) {
      ctx.trace->add_event(TraceEventKind::kRejectPurpose, path.size(),
                           anchor.subject().to_string());
    }
    return false;
  };

  // `path` must currently end with `anchor`'s bytes; credits the anchor if
  // the whole path passes the pathLenConstraint policy. Anchors are deduped
  // by full SHA-256 fingerprint — a re-issued root with distinct DER must
  // be credited distinctly even under a 64-bit hash collision.
  auto record = [&](const x509::Certificate& anchor) {
    if (ctx.options.check_path_length) {
      if (const x509::Certificate* bad = path_len_violation(path)) {
        last_error.set(PendingError::Kind::kPathLen, bad);
        if (ctx.trace != nullptr) {
          ++ctx.trace->pathlen_backtracks;
          ctx.trace->add_event(TraceEventKind::kPathLenBacktrack, path.size(),
                               bad->subject().to_string());
        }
        return;
      }
    }
    if (found_anchors.insert(anchor)) {
      survey.anchors.push_back(&anchor);
      if (ctx.trace != nullptr) {
        ctx.trace->add_event(TraceEventKind::kAnchorAccepted, path.size(),
                             anchor.subject().to_string());
        ctx.trace->anchors_found.push_back(anchor.fingerprint_hex());
      }
    }
    if (ctx.options.collect_chain && survey.chain.certificates.empty()) {
      survey.chain = materialize(path);
    }
  };

  // A self-signed tip that is byte-identical to an anchor terminates here;
  // record the *member* certificate so the pointer outlives the call.
  if (tip.is_self_issued()) {
    ctx.anchors.for_each_by_subject(
        tip.subject_name_der(), tip.subject_name_hash(),
        [&](const x509::Certificate& member) {
          if (same_cert(member, tip) && purpose_ok(member)) {
            record(member);
            return false;
          }
          return true;
        });
  }

  ctx.anchors.for_each_by_subject(
      tip.issuer_name_der(), tip.issuer_name_hash(),
      [&](const x509::Certificate& anchor) {
        if (!ctx.spend_step()) return false;
        ++ctx.stats.anchors_tried;
        if (same_cert(anchor, tip)) return true;
        if (ctx.trace != nullptr) {
          ctx.trace->add_event(TraceEventKind::kAnchorAttempt, path.size(),
                               anchor.subject().to_string());
        }
        if (!purpose_ok(anchor)) return true;
        if (const auto kind =
                check_cert_kind(anchor, /*must_be_ca=*/true, ctx.options, ctx.at_unix);
            kind != PendingError::Kind::kNone) {
          last_error.set(kind, &anchor);
          if (ctx.trace != nullptr) {
            ctx.trace->add_event(trace_reject_kind(kind), path.size(),
                                 anchor.subject().to_string());
          }
          return true;
        }
        if (auto ok = check_link(tip, anchor, ctx); !ok.ok()) {
          last_error.set(ok.error());
          if (ctx.trace != nullptr) {
            ctx.trace->add_event(TraceEventKind::kRejectBadSignature,
                                 path.size(), anchor.subject().to_string());
          }
          return true;
        }
        path.push_back(&anchor);
        record(anchor);
        path.pop_back();
        return true;
      });

  ctx.for_each_intermediate(tip, [&](const x509::Certificate& inter) {
    if (!ctx.spend_step()) return false;
    ++ctx.stats.intermediates_tried;
    if (ctx.trace != nullptr) {
      ctx.trace->add_event(TraceEventKind::kIntermediateAttempt, path.size(),
                           inter.subject().to_string());
    }
    if (on_path.contains(inter)) {
      if (ctx.trace != nullptr) {
        ctx.trace->add_event(TraceEventKind::kLoopGuard, path.size(),
                             inter.subject().to_string());
      }
      return true;  // loop guard (full fingerprint)
    }
    if (same_cert(inter, tip)) return true;
    if (const auto kind =
            check_cert_kind(inter, /*must_be_ca=*/true, ctx.options, ctx.at_unix);
        kind != PendingError::Kind::kNone) {
      last_error.set(kind, &inter);
      if (ctx.trace != nullptr) {
        ctx.trace->add_event(trace_reject_kind(kind), path.size(),
                             inter.subject().to_string());
      }
      return true;
    }
    if (auto ok = check_link(tip, inter, ctx); !ok.ok()) {
      last_error.set(ok.error());
      if (ctx.trace != nullptr) {
        ctx.trace->add_event(TraceEventKind::kRejectBadSignature, path.size(),
                             inter.subject().to_string());
      }
      return true;
    }
    path.push_back(&inter);
    on_path.insert(inter);
    if (ctx.trace != nullptr) {
      ctx.trace->add_event(TraceEventKind::kIntermediateDescend, path.size(),
                           inter.subject().to_string());
    }
    collect_anchors(inter, path, on_path, ctx, survey, found_anchors,
                    last_error);
    on_path.pop();
    path.pop_back();
    return true;
  });
}

/// One counter per broad failure family, so the census can report "why
/// chains fail" without string-matching messages. Also drops a flight-
/// recorder event: failures are the interesting minority, so the recorder
/// keeps the terminal error taxonomy without paying a per-success record on
/// the census hot path.
void count_verify_failure(const Error& error) {
  switch (error.code) {
    case Errc::kExpired: TANGLED_OBS_INC("pki.verify.fail.expired"); break;
    case Errc::kNotFound: TANGLED_OBS_INC("pki.verify.fail.no_path"); break;
    case Errc::kVerifyFailed:
      TANGLED_OBS_INC("pki.verify.fail.verify");
      break;
    case Errc::kParse: TANGLED_OBS_INC("pki.verify.fail.parse"); break;
    case Errc::kBudgetExhausted:
      TANGLED_OBS_INC("pki.verify.fail.budget");
      break;
    default: TANGLED_OBS_INC("pki.verify.fail.other"); break;
  }
  TANGLED_OBS_EVENT(::tangled::obs::FlightEventKind::kVerifyFail,
                    static_cast<std::uint64_t>(error.code), 0,
                    to_string(error.code));
}

/// Copies the per-call search accounting into an attached trace and stamps
/// its identity + verdict so trace and returned Result can be compared
/// bit-for-bit. cache_hits/misses were already counted live by check_link.
template <typename T>
void finish_trace(DecisionTrace* trace, const x509::Certificate& leaf,
                  const SearchStats& stats, std::size_t budget_steps_used,
                  bool budget_exhausted, const Result<T>& result) {
  if (trace == nullptr) return;
  trace->leaf_fingerprint = leaf.fingerprint_hex();
  trace->anchors_tried = stats.anchors_tried;
  trace->intermediates_tried = stats.intermediates_tried;
  trace->signature_checks = stats.signature_checks;
  trace->budget_steps_used = budget_steps_used;
  trace->budget_exhausted = budget_exhausted;
  if (budget_exhausted) {
    trace->add_event(TraceEventKind::kBudgetExhausted, 0, {});
  }
  trace->verdict = result.ok() ? std::string("validated")
                               : std::string(to_string(result.error().code));
}

}  // namespace

Result<Chain> ChainVerifier::verify(
    const x509::Certificate& leaf,
    std::span<const x509::Certificate> intermediates,
    DecisionTrace* trace) const {
  TANGLED_OBS_INC("pki.verify.calls");
  TANGLED_OBS_SCOPED_TIMER("pki.verify.latency_us");
  // Search accounting hoisted out of the lambda so finish_trace (and the
  // success-path flight event) can see it after the context is gone.
  SearchStats search_stats;
  std::size_t budget_steps = 0;
  bool budget_exhausted = false;
  auto result = [&]() -> Result<Chain> {
    if (auto ok = leaf_precheck(leaf, options_); !ok.ok()) return ok.error();

    SearchContext ctx{anchors_,      options_,
                      options_.use_verify_cache ? cache_ : nullptr,
                      &leaf,         intermediates,
                      {},            {}};
    ctx.trace = trace;
    ctx.prepare();

    CertPath path;
    path.push_back(&leaf);
    SmallIdSet on_path;
    on_path.insert(leaf);
    PendingError last_error;
    const bool found = extend(leaf, path, on_path, ctx, last_error);
    TANGLED_OBS_OBSERVE_COUNT("pki.verify.anchors_tried", ctx.stats.anchors_tried);
    TANGLED_OBS_OBSERVE_COUNT("pki.verify.intermediates_tried",
                              ctx.stats.intermediates_tried);
    TANGLED_OBS_ADD("pki.verify.signature_checks", ctx.stats.signature_checks);
    search_stats = ctx.stats;
    budget_steps = ctx.budget_steps_used;
    budget_exhausted = ctx.budget_exhausted;
    if (ctx.budget_exhausted) {
      TANGLED_OBS_INC("pki.verify.budget_exhausted");
      TANGLED_OBS_EVENT(::tangled::obs::FlightEventKind::kBudgetExhausted,
                        ctx.budget_steps_used, 0, "");
    }
    if (found) return materialize(path);
    if (ctx.budget_exhausted) {
      // Step counts are deterministic (candidate enumeration only), so this
      // message is stable across cache-on/off and serial/parallel runs.
      return budget_error("path search budget exhausted after " +
                          std::to_string(ctx.budget_steps_used) + " steps");
    }
    return last_error.render(leaf);
  }();
  finish_trace(trace, leaf, search_stats, budget_steps, budget_exhausted,
               result);
  if (result.ok()) {
    TANGLED_OBS_INC("pki.verify.ok");
    TANGLED_OBS_OBSERVE_COUNT("pki.verify.chain_length",
                              result.value().length());
    TANGLED_OBS_EVENT(::tangled::obs::FlightEventKind::kVerifyOk, 1,
                      budget_steps, "");
  } else {
    count_verify_failure(result.error());
  }
  return result;
}

Result<AnchorSurvey> ChainVerifier::verify_all_anchors(
    const x509::Certificate& leaf,
    std::span<const x509::Certificate> intermediates,
    DecisionTrace* trace) const {
  // Unlike verify(), no scoped latency timer here: this is the census's
  // per-leaf hot path, and the two steady_clock reads per call are
  // measurable against a ~7 µs cached verification. Aggregate cost is
  // recoverable from the census ingest timings and the calls counter. The
  // same reasoning keeps the success path free of flight-recorder events —
  // failures and budget exhaustion are recorded, per-leaf successes are
  // summarized by the census's kCensusBatch events instead.
  TANGLED_OBS_INC("pki.verify.all_anchors.calls");
  SearchStats search_stats;
  std::size_t budget_steps = 0;
  bool budget_exhausted = false;
  auto result = [&]() -> Result<AnchorSurvey> {
    if (auto ok = leaf_precheck(leaf, options_); !ok.ok()) return ok.error();

    SearchContext ctx{anchors_,      options_,
                      options_.use_verify_cache ? cache_ : nullptr,
                      &leaf,         intermediates,
                      {},            {}};
    ctx.trace = trace;
    ctx.prepare();

    AnchorSurvey survey;
    CertPath path;
    path.push_back(&leaf);
    SmallIdSet on_path;
    on_path.insert(leaf);
    SmallIdSet found_anchors;
    PendingError last_error;
    collect_anchors(leaf, path, on_path, ctx, survey, found_anchors,
                    last_error);
    // Plain counters, not the per-call histograms verify() keeps under
    // pki.verify.*_tried — a histogram observe per census leaf is hot-path
    // cost for a distribution nobody reads at this volume.
    TANGLED_OBS_ADD("pki.verify.all_anchors.anchors_tried",
                    ctx.stats.anchors_tried);
    TANGLED_OBS_ADD("pki.verify.all_anchors.intermediates_tried",
                    ctx.stats.intermediates_tried);
    TANGLED_OBS_ADD("pki.verify.signature_checks", ctx.stats.signature_checks);
    search_stats = ctx.stats;
    budget_steps = ctx.budget_steps_used;
    budget_exhausted = ctx.budget_exhausted;
    if (ctx.budget_exhausted) {
      TANGLED_OBS_INC("pki.verify.budget_exhausted");
      TANGLED_OBS_EVENT(::tangled::obs::FlightEventKind::kBudgetExhausted,
                        ctx.budget_steps_used, 0, "");
    }
    survey.budget_exhausted = ctx.budget_exhausted;
    if (survey.anchors.empty()) {
      if (ctx.budget_exhausted) {
        return budget_error("anchor survey budget exhausted after " +
                            std::to_string(ctx.budget_steps_used) + " steps");
      }
      return last_error.render(leaf);
    }
    return survey;
  }();
  finish_trace(trace, leaf, search_stats, budget_steps, budget_exhausted,
               result);
  if (result.ok()) {
    TANGLED_OBS_INC("pki.verify.all_anchors.ok");
    TANGLED_OBS_OBSERVE_COUNT("pki.verify.anchors_per_leaf",
                              result.value().anchors.size());
  } else {
    count_verify_failure(result.error());
  }
  return result;
}

Result<Chain> ChainVerifier::verify_presented(
    const std::vector<x509::Certificate>& presented) const {
  if (presented.empty()) return parse_error("empty presented chain");
  return verify(presented.front(),
                std::span<const x509::Certificate>(presented).subspan(1));
}

}  // namespace tangled::pki
