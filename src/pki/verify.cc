#include "pki/verify.h"

#include <unordered_set>

#include "obs/obs.h"
#include "x509/pem.h"

namespace tangled::pki {

std::string Chain::to_pem_bundle() const {
  std::string out;
  for (const auto& cert : certificates) out += x509::to_pem(cert);
  return out;
}

std::uint64_t name_hash(const x509::Name& name) {
  return fnv1a64(name.to_der());
}

// ---------------------------------------------------------------------------
// TrustAnchors
// ---------------------------------------------------------------------------

TrustAnchors::TrustAnchors(const std::vector<x509::Certificate>& roots) {
  for (const auto& root : roots) add(root);
}

void TrustAnchors::add(const x509::Certificate& root, TrustFlags flags) {
  const std::size_t idx = anchors_.size();
  anchors_.push_back(root);
  flags_.push_back(flags);
  subject_index_.emplace(name_hash(root.subject()), idx);
  if (const auto ski = root.extensions().subject_key_id(); ski.has_value()) {
    key_id_index_.emplace(fnv1a64(*ski), idx);
  }
}

bool TrustAnchors::trusted_for(const x509::Certificate& anchor,
                               TrustPurpose purpose) const {
  const auto [begin, end] = subject_index_.equal_range(name_hash(anchor.subject()));
  for (auto it = begin; it != end; ++it) {
    if (anchors_[it->second].der() == anchor.der()) {
      return (flags_[it->second] & trust_flag(purpose)) != 0;
    }
  }
  return false;
}

std::vector<const x509::Certificate*> TrustAnchors::by_subject(
    const x509::Name& issuer_name) const {
  std::vector<const x509::Certificate*> out;
  const auto [begin, end] = subject_index_.equal_range(name_hash(issuer_name));
  for (auto it = begin; it != end; ++it) {
    const x509::Certificate& cand = anchors_[it->second];
    if (cand.subject() == issuer_name) out.push_back(&cand);
  }
  return out;
}

std::vector<const x509::Certificate*> TrustAnchors::by_key_id(
    ByteView key_id) const {
  std::vector<const x509::Certificate*> out;
  const auto [begin, end] = key_id_index_.equal_range(fnv1a64(key_id));
  for (auto it = begin; it != end; ++it) {
    const x509::Certificate& cand = anchors_[it->second];
    const auto ski = cand.extensions().subject_key_id();
    if (ski.has_value() && bytes_equal(*ski, key_id)) out.push_back(&cand);
  }
  return out;
}

bool TrustAnchors::contains(const x509::Certificate& cert) const {
  const auto [begin, end] = subject_index_.equal_range(name_hash(cert.subject()));
  for (auto it = begin; it != end; ++it) {
    if (anchors_[it->second].der() == cert.der()) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// ChainVerifier
// ---------------------------------------------------------------------------

namespace {

/// Per-certificate checks that do not involve its issuer.
Result<void> check_cert(const x509::Certificate& cert, bool must_be_ca,
                        const VerifyOptions& options) {
  if (options.check_validity && !cert.validity().contains(options.at)) {
    return expired_error("certificate outside validity window: " +
                         cert.subject().to_string());
  }
  if (options.require_ca_bit && must_be_ca && !cert.is_ca()) {
    return verify_error("issuer is not a CA: " + cert.subject().to_string());
  }
  return {};
}

/// Per-call statistics accumulator. Lives on the verify call's stack (via
/// SearchContext), never in the verifier, so concurrent const verifies
/// from different threads never share mutable state.
struct SearchStats {
  std::size_t anchors_tried = 0;
  std::size_t intermediates_tried = 0;
  std::size_t signature_checks = 0;
};

struct SearchContext {
  const TrustAnchors& anchors;
  const VerifyOptions& options;
  std::unordered_multimap<std::uint64_t, const x509::Certificate*> inter_index;

  // Search statistics, observed into the obs registry after the search.
  mutable SearchStats stats;

  std::vector<const x509::Certificate*> intermediates_for(
      const x509::Name& issuer_name) const {
    std::vector<const x509::Certificate*> out;
    const auto [begin, end] = inter_index.equal_range(name_hash(issuer_name));
    for (auto it = begin; it != end; ++it) {
      if (it->second->subject() == issuer_name) out.push_back(it->second);
    }
    return out;
  }
};

Result<void> check_link(const x509::Certificate& child,
                        const x509::Certificate& issuer,
                        const SearchContext& ctx) {
  if (ctx.options.check_signatures) {
    ++ctx.stats.signature_checks;
    if (auto sig = child.check_signature_from(issuer.public_key()); !sig.ok()) {
      return sig;
    }
  }
  return {};
}

/// Depth-first path extension. `path` holds certs from leaf to current tip.
bool extend(const x509::Certificate& tip, std::vector<x509::Certificate>& path,
            std::unordered_set<std::uint64_t>& on_path, const SearchContext& ctx,
            Error& last_error) {
  if (path.size() >= ctx.options.max_depth) {
    last_error = verify_error("maximum chain depth exceeded");
    return false;
  }

  // Scoped trust (§8 recommendation): an anchor terminates the chain only
  // when it is trusted for the requested purpose.
  auto purpose_ok = [&ctx, &last_error](const x509::Certificate& anchor) {
    if (!ctx.options.purpose.has_value()) return true;
    if (ctx.anchors.trusted_for(anchor, *ctx.options.purpose)) return true;
    last_error = verify_error("anchor not trusted for requested purpose: " +
                              anchor.subject().to_string());
    return false;
  };

  // A self-signed tip that is itself an anchor terminates immediately
  // (a root presented as its own chain).
  if (tip.is_self_issued() && ctx.anchors.contains(tip) && purpose_ok(tip)) {
    return true;
  }

  // Anchors first: prefer terminating the chain over growing it.
  for (const x509::Certificate* anchor : ctx.anchors.by_subject(tip.issuer())) {
    ++ctx.stats.anchors_tried;
    if (anchor->der() == tip.der()) continue;
    if (!purpose_ok(*anchor)) continue;
    if (auto ok = check_cert(*anchor, /*must_be_ca=*/true, ctx.options); !ok.ok()) {
      last_error = ok.error();
      continue;
    }
    if (auto ok = check_link(tip, *anchor, ctx); !ok.ok()) {
      last_error = ok.error();
      continue;
    }
    path.push_back(*anchor);
    return true;
  }

  for (const x509::Certificate* inter : ctx.intermediates_for(tip.issuer())) {
    ++ctx.stats.intermediates_tried;
    const std::uint64_t id = fnv1a64(inter->der());
    if (on_path.contains(id)) continue;  // loop guard
    if (inter->der() == tip.der()) continue;
    if (auto ok = check_cert(*inter, /*must_be_ca=*/true, ctx.options); !ok.ok()) {
      last_error = ok.error();
      continue;
    }
    if (auto ok = check_link(tip, *inter, ctx); !ok.ok()) {
      last_error = ok.error();
      continue;
    }
    path.push_back(*inter);
    on_path.insert(id);
    if (extend(*inter, path, on_path, ctx, last_error)) return true;
    on_path.erase(id);
    path.pop_back();
  }
  return false;
}

}  // namespace

namespace {

/// The ExtendedKeyUsage OID a TrustPurpose corresponds to.
const asn1::Oid& eku_oid_for(TrustPurpose purpose) {
  switch (purpose) {
    case TrustPurpose::kServerAuth: return asn1::oids::eku_server_auth();
    case TrustPurpose::kClientAuth: return asn1::oids::eku_client_auth();
    case TrustPurpose::kCodeSigning: return asn1::oids::eku_code_signing();
    case TrustPurpose::kEmail: return asn1::oids::eku_email_protection();
    case TrustPurpose::kTimestamping: return asn1::oids::eku_time_stamping();
  }
  return asn1::oids::eku_server_auth();
}

/// RFC 5280 §6.1.4: a CA's pathLenConstraint bounds how many non-leaf
/// certificates may follow it toward the leaf. Chain order: leaf first,
/// anchor last; the CA at index i has i-1 intermediates below it.
Result<void> check_path_lengths(const std::vector<x509::Certificate>& path) {
  for (std::size_t i = 1; i < path.size(); ++i) {
    const auto bc = path[i].extensions().basic_constraints();
    if (!bc.has_value() || !bc->path_len.has_value()) continue;
    const std::size_t below = i - 1;  // intermediates between it and leaf
    if (below > static_cast<std::size_t>(*bc->path_len)) {
      return verify_error("pathLenConstraint violated at " +
                          path[i].subject().to_string());
    }
  }
  return {};
}

/// Leaf-level checks shared by verify() and verify_all_anchors(): validity
/// window, and EKU admissibility when a trust purpose is requested.
Result<void> leaf_precheck(const x509::Certificate& leaf,
                           const VerifyOptions& options) {
  if (auto ok = check_cert(leaf, /*must_be_ca=*/false, options); !ok.ok()) {
    return ok;
  }
  if (options.purpose.has_value()) {
    const auto eku = leaf.extensions().extended_key_usage();
    if (eku.has_value() && !eku->allows(eku_oid_for(*options.purpose))) {
      return verify_error("leaf ExtendedKeyUsage forbids requested purpose");
    }
  }
  return {};
}

/// Exhaustive depth-first search: where `extend` stops at the first
/// terminating anchor, this visits every extension and records every
/// distinct anchor whose full path passes the policy checks. An invalid
/// path never disqualifies its anchor — another path may still reach it.
void collect_anchors(const x509::Certificate& tip,
                     std::vector<x509::Certificate>& path,
                     std::unordered_set<std::uint64_t>& on_path,
                     const SearchContext& ctx, AnchorSurvey& survey,
                     std::unordered_set<std::uint64_t>& found_anchors,
                     Error& last_error) {
  if (path.size() >= ctx.options.max_depth) {
    last_error = verify_error("maximum chain depth exceeded");
    return;
  }

  auto purpose_ok = [&ctx, &last_error](const x509::Certificate& anchor) {
    if (!ctx.options.purpose.has_value()) return true;
    if (ctx.anchors.trusted_for(anchor, *ctx.options.purpose)) return true;
    last_error = verify_error("anchor not trusted for requested purpose: " +
                              anchor.subject().to_string());
    return false;
  };

  // `path` must currently end with `anchor`'s bytes; credits the anchor if
  // the whole path passes the pathLenConstraint policy.
  auto record = [&](const x509::Certificate& anchor) {
    if (ctx.options.check_path_length) {
      if (auto ok = check_path_lengths(path); !ok.ok()) {
        last_error = ok.error();
        return;
      }
    }
    if (found_anchors.insert(fnv1a64(anchor.der())).second) {
      survey.anchors.push_back(&anchor);
    }
    if (survey.chain.certificates.empty()) survey.chain = Chain{path};
  };

  // A self-signed tip that is byte-identical to an anchor terminates here;
  // record the *member* certificate so the pointer outlives the call.
  if (tip.is_self_issued()) {
    for (const x509::Certificate* member :
         ctx.anchors.by_subject(tip.subject())) {
      if (member->der() == tip.der() && purpose_ok(*member)) {
        record(*member);
        break;
      }
    }
  }

  for (const x509::Certificate* anchor : ctx.anchors.by_subject(tip.issuer())) {
    ++ctx.stats.anchors_tried;
    if (anchor->der() == tip.der()) continue;
    if (!purpose_ok(*anchor)) continue;
    if (auto ok = check_cert(*anchor, /*must_be_ca=*/true, ctx.options); !ok.ok()) {
      last_error = ok.error();
      continue;
    }
    if (auto ok = check_link(tip, *anchor, ctx); !ok.ok()) {
      last_error = ok.error();
      continue;
    }
    path.push_back(*anchor);
    record(*anchor);
    path.pop_back();
  }

  for (const x509::Certificate* inter : ctx.intermediates_for(tip.issuer())) {
    ++ctx.stats.intermediates_tried;
    const std::uint64_t id = fnv1a64(inter->der());
    if (on_path.contains(id)) continue;  // loop guard
    if (inter->der() == tip.der()) continue;
    if (auto ok = check_cert(*inter, /*must_be_ca=*/true, ctx.options); !ok.ok()) {
      last_error = ok.error();
      continue;
    }
    if (auto ok = check_link(tip, *inter, ctx); !ok.ok()) {
      last_error = ok.error();
      continue;
    }
    path.push_back(*inter);
    on_path.insert(id);
    collect_anchors(*inter, path, on_path, ctx, survey, found_anchors,
                    last_error);
    on_path.erase(id);
    path.pop_back();
  }
}

/// One counter per broad failure family, so the census can report "why
/// chains fail" without string-matching messages.
void count_verify_failure(const Error& error) {
  switch (error.code) {
    case Errc::kExpired: TANGLED_OBS_INC("pki.verify.fail.expired"); break;
    case Errc::kNotFound: TANGLED_OBS_INC("pki.verify.fail.no_path"); break;
    case Errc::kVerifyFailed:
      TANGLED_OBS_INC("pki.verify.fail.verify");
      break;
    case Errc::kParse: TANGLED_OBS_INC("pki.verify.fail.parse"); break;
    default: TANGLED_OBS_INC("pki.verify.fail.other"); break;
  }
}

}  // namespace

Result<Chain> ChainVerifier::verify(
    const x509::Certificate& leaf,
    const std::vector<x509::Certificate>& intermediates) const {
  TANGLED_OBS_INC("pki.verify.calls");
  TANGLED_OBS_SCOPED_TIMER("pki.verify.latency_us");
  auto result = [&]() -> Result<Chain> {
    if (auto ok = leaf_precheck(leaf, options_); !ok.ok()) return ok.error();

    SearchContext ctx{anchors_, options_, {}, {}};
    for (const auto& inter : intermediates) {
      ctx.inter_index.emplace(name_hash(inter.subject()), &inter);
    }

    std::vector<x509::Certificate> path{leaf};
    std::unordered_set<std::uint64_t> on_path{fnv1a64(leaf.der())};
    Error last_error =
        not_found_error("no path to a trust anchor for issuer " +
                        leaf.issuer().to_string());
    const bool found = extend(leaf, path, on_path, ctx, last_error);
    TANGLED_OBS_OBSERVE_COUNT("pki.verify.anchors_tried", ctx.stats.anchors_tried);
    TANGLED_OBS_OBSERVE_COUNT("pki.verify.intermediates_tried",
                              ctx.stats.intermediates_tried);
    TANGLED_OBS_ADD("pki.verify.signature_checks", ctx.stats.signature_checks);
    if (found) {
      if (options_.check_path_length) {
        if (auto ok = check_path_lengths(path); !ok.ok()) return ok.error();
      }
      return Chain{std::move(path)};
    }
    return last_error;
  }();
  if (result.ok()) {
    TANGLED_OBS_INC("pki.verify.ok");
    TANGLED_OBS_OBSERVE_COUNT("pki.verify.chain_length",
                              result.value().length());
  } else {
    count_verify_failure(result.error());
  }
  return result;
}

Result<AnchorSurvey> ChainVerifier::verify_all_anchors(
    const x509::Certificate& leaf,
    const std::vector<x509::Certificate>& intermediates) const {
  TANGLED_OBS_INC("pki.verify.all_anchors.calls");
  TANGLED_OBS_SCOPED_TIMER("pki.verify.all_anchors.latency_us");
  auto result = [&]() -> Result<AnchorSurvey> {
    if (auto ok = leaf_precheck(leaf, options_); !ok.ok()) return ok.error();

    SearchContext ctx{anchors_, options_, {}, {}};
    for (const auto& inter : intermediates) {
      ctx.inter_index.emplace(name_hash(inter.subject()), &inter);
    }

    AnchorSurvey survey;
    std::vector<x509::Certificate> path{leaf};
    std::unordered_set<std::uint64_t> on_path{fnv1a64(leaf.der())};
    std::unordered_set<std::uint64_t> found_anchors;
    Error last_error =
        not_found_error("no path to a trust anchor for issuer " +
                        leaf.issuer().to_string());
    collect_anchors(leaf, path, on_path, ctx, survey, found_anchors,
                    last_error);
    TANGLED_OBS_OBSERVE_COUNT("pki.verify.anchors_tried", ctx.stats.anchors_tried);
    TANGLED_OBS_OBSERVE_COUNT("pki.verify.intermediates_tried",
                              ctx.stats.intermediates_tried);
    TANGLED_OBS_ADD("pki.verify.signature_checks", ctx.stats.signature_checks);
    if (survey.anchors.empty()) return last_error;
    return survey;
  }();
  if (result.ok()) {
    TANGLED_OBS_INC("pki.verify.all_anchors.ok");
    TANGLED_OBS_OBSERVE_COUNT("pki.verify.anchors_per_leaf",
                              result.value().anchors.size());
  } else {
    count_verify_failure(result.error());
  }
  return result;
}

Result<Chain> ChainVerifier::verify_presented(
    const std::vector<x509::Certificate>& presented) const {
  if (presented.empty()) return parse_error("empty presented chain");
  const std::vector<x509::Certificate> intermediates(presented.begin() + 1,
                                                     presented.end());
  return verify(presented.front(), intermediates);
}

}  // namespace tangled::pki
