// pki::DecisionTrace — an opt-in structured audit record of one chain
// verification.
//
// The paper's census answers *which* anchors validate each leaf; a trace
// answers *why*: which anchors the search attempted in what order, which
// candidate links were rejected and for which policy reason, where a
// pathLenConstraint forced a backtrack, whether each non-leaf link's
// signature came from the VerifyCache or was computed, and how many budget
// steps the search spent before its terminal verdict.
//
// Tracing is strictly opt-in: the nullptr-trace overloads of
// ChainVerifier::verify / verify_all_anchors are the hot path and never
// construct a DecisionTrace (the static instances_created() counter lets
// tests assert exactly that). When a trace is attached, the search's
// *result* is unchanged — events are observations, never policy.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tangled::pki {

/// What one trace event records. Terminal rejection reasons mirror the
/// verifier's PendingError taxonomy so a trace explains exactly the error
/// the caller would have seen.
enum class TraceEventKind : std::uint8_t {
  kAnchorAttempt = 1,        // candidate anchor considered for the tip
  kAnchorAccepted = 2,       // a full path to this anchor passed every check
  kIntermediateAttempt = 3,  // candidate intermediate considered for the tip
  kIntermediateDescend = 4,  // link ok; the search recursed below it
  kRejectExpired = 5,        // candidate outside the validity window
  kRejectNotCa = 6,          // candidate lacks the CA bit
  kRejectBadSignature = 7,   // link signature check failed
  kRejectPurpose = 8,        // anchor not trusted for the requested purpose
  kPathLenBacktrack = 9,     // pathLenConstraint violated; search backtracked
  kDepthLimit = 10,          // effective max depth reached at this tip
  kLoopGuard = 11,           // candidate already on the current path
  kCacheHit = 12,            // link signature served from the VerifyCache
  kCacheMiss = 13,           // link signature computed and memoized
  kBudgetExhausted = 14,     // the ResourceBudget stopped the search
};

std::string_view to_string(TraceEventKind kind);

/// One search event: what happened, how deep the path was when it happened
/// (leaf = depth 1), and which certificate it happened to.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kAnchorAttempt;
  std::uint16_t depth = 0;
  std::string subject;  // candidate subject DN; empty for path-level events
};

namespace detail {

/// Counts every DecisionTrace construction (default, copy, move) so tests
/// can assert the census hot path builds none when sampling is off.
struct TraceInstanceCounter {
  TraceInstanceCounter() { bump(); }
  TraceInstanceCounter(const TraceInstanceCounter&) { bump(); }
  TraceInstanceCounter& operator=(const TraceInstanceCounter&) = default;

  static std::atomic<std::uint64_t>& count();

 private:
  static void bump() { count().fetch_add(1, std::memory_order_relaxed); }
};

}  // namespace detail

/// The audit record. Plain data: the verifier fills events + summary, the
/// caller (census sampler, tests) stamps the verdict and keeps or exports
/// the record.
struct DecisionTrace : private detail::TraceInstanceCounter {
  /// Event cap per trace; a pathological cross-sign mesh truncates the
  /// event list (summary counters keep exact totals) rather than letting a
  /// diagnostic record grow without bound.
  static constexpr std::size_t kMaxEvents = 512;

  std::string leaf_fingerprint;  // SHA-256 hex of the traced leaf
  /// "validated", or to_string(Errc) of the terminal error — stamped by the
  /// verify overload that owns the call, so trace verdict and returned
  /// Result can be compared bit-for-bit.
  std::string verdict;

  std::vector<TraceEvent> events;
  bool truncated = false;  // kMaxEvents hit; counters below stay exact

  // Search summary (exact even when `events` truncates).
  std::uint64_t anchors_tried = 0;
  std::uint64_t intermediates_tried = 0;
  std::uint64_t signature_checks = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t pathlen_backtracks = 0;
  std::uint64_t budget_steps_used = 0;
  bool budget_exhausted = false;

  /// Fingerprints (SHA-256 hex) of every accepted anchor, discovery order.
  std::vector<std::string> anchors_found;

  void add_event(TraceEventKind kind, std::size_t depth,
                 std::string_view subject);

  /// One self-contained JSON object (events, summary, verdict).
  std::string to_json() const;

  /// Total DecisionTrace objects ever constructed in this process.
  static std::uint64_t instances_created() {
    return detail::TraceInstanceCounter::count().load(
        std::memory_order_relaxed);
  }
};

}  // namespace tangled::pki
