#include "pki/verify_cache.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "util/binio.h"

namespace tangled::pki {

namespace {

/// First 16 bytes of a SHA-256 digest as two little-endian words.
void truncate_digest(const Bytes& digest, std::uint64_t& lo,
                     std::uint64_t& hi) {
  std::memcpy(&lo, digest.data(), sizeof(lo));
  std::memcpy(&hi, digest.data() + sizeof(lo), sizeof(hi));
}

LinkKey make_key(const x509::Certificate& child,
                 const x509::Certificate& issuer) {
  LinkKey key;
  truncate_digest(child.fingerprint_sha256(), key.child_lo, key.child_hi);
  truncate_digest(issuer.spki_sha256(), key.issuer_lo, key.issuer_hi);
  return key;
}

}  // namespace

VerifyCache::VerifyCache(std::size_t max_entries) : cache_(max_entries) {}

Result<void> VerifyCache::check_link_signature(const x509::Certificate& child,
                                               const x509::Certificate& issuer,
                                               bool* cache_hit) {
  const LinkKey key = make_key(child, issuer);
  if (const auto hit = cache_.find(key); hit.has_value()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    TANGLED_OBS_INC("pki.verify_cache.hit");
    if (cache_hit != nullptr) *cache_hit = true;
    if (hit->ok) return {};
    return Error{hit->code, hit->message};
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  TANGLED_OBS_INC("pki.verify_cache.miss");
  if (cache_hit != nullptr) *cache_hit = false;

  auto result = child.check_signature_from(issuer.public_key());
  Outcome outcome;
  outcome.ok = result.ok();
  if (!result.ok()) {
    outcome.code = result.error().code;
    outcome.message = result.error().message;
  }
  if (const std::size_t evicted = cache_.insert(key, std::move(outcome));
      evicted > 0) {
    TANGLED_OBS_ADD("pki.verify_cache.evicted", evicted);
  }
  return result;
}

VerifyCache::Stats VerifyCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = cache_.evictions();
  s.entries = cache_.size();
  return s;
}

namespace {

/// A serialized Errc byte from disk must name a real enumerator before it
/// is cast back — the section checksum catches random corruption, but this
/// codec must also be safe when handed arbitrary bytes directly.
Result<Errc> decode_errc(std::uint8_t raw) {
  switch (static_cast<Errc>(raw)) {
    case Errc::kParse:
    case Errc::kRange:
    case Errc::kUnsupported:
    case Errc::kNotFound:
    case Errc::kVerifyFailed:
    case Errc::kExpired:
    case Errc::kInvalidState:
    case Errc::kBudgetExhausted:
      return static_cast<Errc>(raw);
  }
  return parse_error("verify-cache snapshot: unknown error code " +
                     std::to_string(raw));
}

}  // namespace

Bytes VerifyCache::export_state() const {
  Bytes body;
  std::uint64_t n = 0;
  cache_.for_each([&body, &n](const LinkKey& key, const Outcome& outcome) {
    util::put_u64(body, key.child_lo);
    util::put_u64(body, key.child_hi);
    util::put_u64(body, key.issuer_lo);
    util::put_u64(body, key.issuer_hi);
    util::put_u8(body, outcome.ok ? 1 : 0);
    util::put_u8(body, static_cast<std::uint8_t>(outcome.code));
    util::put_string(body, outcome.message);
    ++n;
  });
  Bytes out;
  util::put_u64(out, n);
  append(out, body);
  return out;
}

Result<void> VerifyCache::import_state(ByteView data) {
  util::BinReader in(data);
  // key (32) + ok (1) + code (1) + message length prefix (8)
  auto n = in.count(/*min_bytes_per_element=*/42);
  if (!n.ok()) return n.error();
  std::vector<std::pair<LinkKey, Outcome>> entries;
  entries.reserve(n.value());
  for (std::size_t i = 0; i < n.value(); ++i) {
    LinkKey key;
    Outcome outcome;
    for (std::uint64_t* word :
         {&key.child_lo, &key.child_hi, &key.issuer_lo, &key.issuer_hi}) {
      auto v = in.u64();
      if (!v.ok()) return v.error();
      *word = v.value();
    }
    auto ok_byte = in.u8();
    if (!ok_byte.ok()) return ok_byte.error();
    if (ok_byte.value() > 1) {
      return parse_error("verify-cache snapshot: bad outcome flag");
    }
    outcome.ok = ok_byte.value() == 1;
    auto code_byte = in.u8();
    if (!code_byte.ok()) return code_byte.error();
    auto code = decode_errc(code_byte.value());
    if (!code.ok()) return code.error();
    outcome.code = code.value();
    auto message = in.string();
    if (!message.ok()) return message.error();
    outcome.message = std::move(message.value());
    entries.emplace_back(key, std::move(outcome));
  }
  if (auto ok = in.expect_end(); !ok.ok()) return ok;
  for (auto& [key, outcome] : entries) {
    cache_.insert(key, std::move(outcome));
  }
  return {};
}

double VerifyCache::hit_rate() const {
  const auto h = hits_.load(std::memory_order_relaxed);
  const auto m = misses_.load(std::memory_order_relaxed);
  return h + m == 0 ? 0.0
                    : static_cast<double>(h) / static_cast<double>(h + m);
}

bool verify_cache_env_enabled() {
  const char* env = std::getenv("TANGLED_VERIFY_CACHE");
  if (env == nullptr || env[0] == '\0') return true;
  const std::string_view v(env);
  if (v == "1" || v == "on" || v == "true") return true;
  if (v == "0" || v == "off" || v == "false") return false;
  std::fprintf(stderr,
               "TANGLED_VERIFY_CACHE=\"%s\" is not a boolean "
               "(use 0/off/false or 1/on/true)\n",
               env);
  std::exit(2);
}

}  // namespace tangled::pki
