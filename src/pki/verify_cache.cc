#include "pki/verify_cache.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "obs/obs.h"

namespace tangled::pki {

namespace {

/// First 16 bytes of a SHA-256 digest as two little-endian words.
void truncate_digest(const Bytes& digest, std::uint64_t& lo,
                     std::uint64_t& hi) {
  std::memcpy(&lo, digest.data(), sizeof(lo));
  std::memcpy(&hi, digest.data() + sizeof(lo), sizeof(hi));
}

LinkKey make_key(const x509::Certificate& child,
                 const x509::Certificate& issuer) {
  LinkKey key;
  truncate_digest(child.fingerprint_sha256(), key.child_lo, key.child_hi);
  truncate_digest(issuer.spki_sha256(), key.issuer_lo, key.issuer_hi);
  return key;
}

}  // namespace

VerifyCache::VerifyCache(std::size_t max_entries) : cache_(max_entries) {}

Result<void> VerifyCache::check_link_signature(const x509::Certificate& child,
                                               const x509::Certificate& issuer) {
  const LinkKey key = make_key(child, issuer);
  if (const auto hit = cache_.find(key); hit.has_value()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    TANGLED_OBS_INC("pki.verify_cache.hit");
    if (hit->ok) return {};
    return Error{hit->code, hit->message};
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  TANGLED_OBS_INC("pki.verify_cache.miss");

  auto result = child.check_signature_from(issuer.public_key());
  Outcome outcome;
  outcome.ok = result.ok();
  if (!result.ok()) {
    outcome.code = result.error().code;
    outcome.message = result.error().message;
  }
  if (const std::size_t evicted = cache_.insert(key, std::move(outcome));
      evicted > 0) {
    TANGLED_OBS_ADD("pki.verify_cache.evicted", evicted);
  }
  return result;
}

VerifyCache::Stats VerifyCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = cache_.evictions();
  s.entries = cache_.size();
  return s;
}

double VerifyCache::hit_rate() const {
  const auto h = hits_.load(std::memory_order_relaxed);
  const auto m = misses_.load(std::memory_order_relaxed);
  return h + m == 0 ? 0.0
                    : static_cast<double>(h) / static_cast<double>(h + m);
}

bool verify_cache_env_enabled() {
  const char* env = std::getenv("TANGLED_VERIFY_CACHE");
  if (env == nullptr || env[0] == '\0') return true;
  const std::string_view v(env);
  if (v == "1" || v == "on" || v == "true") return true;
  if (v == "0" || v == "off" || v == "false") return false;
  std::fprintf(stderr,
               "TANGLED_VERIFY_CACHE=\"%s\" is not a boolean "
               "(use 0/off/false or 1/on/true)\n",
               env);
  std::exit(2);
}

}  // namespace tangled::pki
