#include "pki/verify_cache.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "util/binio.h"

#include "util/features.h"

namespace tangled::pki {

namespace {

/// A full SHA-256 digest as four little-endian words.
std::array<std::uint64_t, 4> digest_words(const Bytes& digest) {
  std::array<std::uint64_t, 4> words{};
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t w = 0;
    for (int b = 7; b >= 0; --b) {
      w = (w << 8) | digest[8 * i + static_cast<std::size_t>(b)];
    }
    words[i] = w;
  }
  return words;
}

Bytes words_digest(const std::array<std::uint64_t, 4>& words) {
  Bytes out;
  out.reserve(32);
  for (const std::uint64_t w : words) {
    for (int b = 0; b < 8; ++b) {
      out.push_back(static_cast<std::uint8_t>(w >> (8 * b)));
    }
  }
  return out;
}

LinkKey make_key(const x509::Certificate& child,
                 const x509::Certificate& issuer) {
  LinkKey key;
  key.child = digest_words(child.fingerprint_sha256());
  key.issuer = digest_words(issuer.spki_sha256());
  return key;
}

std::uint64_t make_dense_key(const x509::Certificate& child,
                             const x509::Certificate& issuer) {
  return (static_cast<std::uint64_t>(child.dense_id()) << 32) |
         issuer.spki_id();
}

}  // namespace

VerifyCache::VerifyCache(std::size_t max_entries)
    : dense_(util::dense_ids_enabled()),
      cache_(max_entries),
      dense_cache_(max_entries) {}

Result<void> VerifyCache::check_link_signature(const x509::Certificate& child,
                                               const x509::Certificate& issuer,
                                               bool* cache_hit) {
  return dense_ ? probe_dense(child, issuer, cache_hit)
                : probe_wide(child, issuer, cache_hit);
}

namespace {

/// Shared probe-or-compute skeleton for both key modes; `cache` memoizes a
/// pure function of (child bytes, issuer key), so first-writer-wins races
/// are benign.
template <typename Cache, typename Key>
Result<void> probe_impl(Cache& cache, const Key& key,
                        const x509::Certificate& child,
                        const x509::Certificate& issuer, bool* cache_hit,
                        std::atomic<std::uint64_t>& hits,
                        std::atomic<std::uint64_t>& misses,
                        auto make_outcome) {
  if (const auto hit = cache.find(key); hit.has_value()) {
    hits.fetch_add(1, std::memory_order_relaxed);
    TANGLED_OBS_INC("pki.verify_cache.hit");
    if (cache_hit != nullptr) *cache_hit = true;
    if (hit->ok) return {};
    return Error{hit->code, hit->message};
  }
  misses.fetch_add(1, std::memory_order_relaxed);
  TANGLED_OBS_INC("pki.verify_cache.miss");
  if (cache_hit != nullptr) *cache_hit = false;

  auto result = child.check_signature_from(issuer);
  if (const std::size_t evicted = cache.insert(key, make_outcome(result));
      evicted > 0) {
    TANGLED_OBS_ADD("pki.verify_cache.evicted", evicted);
  }
  return result;
}

}  // namespace

Result<void> VerifyCache::probe_dense(const x509::Certificate& child,
                                      const x509::Certificate& issuer,
                                      bool* cache_hit) {
  return probe_impl(dense_cache_, make_dense_key(child, issuer), child, issuer,
                    cache_hit, hits_, misses_, [](const Result<void>& r) {
                      Outcome o;
                      o.ok = r.ok();
                      if (!r.ok()) {
                        o.code = r.error().code;
                        o.message = r.error().message;
                      }
                      return o;
                    });
}

Result<void> VerifyCache::probe_wide(const x509::Certificate& child,
                                     const x509::Certificate& issuer,
                                     bool* cache_hit) {
  return probe_impl(cache_, make_key(child, issuer), child, issuer, cache_hit,
                    hits_, misses_, [](const Result<void>& r) {
                      Outcome o;
                      o.ok = r.ok();
                      if (!r.ok()) {
                        o.code = r.error().code;
                        o.message = r.error().message;
                      }
                      return o;
                    });
}

VerifyCache::Stats VerifyCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = cache_.evictions() + dense_cache_.evictions();
  s.entries = cache_.size() + dense_cache_.size();
  return s;
}

namespace {

/// A serialized Errc byte from disk must name a real enumerator before it
/// is cast back — the section checksum catches random corruption, but this
/// codec must also be safe when handed arbitrary bytes directly.
Result<Errc> decode_errc(std::uint8_t raw) {
  switch (static_cast<Errc>(raw)) {
    case Errc::kParse:
    case Errc::kRange:
    case Errc::kUnsupported:
    case Errc::kNotFound:
    case Errc::kVerifyFailed:
    case Errc::kExpired:
    case Errc::kInvalidState:
    case Errc::kBudgetExhausted:
      return static_cast<Errc>(raw);
  }
  return parse_error("verify-cache snapshot: unknown error code " +
                     std::to_string(raw));
}

}  // namespace

Bytes VerifyCache::export_state() const {
  // The on-disk form always carries the full digests (mode-independent):
  // a snapshot written by a dense-id process imports cleanly into a
  // wide-key process and vice versa. Dense entries recover their digests
  // through the interners' reverse tables.
  Bytes body;
  std::uint64_t n = 0;
  const auto put_entry = [&body, &n](const std::array<std::uint64_t, 4>& child,
                                     const std::array<std::uint64_t, 4>& issuer,
                                     const Outcome& outcome) {
    for (const std::uint64_t w : child) util::put_u64(body, w);
    for (const std::uint64_t w : issuer) util::put_u64(body, w);
    util::put_u8(body, outcome.ok ? 1 : 0);
    util::put_u8(body, static_cast<std::uint8_t>(outcome.code));
    util::put_string(body, outcome.message);
    ++n;
  };
  cache_.for_each([&put_entry](const LinkKey& key, const Outcome& outcome) {
    put_entry(key.child, key.issuer, outcome);
  });
  dense_cache_.for_each(
      [&put_entry](const std::uint64_t key, const Outcome& outcome) {
        const auto child_digest = x509::cert_fingerprint_ids().digest_of(
            static_cast<std::uint32_t>(key >> 32));
        const auto issuer_digest = x509::cert_spki_ids().digest_of(
            static_cast<std::uint32_t>(key & 0xffffffff));
        put_entry(digest_words(child_digest), digest_words(issuer_digest),
                  outcome);
      });
  Bytes out;
  util::put_u64(out, n);
  append(out, body);
  return out;
}

Result<void> VerifyCache::import_state(ByteView data) {
  util::BinReader in(data);
  // key (64) + ok (1) + code (1) + message length prefix (8)
  auto n = in.count(/*min_bytes_per_element=*/74);
  if (!n.ok()) return n.error();
  std::vector<std::pair<LinkKey, Outcome>> entries;
  entries.reserve(n.value());
  for (std::size_t i = 0; i < n.value(); ++i) {
    LinkKey key;
    Outcome outcome;
    for (std::array<std::uint64_t, 4>* half : {&key.child, &key.issuer}) {
      for (std::uint64_t& word : *half) {
        auto v = in.u64();
        if (!v.ok()) return v.error();
        word = v.value();
      }
    }
    auto ok_byte = in.u8();
    if (!ok_byte.ok()) return ok_byte.error();
    if (ok_byte.value() > 1) {
      return parse_error("verify-cache snapshot: bad outcome flag");
    }
    outcome.ok = ok_byte.value() == 1;
    auto code_byte = in.u8();
    if (!code_byte.ok()) return code_byte.error();
    auto code = decode_errc(code_byte.value());
    if (!code.ok()) return code.error();
    outcome.code = code.value();
    auto message = in.string();
    if (!message.ok()) return message.error();
    outcome.message = std::move(message.value());
    entries.emplace_back(key, std::move(outcome));
  }
  if (auto ok = in.expect_end(); !ok.ok()) return ok;
  for (auto& [key, outcome] : entries) {
    if (dense_) {
      // Intern the digests so warm entries are reachable from live
      // certificates' ids (same bijection the parser uses).
      const std::uint64_t dense_key =
          (static_cast<std::uint64_t>(x509::cert_fingerprint_ids().intern(
               words_digest(key.child)))
           << 32) |
          x509::cert_spki_ids().intern(words_digest(key.issuer));
      dense_cache_.insert(dense_key, std::move(outcome));
    } else {
      cache_.insert(key, std::move(outcome));
    }
  }
  return {};
}

double VerifyCache::hit_rate() const {
  const auto h = hits_.load(std::memory_order_relaxed);
  const auto m = misses_.load(std::memory_order_relaxed);
  return h + m == 0 ? 0.0
                    : static_cast<double>(h) / static_cast<double>(h + m);
}

bool verify_cache_env_enabled() {
  const char* env = std::getenv("TANGLED_VERIFY_CACHE");
  if (env == nullptr || env[0] == '\0') return true;
  const std::string_view v(env);
  if (v == "1" || v == "on" || v == "true") return true;
  if (v == "0" || v == "off" || v == "false") return false;
  std::fprintf(stderr,
               "TANGLED_VERIFY_CACHE=\"%s\" is not a boolean "
               "(use 0/off/false or 1/on/true)\n",
               env);
  std::exit(2);
}

}  // namespace tangled::pki
