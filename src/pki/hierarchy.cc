#include "pki/hierarchy.h"

#include "obs/obs.h"

namespace tangled::pki {

namespace {

/// The RSA-vs-SimSig issuance split the ablation bench reasons about.
void count_issue([[maybe_unused]] const crypto::SignatureScheme& scheme) {
  TANGLED_OBS_INC("pki.issue.total");
#if TANGLED_OBS_ENABLED
  if (&scheme == &crypto::sim_sig_scheme()) {
    TANGLED_OBS_INC("pki.issue.simsig");
  } else if (&scheme == &crypto::rsa_sha256_scheme()) {
    TANGLED_OBS_INC("pki.issue.rsa_sha256");
  } else {
    TANGLED_OBS_INC("pki.issue.other");
  }
#endif
}

}  // namespace

x509::Name ca_name(const std::string& organization,
                   const std::string& common_name) {
  x509::Name name;
  name.add_country("US").add_organization(organization).add_common_name(
      common_name);
  return name;
}

x509::Name server_name(const std::string& dns_name) {
  x509::Name name;
  name.add_common_name(dns_name);
  return name;
}

Result<CaNode> make_root(const crypto::SignatureScheme& scheme,
                         crypto::KeyPair key, const x509::Name& subject,
                         const x509::Validity& validity, std::uint64_t serial,
                         bool legacy_v1) {
  count_issue(scheme);
  x509::CertificateBuilder builder;
  builder.serial(serial)
      .subject(subject)
      .issuer(subject)
      .not_before(validity.not_before)
      .not_after(validity.not_after)
      .public_key(key.pub);
  if (legacy_v1) {
    builder.legacy_v1();
  } else {
    x509::KeyUsage usage;
    usage.key_cert_sign = true;
    usage.crl_sign = true;
    builder.ca(true).key_usage(usage).key_ids(key.pub, key.pub);
  }
  auto cert = builder.sign(scheme, key);
  if (!cert.ok()) return cert.error();
  return CaNode{std::move(cert).value(), std::move(key)};
}

Result<CaNode> make_intermediate(const crypto::SignatureScheme& scheme,
                                 const CaNode& parent, crypto::KeyPair key,
                                 const x509::Name& subject,
                                 const x509::Validity& validity,
                                 std::uint64_t serial,
                                 std::optional<int> path_len) {
  count_issue(scheme);
  x509::KeyUsage usage;
  usage.key_cert_sign = true;
  usage.crl_sign = true;
  auto cert = x509::CertificateBuilder()
                  .serial(serial)
                  .subject(subject)
                  .issuer(parent.cert.subject())
                  .not_before(validity.not_before)
                  .not_after(validity.not_after)
                  .public_key(key.pub)
                  .ca(true, path_len)
                  .key_usage(usage)
                  .key_ids(key.pub, parent.key.pub)
                  .sign(scheme, parent.key);
  if (!cert.ok()) return cert.error();
  return CaNode{std::move(cert).value(), std::move(key)};
}

Result<x509::Certificate> make_leaf(const crypto::SignatureScheme& scheme,
                                    const CaNode& parent, crypto::KeyPair key,
                                    const std::string& dns_name,
                                    const x509::Validity& validity,
                                    std::uint64_t serial) {
  count_issue(scheme);
  x509::KeyUsage usage;
  usage.digital_signature = true;
  usage.key_encipherment = true;
  x509::ExtendedKeyUsage eku;
  eku.purposes.push_back(asn1::oids::eku_server_auth());
  return x509::CertificateBuilder()
      .serial(serial)
      .subject(server_name(dns_name))
      .issuer(parent.cert.subject())
      .not_before(validity.not_before)
      .not_after(validity.not_after)
      .public_key(key.pub)
      .key_usage(usage)
      .extended_key_usage(eku)
      .dns_names({dns_name})
      .key_ids(key.pub, parent.key.pub)
      .sign(scheme, parent.key);
}

Result<CaHierarchy> CaHierarchy::build(Xoshiro256& rng, const std::string& org,
                                       std::size_t n_intermediates,
                                       bool sim_keys) {
  CaHierarchy h;
  h.sim_keys_ = sim_keys;
  h.scheme_ = sim_keys ? &crypto::sim_sig_scheme() : &crypto::rsa_sha256_scheme();

  auto make_key = [&rng, sim_keys]() {
    return sim_keys ? crypto::generate_sim_keypair(rng)
                    : crypto::generate_rsa_keypair(rng, 1024);
  };

  const x509::Validity validity{asn1::make_time(2010, 1, 1),
                                asn1::make_time(2030, 1, 1)};
  auto root = make_root(*h.scheme_, make_key(), ca_name(org, org + " Root CA"),
                        validity, 1);
  if (!root.ok()) return root.error();
  h.root_ = std::move(root).value();

  for (std::size_t i = 0; i < n_intermediates; ++i) {
    auto inter = make_intermediate(
        *h.scheme_, h.root_, make_key(),
        ca_name(org, org + " Intermediate CA " + std::to_string(i + 1)),
        validity, 100 + i);
    if (!inter.ok()) return inter.error();
    h.intermediates_.push_back(std::move(inter).value());
  }
  return h;
}

Result<x509::Certificate> CaHierarchy::issue(Xoshiro256& rng,
                                             const std::string& dns_name,
                                             std::size_t intermediate_index) {
  const CaNode& parent = intermediates_.empty()
                             ? root_
                             : intermediates_.at(intermediate_index);
  auto key = sim_keys_ ? crypto::generate_sim_keypair(rng)
                       : crypto::generate_rsa_keypair(rng, 1024);
  const x509::Validity validity{asn1::make_time(2013, 1, 1),
                                asn1::make_time(2016, 1, 1)};
  return make_leaf(*scheme_, parent, std::move(key), dns_name, validity,
                   next_serial_++);
}

std::vector<x509::Certificate> CaHierarchy::presented_chain(
    const x509::Certificate& leaf, std::size_t intermediate_index) const {
  std::vector<x509::Certificate> chain{leaf};
  if (!intermediates_.empty()) {
    chain.push_back(intermediates_.at(intermediate_index).cert);
  }
  return chain;
}

}  // namespace tangled::pki
