#include "crypto/key_io.h"

#include "asn1/der.h"
#include "util/base64.h"

namespace tangled::crypto {

namespace {

constexpr std::string_view kPublicLabel = "RSA PUBLIC KEY";
constexpr std::string_view kPrivateLabel = "RSA PRIVATE KEY";

std::string pem_wrap(ByteView der, std::string_view label) {
  std::string out = "-----BEGIN " + std::string(label) + "-----\n";
  out += base64_encode_wrapped(der, 64);
  out += "-----END " + std::string(label) + "-----\n";
  return out;
}

Result<Bytes> pem_unwrap(std::string_view text, std::string_view label) {
  const std::string begin = "-----BEGIN " + std::string(label) + "-----";
  const std::string end = "-----END " + std::string(label) + "-----";
  const std::size_t b = text.find(begin);
  if (b == std::string_view::npos) {
    return not_found_error("no PEM block with label " + std::string(label));
  }
  const std::size_t body_start = b + begin.size();
  const std::size_t e = text.find(end, body_start);
  if (e == std::string_view::npos) return parse_error("PEM BEGIN without END");
  auto der = base64_decode(text.substr(body_start, e - body_start));
  if (!der.has_value()) return parse_error("invalid base64 in PEM body");
  return *der;
}

void write_bignum(asn1::DerWriter& w, const BigNum& value) {
  w.write_integer_unsigned(value.to_bytes());
}

Result<BigNum> read_bignum(asn1::DerReader& r) {
  auto bytes = r.read_integer_unsigned();
  if (!bytes.ok()) return bytes.error();
  return BigNum::from_bytes(bytes.value());
}

}  // namespace

Bytes encode_rsa_public(const RsaPublicKey& key) {
  asn1::DerWriter w;
  w.begin(asn1::Tag::kSequence);
  write_bignum(w, key.n);
  write_bignum(w, key.e);
  w.end();
  return w.take();
}

Result<RsaPublicKey> decode_rsa_public(ByteView der) {
  asn1::DerReader r(der);
  auto seq = r.expect(asn1::Tag::kSequence);
  if (!seq.ok()) return seq.error();
  if (auto end = r.expect_end(); !end.ok()) return end.error();
  asn1::DerReader body(seq.value().body);
  RsaPublicKey key;
  auto n = read_bignum(body);
  if (!n.ok()) return n.error();
  key.n = std::move(n).value();
  auto e = read_bignum(body);
  if (!e.ok()) return e.error();
  key.e = std::move(e).value();
  if (auto end = body.expect_end(); !end.ok()) return end.error();
  if (key.n.is_zero() || key.e.is_zero()) {
    return parse_error("degenerate RSA public key");
  }
  return key;
}

Bytes encode_rsa_private(const RsaPrivateKey& key) {
  // CRT parameters per RFC 8017: dP = d mod (p-1), dQ = d mod (q-1),
  // qInv = q^-1 mod p.
  const BigNum p_1 = key.p - BigNum(1);
  const BigNum q_1 = key.q - BigNum(1);
  const BigNum dp = key.d % p_1;
  const BigNum dq = key.d % q_1;
  const BigNum qinv = key.q.modinv(key.p);

  asn1::DerWriter w;
  w.begin(asn1::Tag::kSequence);
  w.write_integer(0);  // two-prime version
  write_bignum(w, key.pub.n);
  write_bignum(w, key.pub.e);
  write_bignum(w, key.d);
  write_bignum(w, key.p);
  write_bignum(w, key.q);
  write_bignum(w, dp);
  write_bignum(w, dq);
  write_bignum(w, qinv);
  w.end();
  return w.take();
}

Result<RsaPrivateKey> decode_rsa_private(ByteView der) {
  asn1::DerReader r(der);
  auto seq = r.expect(asn1::Tag::kSequence);
  if (!seq.ok()) return seq.error();
  if (auto end = r.expect_end(); !end.ok()) return end.error();
  asn1::DerReader body(seq.value().body);

  auto version = body.read_small_integer();
  if (!version.ok()) return version.error();
  if (version.value() != 0) {
    return unsupported_error("only two-prime RSA keys supported");
  }
  RsaPrivateKey key;
  BigNum dp, dq, qinv;
  BigNum* fields[] = {&key.pub.n, &key.pub.e, &key.d, &key.p,
                      &key.q,     &dp,        &dq,    &qinv};
  for (BigNum* dst : fields) {
    auto value = read_bignum(body);
    if (!value.ok()) return value.error();
    *dst = std::move(value).value();
  }
  if (auto end = body.expect_end(); !end.ok()) return end.error();

  // Structural validation: n = p*q and the CRT parameters are consistent.
  if (!(key.p * key.q == key.pub.n)) {
    return parse_error("RSA private key: n != p*q");
  }
  if (!(key.d % (key.p - BigNum(1)) == dp) ||
      !(key.d % (key.q - BigNum(1)) == dq)) {
    return parse_error("RSA private key: inconsistent CRT exponents");
  }
  if (!((key.q * qinv) % key.p == BigNum(1))) {
    return parse_error("RSA private key: inconsistent CRT coefficient");
  }
  return key;
}

std::string rsa_public_to_pem(const RsaPublicKey& key) {
  return pem_wrap(encode_rsa_public(key), kPublicLabel);
}

Result<RsaPublicKey> rsa_public_from_pem(std::string_view pem) {
  auto der = pem_unwrap(pem, kPublicLabel);
  if (!der.ok()) return der.error();
  return decode_rsa_public(der.value());
}

std::string rsa_private_to_pem(const RsaPrivateKey& key) {
  return pem_wrap(encode_rsa_private(key), kPrivateLabel);
}

Result<RsaPrivateKey> rsa_private_from_pem(std::string_view pem) {
  auto der = pem_unwrap(pem, kPrivateLabel);
  if (!der.ok()) return der.error();
  return decode_rsa_private(der.value());
}

}  // namespace tangled::crypto
