// Arbitrary-precision unsigned integers, sized for RSA (≤ 4096 bits).
//
// Representation: little-endian vector of 32-bit limbs, no leading zero
// limbs (zero is an empty vector). Unsigned only — RSA needs no negatives;
// subtraction requires a >= b and asserts otherwise.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"

namespace tangled::crypto {

class BigNum;

/// Quotient/remainder pair returned by BigNum::divmod.
struct BigNumDivMod;

class BigNum {
 public:
  BigNum() = default;
  explicit BigNum(std::uint64_t value);

  /// Big-endian byte import/export (the DER INTEGER magnitude convention).
  static BigNum from_bytes(ByteView be);
  Bytes to_bytes() const;
  /// Fixed-width big-endian export, left-padded with zeros. Asserts that the
  /// value fits.
  Bytes to_bytes_padded(std::size_t width) const;

  static BigNum from_hex(std::string_view hex);
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;

  std::strong_ordering operator<=>(const BigNum& other) const;
  bool operator==(const BigNum& other) const = default;

  BigNum operator+(const BigNum& other) const;
  /// Requires *this >= other.
  BigNum operator-(const BigNum& other) const;
  BigNum operator*(const BigNum& other) const;
  BigNum operator<<(std::size_t bits) const;
  BigNum operator>>(std::size_t bits) const;

  using DivMod = BigNumDivMod;
  /// Knuth Algorithm D. Asserts divisor != 0.
  DivMod divmod(const BigNum& divisor) const;
  BigNum operator/(const BigNum& other) const;
  BigNum operator%(const BigNum& other) const;

  /// (this ^ exponent) mod modulus; modulus must be > 1. Dispatches to the
  /// Montgomery path for odd multi-limb moduli when TANGLED_MONTGOMERY is
  /// on, the schoolbook path otherwise; both produce identical results.
  BigNum modexp(const BigNum& exponent, const BigNum& modulus) const;

  /// Square-and-multiply with divmod reduction — the original path, kept
  /// callable as the differential-test reference and the feature-off arm.
  BigNum modexp_schoolbook(const BigNum& exponent,
                           const BigNum& modulus) const;

  /// Montgomery-form (CIOS) exponentiation; modulus must be odd and > 1.
  BigNum modexp_montgomery(const BigNum& exponent,
                           const BigNum& modulus) const;

  /// Greatest common divisor (binary-free, Euclid with divmod).
  static BigNum gcd(BigNum a, BigNum b);

  /// Modular inverse of *this mod m; returns zero BigNum if not invertible.
  BigNum modinv(const BigNum& m) const;

  /// Uniform random value with exactly `bits` bits (top bit set).
  static BigNum random_with_bits(Xoshiro256& rng, std::size_t bits);
  /// Uniform random value in [0, bound).
  static BigNum random_below(Xoshiro256& rng, const BigNum& bound);

  /// Miller-Rabin with `rounds` random bases (plus deterministic small-prime
  /// trial division). Probabilistic but with error < 4^-rounds.
  bool is_probable_prime(Xoshiro256& rng, int rounds = 20) const;

  /// Generates a random prime with exactly `bits` bits.
  static BigNum generate_prime(Xoshiro256& rng, std::size_t bits);

  std::uint64_t to_u64() const;  // asserts the value fits

 private:
  void trim();

  std::vector<std::uint32_t> limbs_;  // little-endian, no trailing zeros
};

struct BigNumDivMod {
  BigNum quotient;
  BigNum remainder;
};

inline BigNum BigNum::operator/(const BigNum& other) const {
  return divmod(other).quotient;
}
inline BigNum BigNum::operator%(const BigNum& other) const {
  return divmod(other).remainder;
}

}  // namespace tangled::crypto
