#include "crypto/signature.h"

#include "crypto/hash.h"

namespace tangled::crypto {

KeyPair generate_rsa_keypair(Xoshiro256& rng, std::size_t bits) {
  KeyPair kp;
  RsaPrivateKey priv = rsa_generate(rng, bits);
  kp.pub = priv.pub;
  kp.priv = std::move(priv);
  return kp;
}

KeyPair generate_sim_keypair(Xoshiro256& rng, std::size_t bits) {
  KeyPair kp;
  kp.pub.n = BigNum::random_with_bits(rng, bits);
  kp.pub.e = BigNum(65537);
  return kp;
}

namespace {

class RsaSha256Scheme final : public SignatureScheme {
 public:
  const asn1::Oid& algorithm_oid() const override {
    return asn1::oids::sha256_with_rsa();
  }

  Result<Bytes> sign(const KeyPair& signer, ByteView tbs) const override {
    if (!signer.can_rsa_sign()) {
      return state_error("RSA signing requires a private key");
    }
    return rsa_sign(*signer.priv, DigestAlg::kSha256, tbs);
  }

  Result<void> verify(const RsaPublicKey& issuer, ByteView tbs,
                      ByteView signature) const override {
    return rsa_verify(issuer, DigestAlg::kSha256, tbs, signature);
  }
};

class RsaSha1Scheme final : public SignatureScheme {
 public:
  const asn1::Oid& algorithm_oid() const override {
    return asn1::oids::sha1_with_rsa();
  }

  Result<Bytes> sign(const KeyPair& signer, ByteView tbs) const override {
    if (!signer.can_rsa_sign()) {
      return state_error("RSA signing requires a private key");
    }
    return rsa_sign(*signer.priv, DigestAlg::kSha1, tbs);
  }

  Result<void> verify(const RsaPublicKey& issuer, ByteView tbs,
                      ByteView signature) const override {
    return rsa_verify(issuer, DigestAlg::kSha1, tbs, signature);
  }
};

class SimSigScheme final : public SignatureScheme {
 public:
  const asn1::Oid& algorithm_oid() const override {
    return asn1::oids::sim_sig();
  }

  Result<Bytes> sign(const KeyPair& signer, ByteView tbs) const override {
    return compute(signer.pub, tbs);
  }

  Result<void> verify(const RsaPublicKey& issuer, ByteView tbs,
                      ByteView signature) const override {
    const Bytes expected = compute(issuer, tbs);
    if (!bytes_equal(expected, signature)) {
      return verify_error("SimSig mismatch");
    }
    return {};
  }

 private:
  static Bytes compute(const RsaPublicKey& key, ByteView tbs) {
    Sha256 h;
    const Bytes n = key.n.to_bytes();
    h.update(n);
    h.update(tbs);
    const auto d = h.digest();
    return Bytes(d.begin(), d.end());
  }
};

}  // namespace

const SignatureScheme& rsa_sha256_scheme() {
  static const RsaSha256Scheme scheme;
  return scheme;
}

const SignatureScheme& sim_sig_scheme() {
  static const SimSigScheme scheme;
  return scheme;
}

const SignatureScheme* scheme_for_oid(const asn1::Oid& oid) {
  if (oid == asn1::oids::sha256_with_rsa()) return &rsa_sha256_scheme();
  if (oid == asn1::oids::sim_sig()) return &sim_sig_scheme();
  if (oid == asn1::oids::sha1_with_rsa()) {
    static const RsaSha1Scheme scheme;
    return &scheme;
  }
  return nullptr;
}

Result<void> verify_signature(const asn1::Oid& oid, const RsaPublicKey& issuer,
                              ByteView tbs, ByteView signature) {
  const SignatureScheme* scheme = scheme_for_oid(oid);
  if (scheme == nullptr) {
    return unsupported_error("unknown signature algorithm " + oid.to_dotted());
  }
  return scheme->verify(issuer, tbs, signature);
}

Sha256 sim_sig_prefix(const RsaPublicKey& issuer) {
  Sha256 h;
  const Bytes n = issuer.n.to_bytes();
  h.update(n);
  return h;
}

Result<void> sim_sig_verify_prefixed(const Sha256& prefix, ByteView tbs,
                                     ByteView signature) {
  Sha256 h = prefix;
  h.update(tbs);
  const auto expected = h.digest();
  if (!bytes_equal(expected, signature)) {
    return verify_error("SimSig mismatch");
  }
  return {};
}

}  // namespace tangled::crypto
