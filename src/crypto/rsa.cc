#include "crypto/rsa.h"

#include "asn1/der.h"
#include "crypto/hash.h"

namespace tangled::crypto {

namespace {

Bytes digest_message(DigestAlg alg, ByteView message) {
  switch (alg) {
    case DigestAlg::kSha1: return Sha1::hash(message);
    case DigestAlg::kSha256: return Sha256::hash(message);
  }
  return {};
}

const asn1::Oid& digest_oid(DigestAlg alg) {
  switch (alg) {
    case DigestAlg::kSha1: return asn1::oids::sha1();
    case DigestAlg::kSha256: return asn1::oids::sha256();
  }
  return asn1::oids::sha256();
}

/// DigestInfo ::= SEQUENCE { digestAlgorithm AlgorithmIdentifier, digest OCTET STRING }
Bytes digest_info(DigestAlg alg, ByteView digest) {
  asn1::DerWriter w;
  w.begin(asn1::Tag::kSequence);
  w.begin(asn1::Tag::kSequence);
  w.write_oid(digest_oid(alg));
  w.write_null();
  w.end();
  w.write_octet_string(digest);
  w.end();
  return w.take();
}

}  // namespace

RsaPrivateKey rsa_generate(Xoshiro256& rng, std::size_t bits) {
  const BigNum e(65537);
  while (true) {
    const std::size_t half = bits / 2;
    const BigNum p = BigNum::generate_prime(rng, half);
    const BigNum q = BigNum::generate_prime(rng, bits - half);
    if (p == q) continue;
    const BigNum n = p * q;
    if (n.bit_length() != bits) continue;
    const BigNum phi = (p - BigNum(1)) * (q - BigNum(1));
    const BigNum d = e.modinv(phi);
    if (d.is_zero()) continue;  // e not coprime with phi; re-draw
    RsaPrivateKey key;
    key.pub.n = n;
    key.pub.e = e;
    key.d = d;
    key.p = p;
    key.q = q;
    return key;
  }
}

Result<Bytes> pkcs1_v15_encode(DigestAlg alg, ByteView message,
                               std::size_t em_len) {
  const Bytes digest = digest_message(alg, message);
  const Bytes t = digest_info(alg, digest);
  if (em_len < t.size() + 11) {
    return range_error("RSA modulus too small for DigestInfo");
  }
  Bytes em;
  em.reserve(em_len);
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), em_len - t.size() - 3, 0xff);
  em.push_back(0x00);
  append(em, t);
  return em;
}

Result<Bytes> rsa_sign(const RsaPrivateKey& key, DigestAlg alg,
                       ByteView message) {
  const std::size_t k = key.pub.modulus_bytes();
  auto em = pkcs1_v15_encode(alg, message, k);
  if (!em.ok()) return em;
  const BigNum m = BigNum::from_bytes(em.value());
  const BigNum s = m.modexp(key.d, key.pub.n);
  return s.to_bytes_padded(k);
}

Result<void> rsa_verify(const RsaPublicKey& key, DigestAlg alg, ByteView message,
                        ByteView signature) {
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) {
    return verify_error("signature length does not match modulus");
  }
  const BigNum s = BigNum::from_bytes(signature);
  if (s >= key.n) return verify_error("signature value out of range");
  const BigNum m = s.modexp(key.e, key.n);
  const Bytes em = m.to_bytes_padded(k);
  auto expected = pkcs1_v15_encode(alg, message, k);
  if (!expected.ok()) return expected.error();
  if (!bytes_equal(em, expected.value())) {
    return verify_error("PKCS#1 v1.5 padding mismatch");
  }
  return {};
}

}  // namespace tangled::crypto
