#include "crypto/bignum.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "util/features.h"

namespace tangled::crypto {

namespace {

constexpr std::uint64_t kBase = 1ull << 32;

// Small primes for trial division ahead of Miller-Rabin.
constexpr std::uint32_t kSmallPrimes[] = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

// n0' = -n[0]^{-1} mod 2^32 for odd n[0], via Hensel lifting: starting from
// inv = n0 (correct mod 8), each Newton step inv *= 2 - n0*inv doubles the
// number of correct low bits.
std::uint32_t mont_n0_prime(std::uint32_t n0) {
  std::uint32_t inv = n0;
  for (int i = 0; i < 4; ++i) inv *= 2u - n0 * inv;
  return ~inv + 1u;
}

// Coarsely Integrated Operand Scanning Montgomery multiplication (Koç et
// al.): out = a * b * R^{-1} mod n with R = 2^(32s), for a, b < n, n odd,
// all s limbs. `t` is caller-provided scratch of s+2 limbs. `out` may alias
// `a` or `b` — it is only written after both are fully consumed.
void mont_mul(const std::uint32_t* a, const std::uint32_t* b,
              const std::uint32_t* n, std::uint32_t n0p, std::size_t s,
              std::uint32_t* t, std::uint32_t* out) {
  std::fill(t, t + s + 2, 0u);
  for (std::size_t i = 0; i < s; ++i) {
    const std::uint64_t bi = b[i];
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < s; ++j) {
      const std::uint64_t cur =
          t[j] + static_cast<std::uint64_t>(a[j]) * bi + carry;
      t[j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::uint64_t cur = t[s] + carry;
    t[s] = static_cast<std::uint32_t>(cur);
    t[s + 1] = static_cast<std::uint32_t>(cur >> 32);

    const std::uint64_t m = static_cast<std::uint32_t>(t[0] * n0p);
    carry = (t[0] + m * n[0]) >> 32;  // low word becomes 0, dropped below
    for (std::size_t j = 1; j < s; ++j) {
      const std::uint64_t cur2 = t[j] + m * n[j] + carry;
      t[j - 1] = static_cast<std::uint32_t>(cur2);
      carry = cur2 >> 32;
    }
    const std::uint64_t cs = static_cast<std::uint64_t>(t[s]) + carry;
    t[s - 1] = static_cast<std::uint32_t>(cs);
    t[s] = t[s + 1] + static_cast<std::uint32_t>(cs >> 32);
  }
  // t in [0, 2n): subtract n once if needed.
  bool ge = t[s] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = s; i > 0; --i) {
      if (t[i - 1] != n[i - 1]) {
        ge = t[i - 1] > n[i - 1];
        break;
      }
    }
  }
  if (ge) {
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < s; ++i) {
      const std::int64_t d = static_cast<std::int64_t>(t[i]) -
                             static_cast<std::int64_t>(n[i]) - borrow;
      out[i] = static_cast<std::uint32_t>(d & 0xffffffff);
      borrow = d < 0 ? 1 : 0;
    }
  } else {
    std::copy(t, t + s, out);
  }
}

}  // namespace

BigNum::BigNum(std::uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(value & 0xffffffff));
    if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
  }
}

void BigNum::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigNum BigNum::from_bytes(ByteView be) {
  BigNum out;
  out.limbs_.reserve((be.size() + 3) / 4);
  std::uint32_t limb = 0;
  int shift = 0;
  for (std::size_t i = be.size(); i > 0; --i) {
    limb |= static_cast<std::uint32_t>(be[i - 1]) << shift;
    shift += 8;
    if (shift == 32) {
      out.limbs_.push_back(limb);
      limb = 0;
      shift = 0;
    }
  }
  if (shift != 0) out.limbs_.push_back(limb);
  out.trim();
  return out;
}

Bytes BigNum::to_bytes() const {
  if (limbs_.empty()) return Bytes{0x00};
  Bytes out;
  out.reserve(limbs_.size() * 4);
  for (std::size_t i = limbs_.size(); i > 0; --i) {
    const std::uint32_t limb = limbs_[i - 1];
    out.push_back(static_cast<std::uint8_t>(limb >> 24));
    out.push_back(static_cast<std::uint8_t>(limb >> 16));
    out.push_back(static_cast<std::uint8_t>(limb >> 8));
    out.push_back(static_cast<std::uint8_t>(limb));
  }
  // Strip leading zeros but keep at least one byte.
  std::size_t start = 0;
  while (start + 1 < out.size() && out[start] == 0) ++start;
  return Bytes(out.begin() + static_cast<std::ptrdiff_t>(start), out.end());
}

Bytes BigNum::to_bytes_padded(std::size_t width) const {
  Bytes raw = to_bytes();
  if (raw.size() == 1 && raw[0] == 0) raw.clear();
  assert(raw.size() <= width && "value does not fit the requested width");
  Bytes out(width - raw.size(), 0x00);
  append(out, raw);
  return out;
}

BigNum BigNum::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
  const auto bytes = tangled::from_hex(padded);
  assert(bytes.has_value() && "invalid hex literal");
  return from_bytes(*bytes);
}

std::string BigNum::to_hex() const {
  const Bytes b = to_bytes();
  std::string h = tangled::to_hex(b);
  // Strip a single leading zero nibble for canonical form.
  std::size_t start = 0;
  while (start + 1 < h.size() && h[start] == '0') ++start;
  return h.substr(start);
}

std::size_t BigNum::bit_length() const {
  if (limbs_.empty()) return 0;
  const std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  return bits + (32 - static_cast<std::size_t>(std::countl_zero(top)));
}

bool BigNum::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

std::strong_ordering BigNum::operator<=>(const BigNum& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() <=> other.limbs_.size();
  }
  for (std::size_t i = limbs_.size(); i > 0; --i) {
    if (limbs_[i - 1] != other.limbs_[i - 1]) {
      return limbs_[i - 1] <=> other.limbs_[i - 1];
    }
  }
  return std::strong_ordering::equal;
}

BigNum BigNum::operator+(const BigNum& other) const {
  BigNum out;
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.reserve(n + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < other.limbs_.size()) sum += other.limbs_[i];
    out.limbs_.push_back(static_cast<std::uint32_t>(sum & 0xffffffff));
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigNum BigNum::operator-(const BigNum& other) const {
  assert(*this >= other && "unsigned subtraction underflow");
  BigNum out;
  out.limbs_.reserve(limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < other.limbs_.size()) diff -= other.limbs_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_.push_back(static_cast<std::uint32_t>(diff));
  }
  assert(borrow == 0);
  out.trim();
  return out;
}

BigNum BigNum::operator*(const BigNum& other) const {
  if (is_zero() || other.is_zero()) return BigNum();
  BigNum out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t a = limbs_[i];
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(out.limbs_[i + j]) + a * other.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur & 0xffffffff);
      carry = cur >> 32;
    }
    std::size_t k = i + other.limbs_.size();
    while (carry) {
      const std::uint64_t cur = static_cast<std::uint64_t>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur & 0xffffffff);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigNum BigNum::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigNum out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v & 0xffffffff);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigNum BigNum::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigNum();
  const std::size_t bit_shift = bits % 32;
  BigNum out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

BigNum::DivMod BigNum::divmod(const BigNum& divisor) const {
  assert(!divisor.is_zero() && "division by zero");
  if (*this < divisor) return {BigNum(), *this};
  if (divisor.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    const std::uint64_t d = divisor.limbs_[0];
    BigNum q;
    q.limbs_.assign(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i > 0; --i) {
      const std::uint64_t cur = (rem << 32) | limbs_[i - 1];
      q.limbs_[i - 1] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {std::move(q), BigNum(rem)};
  }

  // Knuth Algorithm D with base 2^32. Normalize so the divisor's top limb
  // has its high bit set.
  const int shift = std::countl_zero(divisor.limbs_.back());
  const BigNum u = *this << static_cast<std::size_t>(shift);
  const BigNum v = divisor << static_cast<std::size_t>(shift);
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  std::vector<std::uint32_t> un(u.limbs_);
  un.push_back(0);  // u has m+n+1 limbs during the loop
  const std::vector<std::uint32_t>& vn = v.limbs_;

  BigNum q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j > 0; --j) {
    const std::size_t jj = j - 1;
    // Estimate q̂ = (un[jj+n]*B + un[jj+n-1]) / vn[n-1].
    const std::uint64_t numerator =
        (static_cast<std::uint64_t>(un[jj + n]) << 32) | un[jj + n - 1];
    std::uint64_t qhat = numerator / vn[n - 1];
    std::uint64_t rhat = numerator % vn[n - 1];
    while (qhat >= kBase ||
           qhat * vn[n - 2] > ((rhat << 32) | un[jj + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= kBase) break;
    }
    // Multiply and subtract: un[jj..jj+n] -= qhat * vn.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * vn[i] + carry;
      carry = p >> 32;
      const std::int64_t t = static_cast<std::int64_t>(un[jj + i]) -
                             static_cast<std::int64_t>(p & 0xffffffff) - borrow;
      un[jj + i] = static_cast<std::uint32_t>(t & 0xffffffff);
      borrow = t < 0 ? 1 : 0;
    }
    const std::int64_t t = static_cast<std::int64_t>(un[jj + n]) -
                           static_cast<std::int64_t>(carry) - borrow;
    un[jj + n] = static_cast<std::uint32_t>(t & 0xffffffff);

    if (t < 0) {
      // q̂ was one too large: add back.
      --qhat;
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s =
            static_cast<std::uint64_t>(un[jj + i]) + vn[i] + c;
        un[jj + i] = static_cast<std::uint32_t>(s & 0xffffffff);
        c = s >> 32;
      }
      un[jj + n] = static_cast<std::uint32_t>(un[jj + n] + c);
    }
    q.limbs_[jj] = static_cast<std::uint32_t>(qhat);
  }
  q.trim();

  BigNum r;
  r.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
  r.trim();
  r = r >> static_cast<std::size_t>(shift);
  return {std::move(q), std::move(r)};
}

BigNum BigNum::modexp(const BigNum& exponent, const BigNum& modulus) const {
  assert(modulus > BigNum(1));
  // Single-limb moduli already reduce through the fast divmod path; the
  // Montgomery transform only pays for itself on multi-limb odd moduli.
  if (util::montgomery_enabled() && modulus.is_odd() &&
      modulus.limbs_.size() > 1) {
    return modexp_montgomery(exponent, modulus);
  }
  return modexp_schoolbook(exponent, modulus);
}

BigNum BigNum::modexp_schoolbook(const BigNum& exponent,
                                 const BigNum& modulus) const {
  assert(modulus > BigNum(1));
  BigNum base = *this % modulus;
  BigNum result(1);
  const std::size_t bits = exponent.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exponent.bit(i)) result = (result * base) % modulus;
    base = (base * base) % modulus;
  }
  return result;
}

BigNum BigNum::modexp_montgomery(const BigNum& exponent,
                                 const BigNum& modulus) const {
  assert(modulus > BigNum(1));
  assert(modulus.is_odd() && "Montgomery form requires an odd modulus");
  const std::size_t s = modulus.limbs_.size();
  const std::uint32_t n0p = mont_n0_prime(modulus.limbs_[0]);
  const std::uint32_t* n = modulus.limbs_.data();

  // R^2 mod n, computed once per call with the generic machinery; the
  // exponentiation loop itself never divides.
  const BigNum r2 = (BigNum(1) << (64 * s)) % modulus;
  auto padded = [s](const BigNum& x) {
    std::vector<std::uint32_t> v = x.limbs_;
    v.resize(s, 0u);
    return v;
  };
  const std::vector<std::uint32_t> r2v = padded(r2);
  std::vector<std::uint32_t> base_m = padded(*this % modulus);
  std::vector<std::uint32_t> one(s, 0u);
  one[0] = 1u;

  std::vector<std::uint32_t> t(s + 2);
  std::vector<std::uint32_t> result_m(s);
  // Enter Montgomery form: x_m = x * R mod n = mont_mul(x, R^2).
  mont_mul(base_m.data(), r2v.data(), n, n0p, s, t.data(), base_m.data());
  mont_mul(one.data(), r2v.data(), n, n0p, s, t.data(), result_m.data());

  const std::size_t bits = exponent.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exponent.bit(i)) {
      mont_mul(result_m.data(), base_m.data(), n, n0p, s, t.data(),
               result_m.data());
    }
    mont_mul(base_m.data(), base_m.data(), n, n0p, s, t.data(),
             base_m.data());
  }
  // Leave Montgomery form: x = mont_mul(x_m, 1).
  mont_mul(result_m.data(), one.data(), n, n0p, s, t.data(), result_m.data());

  BigNum out;
  out.limbs_ = std::move(result_m);
  out.trim();
  return out;
}

BigNum BigNum::gcd(BigNum a, BigNum b) {
  while (!b.is_zero()) {
    BigNum r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigNum BigNum::modinv(const BigNum& m) const {
  // Extended Euclid tracking only the Bezout coefficient of *this, with
  // signs managed explicitly (unsigned storage).
  if (m <= BigNum(1)) return BigNum();
  BigNum r0 = m;
  BigNum r1 = *this % m;
  BigNum t0;        // 0
  BigNum t1(1);
  bool t0_neg = false;
  bool t1_neg = false;
  while (!r1.is_zero()) {
    const auto dm = r0.divmod(r1);
    // t2 = t0 - q*t1 with sign tracking.
    const BigNum qt1 = dm.quotient * t1;
    BigNum t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // Same sign: subtract magnitudes.
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        t2_neg = t0_neg;
      } else {
        t2 = qt1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt1;
      t2_neg = t0_neg;
    }
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
    r0 = std::move(r1);
    r1 = dm.remainder;
  }
  if (!(r0 == BigNum(1))) return BigNum();  // not coprime
  if (t0_neg) {
    const BigNum reduced = t0 % m;
    return reduced.is_zero() ? BigNum() : m - reduced;
  }
  return t0 % m;
}

BigNum BigNum::random_with_bits(Xoshiro256& rng, std::size_t bits) {
  assert(bits > 0);
  const std::size_t n_bytes = (bits + 7) / 8;
  Bytes raw = rng.bytes(n_bytes);
  // Clear excess bits, then force the top bit so bit_length() == bits.
  const std::size_t excess = n_bytes * 8 - bits;
  raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
  raw[0] |= static_cast<std::uint8_t>(0x80 >> excess);
  return from_bytes(raw);
}

BigNum BigNum::random_below(Xoshiro256& rng, const BigNum& bound) {
  assert(!bound.is_zero());
  const std::size_t bits = bound.bit_length();
  const std::size_t n_bytes = (bits + 7) / 8;
  const std::size_t excess = n_bytes * 8 - bits;
  // Rejection sampling over [0, 2^bits); succeeds with probability > 1/2.
  while (true) {
    Bytes raw = rng.bytes(n_bytes);
    raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
    BigNum candidate = from_bytes(raw);
    if (candidate < bound) return candidate;
  }
}

bool BigNum::is_probable_prime(Xoshiro256& rng, int rounds) const {
  if (*this < BigNum(2)) return false;
  for (std::uint32_t p : kSmallPrimes) {
    const BigNum bp(p);
    if (*this == bp) return true;
    if ((*this % bp).is_zero()) return false;
  }
  // Write n-1 = d * 2^r with d odd.
  const BigNum n_minus_1 = *this - BigNum(1);
  std::size_t r = 0;
  BigNum d = n_minus_1;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }
  for (int round = 0; round < rounds; ++round) {
    // Base in [2, n-2].
    const BigNum span = *this - BigNum(4);
    const BigNum a = BigNum(2) + random_below(rng, span + BigNum(1));
    BigNum x = a.modexp(d, *this);
    if (x == BigNum(1) || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 1; i < r; ++i) {
      x = (x * x) % *this;
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigNum BigNum::generate_prime(Xoshiro256& rng, std::size_t bits) {
  assert(bits >= 16);
  while (true) {
    BigNum candidate = random_with_bits(rng, bits);
    if (!candidate.is_odd()) candidate = candidate + BigNum(1);
    if (candidate.is_probable_prime(rng, 12)) return candidate;
  }
}

std::uint64_t BigNum::to_u64() const {
  assert(limbs_.size() <= 2);
  std::uint64_t v = 0;
  if (limbs_.size() >= 2) v = static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (!limbs_.empty()) v |= limbs_[0];
  return v;
}

}  // namespace tangled::crypto
