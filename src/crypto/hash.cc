#include "crypto/hash.h"

#include <algorithm>
#include <cstring>

#include "util/features.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define TANGLED_SHA_NI_POSSIBLE 1
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace tangled::crypto {

namespace {

std::uint32_t rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}
std::uint32_t rotr32(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}
void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}
std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

constexpr std::uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

void sha256_compress_scalar(std::uint32_t* state, const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr32(w[i - 15], 7) ^ rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr32(w[i - 2], 17) ^ rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kSha256K[i] + w[i];
    const std::uint32_t s0 = rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g; g = f; f = e; e = d + t1;
    d = c; c = b; b = a; a = t1 + t2;
  }
  state[0] += a; state[1] += b; state[2] += c; state[3] += d;
  state[4] += e; state[5] += f; state[6] += g; state[7] += h;
}

#if defined(TANGLED_SHA_NI_POSSIBLE)

bool cpu_has_sha_ni() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  const bool ssse3 = (ecx & (1u << 9)) != 0;
  const bool sse41 = (ecx & (1u << 19)) != 0;
  if (!ssse3 || !sse41) return false;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (ebx & (1u << 29)) != 0;  // SHA extensions
}

// Packs the FIPS a..h state into the ABEF/CDGH register layout the
// sha256rnds2 instruction expects (the canonical Intel arrangement).
__attribute__((target("sha,sse4.1,ssse3")))
inline void shani_pack(const std::uint32_t* state, __m128i* abef,
                       __m128i* cdgh) {
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  __m128i st1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  st1 = _mm_shuffle_epi32(st1, 0x1B);        // EFGH
  *abef = _mm_alignr_epi8(tmp, st1, 8);      // ABEF
  *cdgh = _mm_blend_epi16(st1, tmp, 0xF0);   // CDGH
}

__attribute__((target("sha,sse4.1,ssse3")))
inline void shani_unpack(__m128i abef, __m128i cdgh, std::uint32_t* state) {
  const __m128i tmp = _mm_shuffle_epi32(abef, 0x1B);   // FEBA
  const __m128i st1 = _mm_shuffle_epi32(cdgh, 0xB1);   // DCHG
  const __m128i abcd = _mm_blend_epi16(tmp, st1, 0xF0);
  const __m128i efgh = _mm_alignr_epi8(st1, tmp, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), abcd);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), efgh);
}

// One 64-round SHA-256 compression over up to four independent states, one
// block each, with the lanes' instructions interleaved so the rnds2 latency
// chains overlap. `m` holds the message schedule as a four-group ring:
// group g consumes m[g&3] and, through round 12, rewrites that slot with
// group g+4 via msg1/msg2 (W[t+16] = σ1(W[t+14]) + W[t+9] + σ0(W[t+1]) + W[t]).
__attribute__((target("sha,sse4.1,ssse3")))
void sha256_compress_shani_lanes(std::uint32_t* const* states,
                                 const std::uint8_t* const* blocks,
                                 int lanes) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);
  __m128i s0[4], s1[4], save0[4], save1[4], m[4][4];
  for (int l = 0; l < lanes; ++l) {
    shani_pack(states[l], &s0[l], &s1[l]);
    save0[l] = s0[l];
    save1[l] = s1[l];
    for (int g = 0; g < 4; ++g) {
      m[l][g] = _mm_shuffle_epi8(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(blocks[l] + 16 * g)),
          kShuffle);
    }
  }
  for (int g = 0; g < 16; ++g) {
    const __m128i k =
        _mm_set_epi32(static_cast<int>(kSha256K[4 * g + 3]),
                      static_cast<int>(kSha256K[4 * g + 2]),
                      static_cast<int>(kSha256K[4 * g + 1]),
                      static_cast<int>(kSha256K[4 * g + 0]));
    for (int l = 0; l < lanes; ++l) {
      const __m128i w0 = m[l][g & 3];
      __m128i msg = _mm_add_epi32(w0, k);
      s1[l] = _mm_sha256rnds2_epu32(s1[l], s0[l], msg);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      s0[l] = _mm_sha256rnds2_epu32(s0[l], s1[l], msg);
      if (g < 12) {
        const __m128i w1 = m[l][(g + 1) & 3];
        const __m128i w2 = m[l][(g + 2) & 3];
        const __m128i w3 = m[l][(g + 3) & 3];
        __m128i t = _mm_sha256msg1_epu32(w0, w1);
        t = _mm_add_epi32(t, _mm_alignr_epi8(w3, w2, 4));
        m[l][g & 3] = _mm_sha256msg2_epu32(t, w3);
      }
    }
  }
  for (int l = 0; l < lanes; ++l) {
    s0[l] = _mm_add_epi32(s0[l], save0[l]);
    s1[l] = _mm_add_epi32(s1[l], save1[l]);
    shani_unpack(s0[l], s1[l], states[l]);
  }
}

// Single-stream multi-block variant: the state stays packed in registers
// across the whole run, so long inputs (DER fingerprints) pay the
// pack/unpack shuffles once instead of per block.
__attribute__((target("sha,sse4.1,ssse3")))
void sha256_compress_shani_stream(std::uint32_t* state,
                                  const std::uint8_t* data,
                                  std::size_t blocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);
  __m128i s0, s1;
  shani_pack(state, &s0, &s1);
  for (std::size_t b = 0; b < blocks; ++b, data += 64) {
    const __m128i save0 = s0;
    const __m128i save1 = s1;
    __m128i m[4];
    for (int g = 0; g < 4; ++g) {
      m[g] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16 * g)),
          kShuffle);
    }
    for (int g = 0; g < 16; ++g) {
      const __m128i k =
          _mm_set_epi32(static_cast<int>(kSha256K[4 * g + 3]),
                        static_cast<int>(kSha256K[4 * g + 2]),
                        static_cast<int>(kSha256K[4 * g + 1]),
                        static_cast<int>(kSha256K[4 * g + 0]));
      const __m128i w0 = m[g & 3];
      __m128i msg = _mm_add_epi32(w0, k);
      s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      s0 = _mm_sha256rnds2_epu32(s0, s1, msg);
      if (g < 12) {
        const __m128i w1 = m[(g + 1) & 3];
        const __m128i w2 = m[(g + 2) & 3];
        const __m128i w3 = m[(g + 3) & 3];
        __m128i t = _mm_sha256msg1_epu32(w0, w1);
        t = _mm_add_epi32(t, _mm_alignr_epi8(w3, w2, 4));
        m[g & 3] = _mm_sha256msg2_epu32(t, w3);
      }
    }
    s0 = _mm_add_epi32(s0, save0);
    s1 = _mm_add_epi32(s1, save1);
  }
  shani_unpack(s0, s1, state);
}

#else  // !TANGLED_SHA_NI_POSSIBLE

bool cpu_has_sha_ni() { return false; }

#endif

/// Whether the hardware engine should be used right now: the CPU check is
/// latched once, the feature toggle is re-read so ablation passes can flip
/// it mid-process.
bool sha256_hw_active() {
  static const bool available = cpu_has_sha_ni();
  return available && util::batch_hash_enabled();
}

void sha256_compress_blocks(std::uint32_t* state, const std::uint8_t* data,
                            std::size_t blocks) {
#if defined(TANGLED_SHA_NI_POSSIBLE)
  if (sha256_hw_active()) {
    sha256_compress_shani_stream(state, data, blocks);
    return;
  }
#endif
  for (std::size_t b = 0; b < blocks; ++b, data += 64) {
    sha256_compress_scalar(state, data);
  }
}

/// Streams one batch lane's padded message, block by block. The padded
/// stream is the concatenation of `parts` followed by 0x80, zeros, and the
/// big-endian 64-bit bit length, rounded up to whole 64-byte blocks —
/// exactly what Sha256::update + digest would feed the compressor.
struct BatchLaneCursor {
  std::span<const ByteView> parts;
  std::size_t part_idx = 0;
  std::size_t part_off = 0;
  std::uint64_t total = 0;         // message bytes
  std::uint64_t blocks_total = 0;  // padded stream, in blocks
  std::uint64_t blocks_done = 0;
  std::uint32_t state[8];
  std::uint8_t scratch[64];

  void init(std::span<const ByteView> p) {
    static constexpr std::uint32_t kIv[8] = {
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
        0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
    parts = p;
    total = 0;
    for (const ByteView part : parts) total += part.size();
    blocks_total = (total + 8) / 64 + 1;
    std::memcpy(state, kIv, sizeof(state));
  }

  bool done() const { return blocks_done == blocks_total; }

  const std::uint8_t* next_block() {
    const std::uint64_t pos = blocks_done * 64;
    ++blocks_done;
    if (part_idx < parts.size()) {
      const ByteView p = parts[part_idx];
      if (part_off < p.size() && part_off + 64 <= p.size()) {
        const std::uint8_t* ptr = p.data() + part_off;
        part_off += 64;
        if (part_off == p.size()) {
          ++part_idx;
          part_off = 0;
        }
        return ptr;
      }
    }
    std::size_t filled = 0;
    while (filled < 64 && part_idx < parts.size()) {
      const ByteView p = parts[part_idx];
      const std::size_t take =
          std::min<std::size_t>(64 - filled, p.size() - part_off);
      std::memcpy(scratch + filled, p.data() + part_off, take);
      filled += take;
      part_off += take;
      if (part_off == p.size()) {
        ++part_idx;
        part_off = 0;
      }
    }
    const std::uint64_t padded_len = blocks_total * 64;
    const std::uint64_t bit_len = total * 8;
    for (; filled < 64; ++filled) {
      const std::uint64_t off = pos + filled;
      if (off == total) {
        scratch[filled] = 0x80;
      } else if (off < padded_len - 8) {
        scratch[filled] = 0;
      } else {
        scratch[filled] =
            static_cast<std::uint8_t>(bit_len >> (8 * (padded_len - 1 - off)));
      }
    }
    return scratch;
  }
};

}  // namespace

bool sha256_hw_available() { return cpu_has_sha_ni(); }

void sha256_batch(std::span<const Sha256Lane> lanes) {
#if defined(TANGLED_SHA_NI_POSSIBLE)
  if (sha256_hw_active()) {
    for (std::size_t base = 0; base < lanes.size(); base += 4) {
      const int group = static_cast<int>(std::min<std::size_t>(
          4, lanes.size() - base));
      BatchLaneCursor cursors[4];
      for (int i = 0; i < group; ++i) cursors[i].init(lanes[base + i].parts);
      for (;;) {
        std::uint32_t* states[4];
        const std::uint8_t* blocks[4];
        int active = 0;
        for (int i = 0; i < group; ++i) {
          if (cursors[i].done()) continue;
          states[active] = cursors[i].state;
          blocks[active] = cursors[i].next_block();
          ++active;
        }
        if (active == 0) break;
        sha256_compress_shani_lanes(states, blocks, active);
      }
      for (int i = 0; i < group; ++i) {
        for (int w = 0; w < 8; ++w) {
          store_be32(lanes[base + i].out + 4 * w, cursors[i].state[w]);
        }
      }
    }
    return;
  }
#endif
  for (const Sha256Lane& lane : lanes) {
    Sha256 h;
    for (const ByteView part : lane.parts) h.update(part);
    const auto d = h.digest();
    std::memcpy(lane.out, d.data(), d.size());
  }
}

// ---------------------------------------------------------------------------
// SHA-256
// ---------------------------------------------------------------------------

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

void Sha256::compress(const std::uint8_t* block) {
  sha256_compress_blocks(state_.data(), block, 1);
}

void Sha256::update(ByteView data) {
  total_ += data.size();
  std::size_t off = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(kBlockSize - buffered_, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    off += take;
    if (buffered_ == kBlockSize) {
      compress(buffer_.data());
      buffered_ = 0;
    }
  }
  const std::size_t whole_blocks = (data.size() - off) / kBlockSize;
  if (whole_blocks > 0) {
    sha256_compress_blocks(state_.data(), data.data() + off, whole_blocks);
    off += whole_blocks * kBlockSize;
  }
  if (off < data.size()) {
    std::memcpy(buffer_.data(), data.data() + off, data.size() - off);
    buffered_ = data.size() - off;
  }
}

std::array<std::uint8_t, Sha256::kDigestSize> Sha256::digest() const {
  Sha256 copy = *this;
  const std::uint64_t bit_len = copy.total_ * 8;
  const std::uint8_t pad = 0x80;
  copy.update(ByteView(&pad, 1));
  const std::uint8_t zero = 0x00;
  while (copy.buffered_ != 56) copy.update(ByteView(&zero, 1));
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  copy.update(ByteView(len_be, 8));
  std::array<std::uint8_t, kDigestSize> out{};
  for (int i = 0; i < 8; ++i) store_be32(out.data() + 4 * i, copy.state_[i]);
  return out;
}

Bytes Sha256::hash(ByteView data) {
  Sha256 h;
  h.update(data);
  const auto d = h.digest();
  return Bytes(d.begin(), d.end());
}

// ---------------------------------------------------------------------------
// SHA-1
// ---------------------------------------------------------------------------

Sha1::Sha1()
    : state_{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0} {}

void Sha1::compress(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f;
    std::uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdc;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6;
    }
    const std::uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
    e = d; d = c; c = rotl32(b, 30); b = a; a = tmp;
  }
  state_[0] += a; state_[1] += b; state_[2] += c; state_[3] += d; state_[4] += e;
}

void Sha1::update(ByteView data) {
  total_ += data.size();
  std::size_t off = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(kBlockSize - buffered_, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    off += take;
    if (buffered_ == kBlockSize) {
      compress(buffer_.data());
      buffered_ = 0;
    }
  }
  while (off + kBlockSize <= data.size()) {
    compress(data.data() + off);
    off += kBlockSize;
  }
  if (off < data.size()) {
    std::memcpy(buffer_.data(), data.data() + off, data.size() - off);
    buffered_ = data.size() - off;
  }
}

std::array<std::uint8_t, Sha1::kDigestSize> Sha1::digest() const {
  Sha1 copy = *this;
  const std::uint64_t bit_len = copy.total_ * 8;
  const std::uint8_t pad = 0x80;
  copy.update(ByteView(&pad, 1));
  const std::uint8_t zero = 0x00;
  while (copy.buffered_ != 56) copy.update(ByteView(&zero, 1));
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  copy.update(ByteView(len_be, 8));
  std::array<std::uint8_t, kDigestSize> out{};
  for (int i = 0; i < 5; ++i) store_be32(out.data() + 4 * i, copy.state_[i]);
  return out;
}

Bytes Sha1::hash(ByteView data) {
  Sha1 h;
  h.update(data);
  const auto d = h.digest();
  return Bytes(d.begin(), d.end());
}

// ---------------------------------------------------------------------------
// MD5
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kMd5K[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

constexpr int kMd5S[64] = {7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7,
                           12, 17, 22, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,
                           14, 20, 5,  9, 14, 20, 4, 11, 16, 23, 4, 11, 16,
                           23, 4,  11, 16, 23, 4, 11, 16, 23, 6, 10, 15, 21,
                           6,  10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

}  // namespace

Md5::Md5() : state_{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476} {}

void Md5::compress(const std::uint8_t* block) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) m[i] = load_le32(block + 4 * i);
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    f = f + a + kMd5K[i] + m[g];
    a = d; d = c; c = b;
    b = b + rotl32(f, kMd5S[i]);
  }
  state_[0] += a; state_[1] += b; state_[2] += c; state_[3] += d;
}

void Md5::update(ByteView data) {
  total_ += data.size();
  std::size_t off = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(kBlockSize - buffered_, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    off += take;
    if (buffered_ == kBlockSize) {
      compress(buffer_.data());
      buffered_ = 0;
    }
  }
  while (off + kBlockSize <= data.size()) {
    compress(data.data() + off);
    off += kBlockSize;
  }
  if (off < data.size()) {
    std::memcpy(buffer_.data(), data.data() + off, data.size() - off);
    buffered_ = data.size() - off;
  }
}

std::array<std::uint8_t, Md5::kDigestSize> Md5::digest() const {
  Md5 copy = *this;
  const std::uint64_t bit_len = copy.total_ * 8;
  const std::uint8_t pad = 0x80;
  copy.update(ByteView(&pad, 1));
  const std::uint8_t zero = 0x00;
  while (copy.buffered_ != 56) copy.update(ByteView(&zero, 1));
  std::uint8_t len_le[8];
  for (int i = 0; i < 8; ++i) {
    len_le[i] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  }
  copy.update(ByteView(len_le, 8));
  std::array<std::uint8_t, kDigestSize> out{};
  for (int i = 0; i < 4; ++i) store_le32(out.data() + 4 * i, copy.state_[i]);
  return out;
}

Bytes Md5::hash(ByteView data) {
  Md5 h;
  h.update(data);
  const auto d = h.digest();
  return Bytes(d.begin(), d.end());
}

// ---------------------------------------------------------------------------
// HMAC
// ---------------------------------------------------------------------------

Bytes hmac_sha256(ByteView key, ByteView message) {
  std::array<std::uint8_t, Sha256::kBlockSize> k{};
  if (key.size() > Sha256::kBlockSize) {
    const Bytes kh = Sha256::hash(key);
    std::memcpy(k.data(), kh.data(), kh.size());
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }
  std::array<std::uint8_t, Sha256::kBlockSize> ipad{};
  std::array<std::uint8_t, Sha256::kBlockSize> opad{};
  for (std::size_t i = 0; i < k.size(); ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const auto inner_digest = inner.digest();
  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  const auto d = outer.digest();
  return Bytes(d.begin(), d.end());
}

}  // namespace tangled::crypto
