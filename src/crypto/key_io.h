// RSA key serialization: PKCS#1 (RFC 8017 appendix A) DER structures with
// PEM encapsulation — what a measurement tool needs to persist the CA
// material that signs its synthetic corpora.
#pragma once

#include <string>

#include "crypto/rsa.h"
#include "util/result.h"

namespace tangled::crypto {

/// RSAPublicKey ::= SEQUENCE { modulus INTEGER, publicExponent INTEGER }
Bytes encode_rsa_public(const RsaPublicKey& key);
Result<RsaPublicKey> decode_rsa_public(ByteView der);

/// RSAPrivateKey ::= SEQUENCE { version(0), n, e, d, p, q, dP, dQ, qInv }.
/// The CRT parameters are recomputed on encode, validated on decode.
Bytes encode_rsa_private(const RsaPrivateKey& key);
Result<RsaPrivateKey> decode_rsa_private(ByteView der);

/// PEM wrappers ("RSA PUBLIC KEY" / "RSA PRIVATE KEY" labels).
std::string rsa_public_to_pem(const RsaPublicKey& key);
Result<RsaPublicKey> rsa_public_from_pem(std::string_view pem);
std::string rsa_private_to_pem(const RsaPrivateKey& key);
Result<RsaPrivateKey> rsa_private_from_pem(std::string_view pem);

}  // namespace tangled::crypto
