// Message digests implemented from scratch: SHA-256 (FIPS 180-4),
// SHA-1 (FIPS 180-4, legacy chains), MD5 (RFC 1321, only for fingerprint
// compatibility), and HMAC over any of them.
//
// All hashers share the streaming interface: update() any number of times,
// then digest() (which finalizes a copy, so the hasher stays reusable for
// further updates if desired — matching common digest APIs). Hashers are
// plain copyable values, so a partially-fed Sha256 doubles as a reusable
// mid-state: hash a common prefix once, then copy + finish per message
// (the SimSig issuer-modulus prefix relies on this).
//
// SHA-256 has two engines behind the same interface: the portable scalar
// compression and an x86 SHA-NI path selected at runtime (CPUID) when
// TANGLED_BATCH_HASH is on. sha256_batch() additionally runs several
// independent messages through interleaved hardware lanes so per-cert
// digest bundles are hashed per batch rather than one DER at a time.
// Both engines produce identical digests; the toggle exists for ablation.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.h"

namespace tangled::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();

  void update(ByteView data);
  /// Finalizes a copy of the state; `this` remains valid for more updates.
  std::array<std::uint8_t, kDigestSize> digest() const;

  /// One-shot convenience.
  static Bytes hash(ByteView data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t total_ = 0;  // bytes processed
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffered_ = 0;
};

/// True when this CPU exposes the x86 SHA extensions (independent of the
/// TANGLED_BATCH_HASH toggle, which decides whether they are used).
bool sha256_hw_available();

/// One message of a multi-buffer batch: the message is the concatenation
/// of `parts`, and the 32-byte digest is written to `out`.
struct Sha256Lane {
  std::span<const ByteView> parts;
  std::uint8_t* out;
};

/// Hashes every lane independently (digest identical to feeding the lane's
/// parts through one Sha256). With the hardware engine active, up to four
/// lanes run through interleaved SHA-NI states per round; otherwise lanes
/// fall back to sequential scalar hashing.
void sha256_batch(std::span<const Sha256Lane> lanes);

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;

  Sha1();

  void update(ByteView data);
  std::array<std::uint8_t, kDigestSize> digest() const;

  static Bytes hash(ByteView data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_;
  std::uint64_t total_ = 0;
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffered_ = 0;
};

class Md5 {
 public:
  static constexpr std::size_t kDigestSize = 16;
  static constexpr std::size_t kBlockSize = 64;

  Md5();

  void update(ByteView data);
  std::array<std::uint8_t, kDigestSize> digest() const;

  static Bytes hash(ByteView data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_;
  std::uint64_t total_ = 0;
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffered_ = 0;
};

/// HMAC-SHA-256 (RFC 2104). Key of any length.
Bytes hmac_sha256(ByteView key, ByteView message);

}  // namespace tangled::crypto
