// RSA with PKCS#1 v1.5 signatures (RFC 8017 §8.2), built on BigNum.
//
// Key sizes are simulation-scale (512–2048 bits); this is a measurement
// toolkit, not a production TLS stack, and the README says so too.
#pragma once

#include <cstdint>

#include "crypto/bignum.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"

namespace tangled::crypto {

struct RsaPublicKey {
  BigNum n;  // modulus
  BigNum e;  // public exponent

  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  friend bool operator==(const RsaPublicKey&, const RsaPublicKey&) = default;
};

struct RsaPrivateKey {
  RsaPublicKey pub;
  BigNum d;  // private exponent
  BigNum p;
  BigNum q;
};

/// Generates an RSA keypair with an n of exactly `bits` bits and e = 65537.
RsaPrivateKey rsa_generate(Xoshiro256& rng, std::size_t bits);

/// Supported digests for DigestInfo.
enum class DigestAlg { kSha1, kSha256 };

/// PKCS#1 v1.5 signature over `message` (hashes internally).
Result<Bytes> rsa_sign(const RsaPrivateKey& key, DigestAlg alg, ByteView message);

/// Verifies a PKCS#1 v1.5 signature. Ok() on success, error otherwise.
Result<void> rsa_verify(const RsaPublicKey& key, DigestAlg alg, ByteView message,
                        ByteView signature);

/// EMSA-PKCS1-v1_5 encoding (exposed for tests): DigestInfo DER wrapped in
/// 0x00 0x01 FF.. 0x00 padding to `em_len` bytes.
Result<Bytes> pkcs1_v15_encode(DigestAlg alg, ByteView message, std::size_t em_len);

}  // namespace tangled::crypto
