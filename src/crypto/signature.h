// Pluggable certificate-signature schemes.
//
// Two schemes back the toolkit:
//  * RsaSha256 — real sha256WithRSAEncryption over the TBS bytes. Used in
//    unit-scale paths (tests, examples, handshake demos).
//  * SimSig — SHA-256 of (issuer modulus || TBS). Structurally verifiable
//    with the issuer's public key but trivially forgeable; it exists so the
//    notary corpus generator can issue hundreds of thousands of certs in
//    seconds. DESIGN.md documents this substitution; the ablation bench
//    quantifies the throughput gap.
//
// Verification dispatches on the certificate's AlgorithmIdentifier OID, so
// mixed corpora (some RSA, some SimSig) verify transparently.
#pragma once

#include <memory>
#include <optional>

#include "asn1/oid.h"
#include "crypto/hash.h"
#include "crypto/rsa.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"

namespace tangled::crypto {

/// A signing identity. The public half always carries an RSA-shaped
/// (modulus, exponent) pair because the paper keys certificate identity on
/// the RSA modulus; SimSig keys simply have no usable private exponent.
struct KeyPair {
  RsaPublicKey pub;
  std::optional<RsaPrivateKey> priv;  // present only for real RSA keys

  bool can_rsa_sign() const { return priv.has_value(); }
};

/// Real RSA keypair (slow: prime generation).
KeyPair generate_rsa_keypair(Xoshiro256& rng, std::size_t bits);

/// Simulation keypair: random modulus, no private key. Fast.
KeyPair generate_sim_keypair(Xoshiro256& rng, std::size_t bits = 2048);

/// Scheme interface; stateless implementations.
class SignatureScheme {
 public:
  virtual ~SignatureScheme() = default;

  /// AlgorithmIdentifier OID stamped into issued certificates.
  virtual const asn1::Oid& algorithm_oid() const = 0;

  virtual Result<Bytes> sign(const KeyPair& signer, ByteView tbs) const = 0;
  virtual Result<void> verify(const RsaPublicKey& issuer, ByteView tbs,
                              ByteView signature) const = 0;
};

/// sha256WithRSAEncryption.
const SignatureScheme& rsa_sha256_scheme();
/// The simulation scheme (private OID 1.3.6.1.4.1.55555.1.1).
const SignatureScheme& sim_sig_scheme();

/// Looks up the scheme for an AlgorithmIdentifier OID; nullptr if unknown.
/// sha1WithRSAEncryption verifies via the RSA scheme with SHA-1.
const SignatureScheme* scheme_for_oid(const asn1::Oid& oid);

/// Verifies `signature` over `tbs` under whichever scheme `oid` names.
Result<void> verify_signature(const asn1::Oid& oid, const RsaPublicKey& issuer,
                              ByteView tbs, ByteView signature);

/// SHA-256 mid-state pre-seeded with the SimSig prefix (the issuer's
/// modulus bytes). A verifier hashing many certificates under one issuer
/// computes this once, then each verification copies the mid-state and
/// finishes with the TBS bytes — no modulus re-serialization, no re-hash
/// of the shared prefix. Equivalent to sim_sig_scheme().verify by
/// construction: both feed the same byte stream through SHA-256.
Sha256 sim_sig_prefix(const RsaPublicKey& issuer);

/// Verifies a SimSig signature using a precomputed prefix mid-state.
Result<void> sim_sig_verify_prefixed(const Sha256& prefix, ByteView tbs,
                                     ByteView signature);

}  // namespace tangled::crypto
