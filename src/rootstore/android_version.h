// The Android releases the paper studies, with their official AOSP root
// store sizes (Table 1).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace tangled::rootstore {

enum class AndroidVersion : std::uint8_t { k41 = 0, k42 = 1, k43 = 2, k44 = 3 };

inline constexpr std::array<AndroidVersion, 4> kAllAndroidVersions{
    AndroidVersion::k41, AndroidVersion::k42, AndroidVersion::k43,
    AndroidVersion::k44};

/// Official AOSP root-store size for the version (Table 1: 139/140/146/150).
constexpr std::size_t aosp_store_size(AndroidVersion v) {
  switch (v) {
    case AndroidVersion::k41: return 139;
    case AndroidVersion::k42: return 140;
    case AndroidVersion::k43: return 146;
    case AndroidVersion::k44: return 150;
  }
  return 0;
}

constexpr std::string_view to_string(AndroidVersion v) {
  switch (v) {
    case AndroidVersion::k41: return "4.1";
    case AndroidVersion::k42: return "4.2";
    case AndroidVersion::k43: return "4.3";
    case AndroidVersion::k44: return "4.4";
  }
  return "?";
}

/// Table 1 comparison stores.
inline constexpr std::size_t kIos7StoreSize = 227;
inline constexpr std::size_t kMozillaStoreSize = 153;
/// §2: "117 of AOSP 4.4's 150 certificates also exist in Mozilla's root
/// store" (byte-identical).
inline constexpr std::size_t kAospMozillaIdentical = 117;
/// Table 4 counts AOSP4.4 ∩ Mozilla as 130 — the extra 13 are re-issues
/// that are equivalent (same subject + modulus) but not byte-identical.
inline constexpr std::size_t kAospMozillaEquivalent = 130;

}  // namespace tangled::rootstore
