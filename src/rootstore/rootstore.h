// Root-store model: a named set of trusted root certificates with the two
// membership notions from the paper — identity (RSA modulus + signature,
// §4.1) and equivalence (subject + modulus, §4.2) — plus set diffing used by
// every §5 analysis.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/bytes.h"
#include "x509/certificate.h"

namespace tangled::rootstore {

class RootStore {
 public:
  RootStore() = default;
  explicit RootStore(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  std::size_t size() const { return certs_.size(); }
  bool empty() const { return certs_.empty(); }
  const std::vector<x509::Certificate>& certificates() const { return certs_; }

  /// Adds a certificate; duplicates (same identity) are ignored and
  /// reported by returning false.
  bool add(x509::Certificate cert);

  /// Removes the certificate with this identity key; false if absent.
  bool remove(ByteView identity_key);

  /// Identity membership (modulus + signature).
  bool contains(const x509::Certificate& cert) const;
  bool contains_identity(ByteView identity_key) const;

  /// Equivalence membership (subject + modulus): true when some member can
  /// validate the same children even if bytes differ.
  bool contains_equivalent(const x509::Certificate& cert) const;
  const x509::Certificate* find_equivalent(const x509::Certificate& cert) const;

  const x509::Certificate* find_identity(ByteView identity_key) const;

 private:
  std::string name_;
  std::vector<x509::Certificate> certs_;
  std::unordered_map<std::string, std::size_t> identity_index_;     // hex key
  std::unordered_map<std::string, std::size_t> equivalence_index_;  // hex key
  void rebuild_indexes();
};

/// Outcome of comparing a device/store pair (paper §5, Figure 1 inputs).
struct StoreDiff {
  /// In `a` only (not even equivalent in `b`).
  std::vector<const x509::Certificate*> only_in_a;
  /// In `b` only.
  std::vector<const x509::Certificate*> only_in_b;
  /// Present in both with the same identity.
  std::size_t identical = 0;
  /// Equivalent (subject+modulus) but different identity — typically
  /// re-issues where "only the expiration date changed" (§4.2).
  std::size_t equivalent_not_identical = 0;

  std::size_t additions() const { return only_in_a.size(); }
  std::size_t missing() const { return only_in_b.size(); }
};

/// Diffs `a` against baseline `b` (a = device store, b = AOSP store).
StoreDiff diff(const RootStore& a, const RootStore& b);

}  // namespace tangled::rootstore
