#include "rootstore/nonaosp_catalog.h"

#include <array>

namespace tangled::rootstore {

std::string_view row_label(PlacementRow row) {
  switch (row) {
    case PlacementRow::kHtc41: return "HTC 4.1";
    case PlacementRow::kHtc42: return "HTC 4.2";
    case PlacementRow::kHtc43: return "HTC 4.3";
    case PlacementRow::kHtc44: return "HTC 4.4";
    case PlacementRow::kMotorola41: return "MOTOROLA 4.1";
    case PlacementRow::kSamsung41: return "SAMSUNG 4.1";
    case PlacementRow::kSamsung42: return "SAMSUNG 4.2";
    case PlacementRow::kSamsung43: return "SAMSUNG 4.3";
    case PlacementRow::kSamsung44: return "SAMSUNG 4.4";
    case PlacementRow::kSony43: return "SONY 4.3";
    case PlacementRow::kThreeUk: return "3(UK)";
    case PlacementRow::kAttUs: return "AT&T(US)";
    case PlacementRow::kBouyguesFr: return "BOUYGUES(FR)";
    case PlacementRow::kEeUk: return "EE(UK)";
    case PlacementRow::kFreeFr: return "FREE(FR)";
    case PlacementRow::kOrangeFr: return "ORANGE(FR)";
    case PlacementRow::kSfrFr: return "SFR(FR)";
    case PlacementRow::kSprintUs: return "SPRINT(US)";
    case PlacementRow::kTmobileUs: return "T-MOBILE(US)";
    case PlacementRow::kTelstraAu: return "TELSTRA(AU)";
    case PlacementRow::kVerizonUs: return "VERIZON(US)";
    case PlacementRow::kVodafoneDe: return "VODAFONE(DE)";
  }
  return "?";
}

namespace {

using R = PlacementRow;

// §5.1: "Mobile manufacturers such as HTC and Samsung have alike additional
// certificates on their root store (e.g., AddTrust, Deutsche Telekom, Sonera
// and U.S. Department of Defense) independently of the mobile operator."
constexpr std::array kVendorWide{
    Placement{R::kHtc41, 0.90}, Placement{R::kHtc42, 0.90},
    Placement{R::kHtc43, 0.85}, Placement{R::kHtc44, 0.85},
    Placement{R::kSamsung41, 0.85}, Placement{R::kSamsung42, 0.85},
    Placement{R::kSamsung43, 0.90}, Placement{R::kSamsung44, 0.90},
};

// The legacy VeriSign/Thawte/Entrust pile that makes >40-cert expansions on
// HTC and Samsung 4.1/4.2 devices (Figure 1 discussion).
constexpr std::array kVendorLegacy{
    Placement{R::kHtc41, 0.70}, Placement{R::kHtc42, 0.65},
    Placement{R::kSamsung41, 0.55}, Placement{R::kSamsung42, 0.55},
    Placement{R::kSamsung44, 0.55},
};

// §5.1: CertiSign and ptt-post.nl "exclusively on 60 to 70% of Motorola 4.1
// devices, all of them subscribed to Verizon Wireless".
constexpr std::array kMoto41Verizon{
    Placement{R::kMotorola41, 0.65}, Placement{R::kVerizonUs, 0.65},
};

// §5.1: "potential AT&T-specific inclusions on Motorola handsets, such as a
// Microsoft Secure Server certificate".
constexpr std::array kMoto41Att{
    Placement{R::kMotorola41, 0.50}, Placement{R::kAttUs, 0.50},
};

// Motorola FOTA / SUPL roots ship on the Motorola firmware itself.
constexpr std::array kMoto41Only{
    Placement{R::kMotorola41, 0.95},
};

// §5.1: GeoTrust CA for UTI "installed on Samsung 4.2 and 4.3 devices".
constexpr std::array kSamsung4243{
    Placement{R::kSamsung42, 0.80}, Placement{R::kSamsung43, 0.80},
};

constexpr std::array kSprintOnly{
    Placement{R::kSprintUs, 0.90},
};

// Cingular became AT&T; its roots persist on AT&T-branded firmware.
constexpr std::array kAttOnly{
    Placement{R::kAttUs, 0.80},
};

constexpr std::array kVodafoneOnly{
    Placement{R::kVodafoneDe, 0.85},
};

constexpr std::array kSonyOnly{
    Placement{R::kSony43, 0.70},
};

// eSign/Gatekeeper are Australian-government CAs -> Telstra firmware.
constexpr std::array kTelstraOnly{
    Placement{R::kTelstraAu, 0.60},
};

// Certplus is a French CA: French operator customizations.
constexpr std::array kFrenchOperators{
    Placement{R::kOrangeFr, 0.55}, Placement{R::kSfrFr, 0.45},
    Placement{R::kBouyguesFr, 0.40}, Placement{R::kFreeFr, 0.35},
};

constexpr std::array kUkOperators{
    Placement{R::kEeUk, 0.45}, Placement{R::kThreeUk, 0.40},
};

constexpr std::array kTmobileOnly{
    Placement{R::kTmobileUs, 0.55},
};

constexpr std::array kUsCarriers{
    Placement{R::kVerizonUs, 0.45}, Placement{R::kTmobileUs, 0.40},
    Placement{R::kAttUs, 0.35},
};

constexpr std::array kHtcOnly{
    Placement{R::kHtc41, 0.60}, Placement{R::kHtc42, 0.55},
};

constexpr std::array kSamsungWide{
    Placement{R::kSamsung41, 0.60}, Placement{R::kSamsung42, 0.60},
    Placement{R::kSamsung43, 0.55}, Placement{R::kSamsung44, 0.55},
};

using NC = NotaryClass;
using UC = UsageCategory;

// One initializer per Figure 2 x-axis label, in axis order. Fields:
// {name, tag, notary class, in_mozilla, in_ios7, usage, excluded, placements}.
constexpr std::array<NonAospCertSpec, 104> kCatalog{{
    {"Sprint Nextel Root Authority", "979eb027", NC::kAndroidOnly, false, false, UC::kTls, false, kSprintOnly},
    {"ABA.ECOM Root CA", "b1d311e0", NC::kNotRecorded, false, false, UC::kTls, true, kUsCarriers},
    {"AddTrust Class 1 CA Root", "9696d421", NC::kMozillaAndIos7, true, true, UC::kTls, false, kVendorWide},
    {"AddTrust Public CA Root", "e91a308f", NC::kMozillaAndIos7, true, true, UC::kTls, false, kVendorWide},
    {"AddTrust Qualified CA Root", "e41e9afe", NC::kMozillaAndIos7, true, true, UC::kTls, false, kVendorWide},
    {"AOL Time Warner Root CA 1", "99de8fc3", NC::kNotRecorded, false, false, UC::kTls, false, kTmobileOnly},
    {"AOL Time Warner Root CA 2", "b4375a08", NC::kNotRecorded, false, false, UC::kTls, false, kTmobileOnly},
    {"Baltimore EZ by DST", "bcccb33d", NC::kNotRecorded, false, false, UC::kTls, false, kVendorLegacy},
    {"Certisign AC1S", "b0c095eb", NC::kNotRecorded, false, false, UC::kTls, false, kMoto41Verizon},
    {"Certisign AC2", "b930cca5", NC::kNotRecorded, false, false, UC::kTls, false, kMoto41Verizon},
    {"Certisign AC3S", "ce644ed6", NC::kNotRecorded, false, false, UC::kTls, false, kMoto41Verizon},
    {"Certisign AC4", "ec83d4cc", NC::kNotRecorded, false, false, UC::kTls, false, kMoto41Verizon},
    {"Certplus Class 1 Primary CA", "c36b29c8", NC::kNotRecorded, true, false, UC::kTls, false, kFrenchOperators},
    {"Certplus Class 3 Primary CA", "b794306e", NC::kNotRecorded, true, false, UC::kTls, false, kFrenchOperators},
    {"Certplus Class 3P Primary CA", "ab37ffeb", NC::kNotRecorded, true, false, UC::kTls, false, kFrenchOperators},
    {"Certplus Class 3TS Primary CA", "bd659a23", NC::kNotRecorded, true, false, UC::kTimestamping, false, kFrenchOperators},
    {"CFCA Root CA", "c107f487", NC::kNotRecorded, false, false, UC::kTls, false, kHtcOnly},
    {"Cingular Preferred Root CA", "db7f0a90", NC::kAndroidOnly, false, false, UC::kOperatorApi, false, kAttOnly},
    {"Cingular Trusted Root CA", "eaaa66b1", NC::kAndroidOnly, false, false, UC::kOperatorApi, false, kAttOnly},
    {"COMODO RSA CA", "91e85492", NC::kIos7Only, false, true, UC::kTls, false, kVendorLegacy},
    {"COMODO Secure Certificate Services", "c0713382", NC::kMozillaAndIos7, true, true, UC::kTls, false, kVendorWide},
    {"COMODO Trusted Certificate Services", "df716f36", NC::kIos7Only, false, true, UC::kTls, false, kVendorLegacy},
    {"Deutsche Telekom Root CA 1", "d0dd9b0c", NC::kMozillaAndIos7, true, true, UC::kTls, false, kVendorWide},
    {"DoD CLASS 3 Root CA", "b530fe64", NC::kIos7Only, false, true, UC::kTls, false, kVendorWide},
    {"DST (ANX Network) CA", "b4481180", NC::kNotRecorded, false, false, UC::kTls, false, kUsCarriers},
    {"DST (NRF) RootCA", "d9ac9b77", NC::kNotRecorded, false, false, UC::kTls, false, kUsCarriers},
    {"DST (UPS) RootCA", "ef17ecaf", NC::kNotRecorded, false, false, UC::kTls, false, kUsCarriers},
    {"DST Root CA X1", "d2c626b6", NC::kAndroidOnly, false, false, UC::kTls, false, kVendorLegacy},
    {"DST RootCA X2", "dc75f08c", NC::kNotRecorded, false, false, UC::kTls, false, kVendorLegacy},
    {"DST-Entrust GTI CA", "b61df74b", NC::kNotRecorded, false, false, UC::kTls, false, kUsCarriers},
    {"Entrust CA - L1B", "dc21f568", NC::kAndroidOnly, false, false, UC::kTls, false, kVendorLegacy},
    {"Entrust.net CA", "ad4d4ba9", NC::kAndroidOnly, false, false, UC::kTls, false, kVendorLegacy},
    {"Entrust.net Client CA", "9374b4b6", NC::kAndroidOnly, false, false, UC::kEmail, false, kVendorLegacy},
    {"Entrust.net Client CA", "c83a995e", NC::kAndroidOnly, false, false, UC::kEmail, false, kVendorLegacy},
    {"Entrust.net Secure Server CA", "c7c15f4e", NC::kAndroidOnly, false, false, UC::kTls, false, kVendorLegacy},
    {"eSign Imperito Primary Root CA", "b6d352ea", NC::kNotRecorded, false, false, UC::kTls, false, kTelstraOnly},
    {"eSign. Gatekeeper Root CA", "bdfaf7c6", NC::kNotRecorded, false, false, UC::kTls, false, kTelstraOnly},
    {"eSign. Primary Utility Root CA", "a46daef2", NC::kNotRecorded, false, false, UC::kTls, false, kTelstraOnly},
    {"EUnet International Root CA", "9e413bd9", NC::kNotRecorded, false, false, UC::kTls, false, kUkOperators},
    {"FESTE Public Notary Certs", "e183f39b", NC::kNotRecorded, false, false, UC::kTls, false, kFrenchOperators},
    {"FESTE Verified Certs", "ea639f1f", NC::kNotRecorded, false, false, UC::kTls, false, kFrenchOperators},
    {"First Data Digital CA", "df1c141e", NC::kNotRecorded, false, false, UC::kPayment, true, kUsCarriers},
    {"Free SSL CA", "ed846000", NC::kNotRecorded, false, false, UC::kTls, true, kSamsungWide},
    {"GeoTrust CA for Adobe", "a7e577e0", NC::kIos7Only, false, true, UC::kCodeSigning, false, kVendorLegacy},
    {"GeoTrust CA for UTI", "b94b8f0a", NC::kNotRecorded, false, false, UC::kCodeSigning, false, kSamsung4243},
    {"GeoTrust Mobile Device Root - Privileged", "bbec6559", NC::kNotRecorded, false, false, UC::kCodeSigning, false, kVendorLegacy},
    {"GeoTrust Mobile Device Root", "8fb1a7ee", NC::kNotRecorded, false, false, UC::kCodeSigning, false, kVendorLegacy},
    {"GeoTrust True Credentials CA 2", "b2972ca5", NC::kAndroidOnly, false, false, UC::kTls, false, kVendorLegacy},
    {"GlobalSign Root CA", "da0ee699", NC::kMozillaAndIos7, true, true, UC::kTls, false, kVendorWide},
    {"GoDaddy Inc", "c42dd515", NC::kIos7Only, false, true, UC::kTls, false, kVendorLegacy},
    {"IPS CA CLASE1", "e05127a7", NC::kNotRecorded, true, false, UC::kTls, false, kVendorLegacy},
    {"IPS CA CLASE3 CA", "ab17fe0e", NC::kNotRecorded, true, false, UC::kTls, false, kVendorLegacy},
    {"IPS CA CLASEA1 CA", "bb30d7dc", NC::kNotRecorded, true, false, UC::kTls, false, kVendorLegacy},
    {"IPS CA CLASEA3", "ee8000f6", NC::kNotRecorded, true, false, UC::kTls, false, kVendorLegacy},
    {"IPS CA Timestamping CA", "bcb8ee56", NC::kNotRecorded, true, false, UC::kTimestamping, false, kVendorLegacy},
    {"IPS Chained CAs", "dc569249", NC::kNotRecorded, false, false, UC::kTls, false, kVendorLegacy},
    {"Microsoft Secure Server Authority", "ea9f5f91", NC::kAndroidOnly, false, false, UC::kTls, false, kMoto41Att},
    {"Motorola FOTA Root CA", "bae1df7c", NC::kNotRecorded, false, false, UC::kFota, false, kMoto41Only},
    {"Motorola SUPL Server Root CA", "caf7a0d5", NC::kNotRecorded, false, false, UC::kSupl, false, kMoto41Only},
    {"PTT Post Root CA. KeyMail", "b07ee23a", NC::kNotRecorded, false, false, UC::kEmail, false, kMoto41Verizon},
    {"RSA Data Security CA", "92ce7ac1", NC::kAndroidOnly, false, false, UC::kTls, false, kVendorLegacy},
    {"SecureSign Root CA2. Japan", "967b9223", NC::kIos7Only, false, true, UC::kTls, false, kVendorLegacy},
    {"SecureSign Root CA3. Japan", "995e1e80", NC::kIos7Only, false, true, UC::kTls, false, kVendorLegacy},
    {"SEVEN Open Channel Primary CA", "cc2479ed", NC::kNotRecorded, false, false, UC::kOperatorApi, false, kSprintOnly},
    {"SIA Secure Client CA", "d2fcb040", NC::kNotRecorded, false, false, UC::kEmail, false, kVendorLegacy},
    {"SIA Secure Server CA", "dbc10bcc", NC::kNotRecorded, false, false, UC::kTls, false, kVendorLegacy},
    {"Sonera Class1 CA", "b5891f2b", NC::kMozillaAndIos7, true, true, UC::kTls, false, kVendorWide},
    {"Sony Computer DNAS Root 05", "d98f7b36", NC::kNotRecorded, false, false, UC::kOperatorApi, false, kSonyOnly},
    {"Sony Ericsson Secure E2E", "ed849d0f", NC::kNotRecorded, false, false, UC::kOperatorApi, false, kSonyOnly},
    {"Sprint XCA01", "c65c80d1", NC::kAndroidOnly, false, false, UC::kOperatorApi, false, kSprintOnly},
    {"Starfield Services Root CA", "f2cc562a", NC::kIos7Only, false, true, UC::kTls, false, kVendorLegacy},
    {"TC TrustCenter Class 1 CA", "b029ebb4", NC::kIos7Only, false, true, UC::kTls, false, kVendorLegacy},
    {"Thawte Personal Basic CA", "bcbc9353", NC::kAndroidOnly, false, false, UC::kEmail, false, kVendorLegacy},
    {"Thawte Personal Freemail CA", "d469d7d4", NC::kAndroidOnly, false, false, UC::kEmail, false, kVendorLegacy},
    {"Thawte Personal Premium CA", "c966d9f8", NC::kAndroidOnly, false, false, UC::kEmail, false, kVendorLegacy},
    {"Thawte Premium Server CA", "d236366a", NC::kIos7Only, false, true, UC::kTls, false, kVendorLegacy},
    {"Thawte Server CA", "d3a4506e", NC::kIos7Only, false, true, UC::kTls, false, kVendorLegacy},
    {"Thawte Timestamping CA", "d62b5878", NC::kAndroidOnly, false, false, UC::kTimestamping, false, kVendorLegacy},
    {"TrustCenter Class 2 CA", "da38e8ed", NC::kAndroidOnly, false, false, UC::kTls, false, kVendorLegacy},
    {"TrustCenter Class 3 CA", "b6b4c135", NC::kAndroidOnly, false, false, UC::kTls, false, kVendorLegacy},
    {"UserTrust Client Auth. and Email", "b23985a4", NC::kAndroidOnly, false, false, UC::kEmail, false, kVendorLegacy},
    {"UserTrust RSA Extended Val. Sec. Server CA", "949c238c", NC::kAndroidOnly, false, false, UC::kTls, false, kVendorLegacy},
    {"UserTrust UTN-USERFirst", "ceaa813f", NC::kIos7Only, false, true, UC::kTls, false, kVendorLegacy},
    {"VeriSign", "d32e20f0", NC::kAndroidOnly, false, false, UC::kTls, false, kVendorLegacy},
    {"VeriSign Class 1 Public Primary CA", "dd84d4b9", NC::kIos7Only, false, true, UC::kTls, false, kVendorLegacy},
    {"VeriSign Class 1 Public Primary CA", "e519bf6d", NC::kAndroidOnly, false, false, UC::kTls, false, kVendorLegacy},
    {"VeriSign Class 2 Public Primary CA", "af0a0dc2", NC::kIos7Only, false, true, UC::kTls, false, kVendorLegacy},
    {"VeriSign Class 2 Public Primary CA", "b65a8ba3", NC::kAndroidOnly, false, false, UC::kTls, false, kVendorLegacy},
    {"VeriSign Class 3 Extended Validation SSL SGC CA", "bd5688ba", NC::kAndroidOnly, false, false, UC::kTls, false, kVendorLegacy},
    {"VeriSign Class 3 International Server CA - G3", "99d69c62", NC::kAndroidOnly, false, false, UC::kTls, false, kVendorLegacy},
    {"VeriSign Class 3 Public Primary CA", "c95c599e", NC::kIos7Only, false, true, UC::kTls, false, kVendorLegacy},
    {"VeriSign Class 3 Secure Server CA - G3", "b187841f", NC::kAndroidOnly, false, false, UC::kTls, false, kVendorLegacy},
    {"VeriSign Class 3 Secure Server CA", "95c32112", NC::kAndroidOnly, false, false, UC::kTls, false, kVendorLegacy},
    {"VeriSign Commercial Software Publishers CA", "c3d36965", NC::kAndroidOnly, false, false, UC::kCodeSigning, false, kVendorLegacy},
    {"VeriSign CPS", "d88280e8", NC::kAndroidOnly, false, false, UC::kTls, false, kVendorLegacy},
    {"VeriSign Individual Software Publishers CA", "c17aca65", NC::kAndroidOnly, false, false, UC::kCodeSigning, false, kVendorLegacy},
    {"VeriSign Trust Network", "a7880121", NC::kAndroidOnly, false, false, UC::kTls, false, kVendorLegacy},
    {"VeriSign Trust Network", "aad0babe", NC::kAndroidOnly, false, false, UC::kTls, false, kVendorLegacy},
    {"VeriSign Trust Network", "cc5ed111", NC::kAndroidOnly, false, false, UC::kTls, false, kVendorLegacy},
    {"Visa Information Delivery Root CA", "c91100e1", NC::kIos7Only, false, true, UC::kPayment, false, kVendorLegacy},
    {"Vodafone (Operator Domain)", "c148b339", NC::kAndroidOnly, false, false, UC::kOperatorApi, false, kVodafoneOnly},
    {"Vodafone (Widget Operator Domain)", "941c5d68", NC::kAndroidOnly, false, false, UC::kOperatorApi, false, kVodafoneOnly},
    {"Wells Fargo CA 01", "9d29d5b9", NC::kAndroidOnly, false, false, UC::kTls, false, kUsCarriers},
    {"Xcert EZ by DST", "ad5418de", NC::kNotRecorded, false, false, UC::kTls, false, kVendorLegacy},
}};

}  // namespace

std::span<const NonAospCertSpec> nonaosp_catalog() {
  return kCatalog;
}

std::size_t count_census_entries() {
  std::size_t n = 0;
  for (const auto& spec : kCatalog) {
    if (!spec.census_excluded) ++n;
  }
  return n;
}

std::size_t count_census_in_mozilla() {
  std::size_t n = 0;
  for (const auto& spec : kCatalog) {
    if (!spec.census_excluded && spec.in_mozilla) ++n;
  }
  return n;
}

std::size_t count_census_not_in_mozilla() {
  return count_census_entries() - count_census_in_mozilla();
}

}  // namespace tangled::rootstore
