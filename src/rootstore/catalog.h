// StoreUniverse: the synthetic reconstruction of every root store the paper
// compares (Table 1), with the published sizes and overlap structure:
//
//   AOSP 4.1 ⊂ 4.2 ⊂ 4.3 ⊂ 4.4 (139/140/146/150),
//   |AOSP4.4 ∩ Mozilla| = 117 byte-identical + 13 equivalent re-issues
//     (subject+modulus match, validity differs) = 130 equivalent (Table 4),
//   |Mozilla| = 153 (117 + 13 + 23 Mozilla-only),
//   |iOS7| = 227 (130 shared with AOSP + 23 non-AOSP catalog members
//     + 74 iOS7-only),
//   one expired AOSP root (Autoridad de Certificacion Firmaprofesional,
//     expired Oct 2013 — §2),
// plus a signing-capable CaNode for every catalog certificate so the notary
// corpus can issue leaves under any of them.
//
// All keys are SimSig (fast random moduli); certificate bytes are real DER
// that round-trips through the parser. Everything is deterministic in the
// seed.
#pragma once

#include <cstdint>
#include <vector>

#include "pki/hierarchy.h"
#include "rootstore/android_version.h"
#include "rootstore/nonaosp_catalog.h"
#include "rootstore/rootstore.h"

namespace tangled::rootstore {

/// Which structural group an AOSP root belongs to (drives the Table 4
/// category census and the notary issuance model).
enum class AospGroup {
  kMozillaIdentical,   // indexes [0, 117): byte-identical in Mozilla
  kMozillaEquivalent,  // indexes [117, 130): Mozilla holds a re-issue
  kAospOnly,           // indexes [130, 150): in no other store
};

class StoreUniverse {
 public:
  /// Builds the whole universe. Seed 1402 is the project default (CoNEXT'14
  /// was in December 2014; 14-02 nods to the Notary's Feb-2012 start).
  static StoreUniverse build(std::uint64_t seed = 1402);

  // --- The six stores of Table 1 ---------------------------------------
  const RootStore& aosp(AndroidVersion v) const { return aosp_stores_[static_cast<std::size_t>(v)]; }
  const RootStore& mozilla() const { return mozilla_; }
  const RootStore& ios7() const { return ios7_; }

  // --- Signing-capable CA material --------------------------------------
  /// AOSP roots in store order; index < aosp_store_size(v) ⇒ in version v.
  const std::vector<pki::CaNode>& aosp_cas() const { return aosp_cas_; }
  /// Mozilla's re-issues of AOSP roots [117, 130) (same key, new cert).
  const std::vector<pki::CaNode>& mozilla_reissues() const { return mozilla_reissues_; }
  const std::vector<pki::CaNode>& mozilla_only_cas() const { return mozilla_only_cas_; }
  const std::vector<pki::CaNode>& ios7_only_cas() const { return ios7_only_cas_; }
  /// One CaNode per nonaosp_catalog() entry, same order.
  const std::vector<pki::CaNode>& nonaosp_cas() const { return nonaosp_cas_; }

  static AospGroup aosp_group(std::size_t aosp_index);

  /// Index of the expired Firmaprofesional root within aosp_cas().
  std::size_t expired_aosp_index() const { return expired_index_; }

  /// Indexes of AOSP roots first shipped in exactly version `v` (i.e. in v
  /// but not in the previous release); for 4.1 that is the whole base set.
  std::vector<std::size_t> aosp_added_in(AndroidVersion v) const;

 private:
  std::array<RootStore, 4> aosp_stores_;
  RootStore mozilla_{"Mozilla"};
  RootStore ios7_{"iOS7"};
  std::vector<pki::CaNode> aosp_cas_;
  std::vector<pki::CaNode> mozilla_reissues_;
  std::vector<pki::CaNode> mozilla_only_cas_;
  std::vector<pki::CaNode> ios7_only_cas_;
  std::vector<pki::CaNode> nonaosp_cas_;
  std::size_t expired_index_ = 0;
};

}  // namespace tangled::rootstore
