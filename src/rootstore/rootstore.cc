#include "rootstore/rootstore.h"

namespace tangled::rootstore {

namespace {

std::string identity_hex(const x509::Certificate& cert) {
  return cert.identity_hex();
}

std::string equivalence_hex(const x509::Certificate& cert) {
  return cert.equivalence_hex();
}

}  // namespace

bool RootStore::add(x509::Certificate cert) {
  const std::string id = identity_hex(cert);
  if (identity_index_.contains(id)) return false;
  const std::size_t idx = certs_.size();
  identity_index_.emplace(id, idx);
  // First equivalent wins in the equivalence index; later equivalents are
  // still stored and counted but looked up via the first.
  equivalence_index_.try_emplace(equivalence_hex(cert), idx);
  certs_.push_back(std::move(cert));
  return true;
}

bool RootStore::remove(ByteView identity_key) {
  const std::string id = to_hex(identity_key);
  const auto it = identity_index_.find(id);
  if (it == identity_index_.end()) return false;
  certs_.erase(certs_.begin() + static_cast<std::ptrdiff_t>(it->second));
  rebuild_indexes();
  return true;
}

void RootStore::rebuild_indexes() {
  identity_index_.clear();
  equivalence_index_.clear();
  for (std::size_t i = 0; i < certs_.size(); ++i) {
    identity_index_.emplace(identity_hex(certs_[i]), i);
    equivalence_index_.try_emplace(equivalence_hex(certs_[i]), i);
  }
}

bool RootStore::contains(const x509::Certificate& cert) const {
  return identity_index_.contains(identity_hex(cert));
}

bool RootStore::contains_identity(ByteView identity_key) const {
  return identity_index_.contains(to_hex(identity_key));
}

bool RootStore::contains_equivalent(const x509::Certificate& cert) const {
  return equivalence_index_.contains(equivalence_hex(cert));
}

const x509::Certificate* RootStore::find_equivalent(
    const x509::Certificate& cert) const {
  const auto it = equivalence_index_.find(equivalence_hex(cert));
  if (it == equivalence_index_.end()) return nullptr;
  return &certs_[it->second];
}

const x509::Certificate* RootStore::find_identity(ByteView identity_key) const {
  const auto it = identity_index_.find(to_hex(identity_key));
  if (it == identity_index_.end()) return nullptr;
  return &certs_[it->second];
}

StoreDiff diff(const RootStore& a, const RootStore& b) {
  StoreDiff d;
  for (const auto& cert : a.certificates()) {
    if (b.contains(cert)) {
      ++d.identical;
    } else if (b.contains_equivalent(cert)) {
      ++d.equivalent_not_identical;
    } else {
      d.only_in_a.push_back(&cert);
    }
  }
  for (const auto& cert : b.certificates()) {
    if (!a.contains(cert) && !a.contains_equivalent(cert)) {
      d.only_in_b.push_back(&cert);
    }
  }
  return d;
}

}  // namespace tangled::rootstore
