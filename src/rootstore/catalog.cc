#include "rootstore/catalog.h"

#include <cassert>
#include <cstdio>

namespace tangled::rootstore {

namespace {

using crypto::KeyPair;
using crypto::sim_sig_scheme;

/// Well-known CA names for the head of the AOSP store (§2 mentions
/// Firmaprofesional, Comodo, and Türktrust explicitly). The remainder get
/// synthetic-but-stable names.
constexpr std::string_view kRealAospNames[] = {
    "Autoridad de Certificacion Firmaprofesional CIF A62634068",
    "COMODO Certification Authority",
    "TURKTRUST Elektronik Sertifika Hizmet Saglayicisi",
    "VeriSign Class 3 Public Primary Certification Authority - G5",
    "GeoTrust Global CA",
    "DigiCert High Assurance EV Root CA",
    "thawte Primary Root CA",
    "GlobalSign Root CA - R2",
    "Entrust Root Certification Authority",
    "Baltimore CyberTrust Root",
    "AddTrust External CA Root",
    "Equifax Secure Certificate Authority",
    "StartCom Certification Authority",
    "UTN-USERFirst-Hardware",
    "Go Daddy Class 2 Certification Authority",
    "Starfield Class 2 Certification Authority",
    "DST Root CA X3",
    "SwissSign Gold CA - G2",
    "QuoVadis Root CA 2",
    "Certum CA",
    "T-TeleSec GlobalRoot Class 2",
    "Buypass Class 3 Root CA",
    "Chambers of Commerce Root",
    "XRamp Global Certification Authority",
    "Secure Global CA",
    "GeoTrust Primary Certification Authority",
    "Network Solutions Certificate Authority",
    "Cybertrust Global Root",
    "GTE CyberTrust Global Root",
    "America Online Root Certification Authority 1",
};

constexpr std::size_t kFirmaprofesionalIndex = 0;

x509::Name root_name(std::string_view cn) {
  x509::Name name;
  name.add_country("US").add_organization(std::string(cn)).add_common_name(
      std::string(cn));
  return name;
}

std::string synthetic_name(const char* prefix, std::size_t index) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s %03zu", prefix, index);
  return buf;
}

pki::CaNode make_sim_root(Xoshiro256& rng, const x509::Name& subject,
                          const x509::Validity& validity,
                          std::uint64_t serial, bool legacy_v1 = false) {
  KeyPair key = crypto::generate_sim_keypair(rng);
  auto node = pki::make_root(sim_sig_scheme(), std::move(key), subject,
                             validity, serial, legacy_v1);
  assert(node.ok() && "root issuance cannot fail with valid inputs");
  return std::move(node).value();
}

/// Roots from the 1990s CA generation that were still shipped as X.509 v1
/// in 2014 (no extensions). Matching by issuer family keeps the 104-entry
/// spec table untouched.
bool is_legacy_v1_family(std::string_view display_name) {
  for (std::string_view prefix :
       {"VeriSign", "Thawte", "RSA Data Security", "ABA.ECOM", "EUnet"}) {
    if (display_name.substr(0, prefix.size()) == prefix) return true;
  }
  return false;
}

}  // namespace

AospGroup StoreUniverse::aosp_group(std::size_t aosp_index) {
  if (aosp_index < kAospMozillaIdentical) return AospGroup::kMozillaIdentical;
  if (aosp_index < kAospMozillaEquivalent) return AospGroup::kMozillaEquivalent;
  return AospGroup::kAospOnly;
}

std::vector<std::size_t> StoreUniverse::aosp_added_in(AndroidVersion v) const {
  const std::size_t hi = aosp_store_size(v);
  const std::size_t lo =
      v == AndroidVersion::k41
          ? 0
          : aosp_store_size(static_cast<AndroidVersion>(
                static_cast<std::size_t>(v) - 1));
  std::vector<std::size_t> out;
  out.reserve(hi - lo);
  for (std::size_t i = lo; i < hi; ++i) out.push_back(i);
  return out;
}

StoreUniverse StoreUniverse::build(std::uint64_t seed) {
  StoreUniverse u;
  Xoshiro256 rng(seed);

  const x509::Validity standard{asn1::make_time(2000, 5, 30),
                                asn1::make_time(2028, 8, 1)};
  // §2: the Firmaprofesional root in AOSP expired in Oct 2013 — inside the
  // paper's Nov 2013 – Apr 2014 measurement window.
  const x509::Validity expired{asn1::make_time(2001, 10, 24),
                               asn1::make_time(2013, 10, 24)};

  // --- AOSP roots -------------------------------------------------------
  const std::size_t n_aosp = aosp_store_size(AndroidVersion::k44);
  u.aosp_cas_.reserve(n_aosp);
  for (std::size_t i = 0; i < n_aosp; ++i) {
    const std::string cn =
        i < std::size(kRealAospNames)
            ? std::string(kRealAospNames[i])
            : synthetic_name("AOSP Synthetic Root CA", i);
    const x509::Validity& validity =
        i == kFirmaprofesionalIndex ? expired : standard;
    u.aosp_cas_.push_back(make_sim_root(rng, root_name(cn), validity, 10 + i));
  }
  u.expired_index_ = kFirmaprofesionalIndex;

  for (const AndroidVersion v : kAllAndroidVersions) {
    RootStore store("AOSP " + std::string(to_string(v)));
    for (std::size_t i = 0; i < aosp_store_size(v); ++i) {
      store.add(u.aosp_cas_[i].cert);
    }
    u.aosp_stores_[static_cast<std::size_t>(v)] = std::move(store);
  }

  // --- Mozilla ----------------------------------------------------------
  // 117 identical + 13 equivalent re-issues + 23 Mozilla-only = 153.
  u.mozilla_ = RootStore("Mozilla");
  for (std::size_t i = 0; i < kAospMozillaIdentical; ++i) {
    u.mozilla_.add(u.aosp_cas_[i].cert);
  }
  for (std::size_t i = kAospMozillaIdentical; i < kAospMozillaEquivalent; ++i) {
    // Re-issue with the same key and subject but a later validity window —
    // §4.2: "in most cases, only the expiration date change[s]".
    const pki::CaNode& original = u.aosp_cas_[i];
    const x509::Validity extended{asn1::make_time(2006, 1, 1),
                                  asn1::make_time(2036, 1, 1)};
    KeyPair same_key;
    same_key.pub = original.key.pub;
    auto reissue = pki::make_root(sim_sig_scheme(), std::move(same_key),
                                  original.cert.subject(), extended,
                                  5000 + i);
    assert(reissue.ok());
    u.mozilla_reissues_.push_back(std::move(reissue).value());
    u.mozilla_.add(u.mozilla_reissues_.back().cert);
  }
  // --- Non-AOSP catalog roots (members of Mozilla/iOS7 are counted inside
  // those stores' Table 1 sizes) ----------------------------------------
  for (const NonAospCertSpec& spec : nonaosp_catalog()) {
    x509::Name name;
    name.add_organization(std::string(spec.display_name))
        .add_common_name(std::string(spec.display_name) + " [" +
                         std::string(spec.paper_tag) + "]");
    u.nonaosp_cas_.push_back(
        make_sim_root(rng, name, standard, 7000 + u.nonaosp_cas_.size(),
                      is_legacy_v1_family(spec.display_name)));
  }
  const auto catalog = nonaosp_catalog();
  std::size_t mozilla_members = kAospMozillaEquivalent;  // 130 so far
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].in_mozilla) {
      u.mozilla_.add(u.nonaosp_cas_[i].cert);
      ++mozilla_members;  // Table 4: 16 of these
    }
  }
  while (mozilla_members < kMozillaStoreSize) {  // 7 Mozilla-only fillers
    u.mozilla_only_cas_.push_back(make_sim_root(
        rng,
        root_name(synthetic_name("Mozilla Program Root CA",
                                 u.mozilla_only_cas_.size())),
        standard, 6000 + u.mozilla_only_cas_.size()));
    u.mozilla_.add(u.mozilla_only_cas_.back().cert);
    ++mozilla_members;
  }

  // --- iOS7 ---------------------------------------------------------------
  // 130 shared with AOSP 4.4, the catalog's 23 iOS7 members, and iOS7-only
  // filler up to 227.
  u.ios7_ = RootStore("iOS7");
  // iOS7 shares the whole AOSP∩Mozilla band [0..130): that way every leaf
  // that Mozilla validates, iOS7 validates too, and iOS7's surplus comes
  // only from its own extra roots (Table 3: iOS7 > AOSP 4.4 > Mozilla).
  constexpr std::size_t kIosAospShared = 130;
  for (std::size_t i = 0; i < kIosAospShared; ++i) {
    u.ios7_.add(u.aosp_cas_[i].cert);
  }
  std::size_t ios7_members = kIosAospShared;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].in_ios7) {
      u.ios7_.add(u.nonaosp_cas_[i].cert);
      ++ios7_members;
    }
  }
  while (ios7_members < kIos7StoreSize) {
    u.ios7_only_cas_.push_back(make_sim_root(
        rng,
        root_name(synthetic_name("iOS7 Program Root CA",
                                 u.ios7_only_cas_.size())),
        standard, 8000 + u.ios7_only_cas_.size()));
    u.ios7_.add(u.ios7_only_cas_.back().cert);
    ++ios7_members;
  }

  return u;
}

}  // namespace tangled::rootstore
