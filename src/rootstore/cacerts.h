// On-disk root-store layout matching Android's
// /system/etc/security/cacerts (paper §2, footnote 2): one PEM file per
// root certificate, named `<subject-hash>.<n>` where the 8-hex-digit
// subject hash is the same 32-bit tag the paper prints in Figure 2, and
// `<n>` disambiguates hash collisions (OpenSSL c_rehash convention).
//
// This is what a rooted app manipulates when it "adds and removes
// certificates in the root store without any user awareness" (§6), so the
// loader is deliberately forgiving: non-certificate files are skipped and
// reported rather than failing the whole store.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "rootstore/rootstore.h"
#include "util/result.h"

namespace tangled::rootstore {

/// Writes every certificate in `store` into `dir` (created if needed),
/// one PEM file each, Android naming. Existing entries are overwritten.
Result<void> save_cacerts(const RootStore& store,
                          const std::filesystem::path& dir);

struct LoadReport {
  RootStore store;
  /// Files skipped because they did not parse as certificates.
  std::vector<std::string> skipped_files;
};

/// Reads a cacerts directory back into a store named `name`.
Result<LoadReport> load_cacerts(std::string name,
                                const std::filesystem::path& dir);

/// The filename (without the dedup suffix) Android would use.
std::string cacerts_basename(const x509::Certificate& cert);

}  // namespace tangled::rootstore
