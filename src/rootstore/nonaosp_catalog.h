// The catalog of non-AOSP root certificates observed on Android devices,
// transcribed from the paper's Figure 2 (all 104 x-axis entries, with the
// bracketed 32-bit subject tags as printed) plus the attribution facts
// stated in §5.1/§5.2:
//
//  * membership class (marker shape in Fig. 2): recorded by the Notary and
//    present in Mozilla+iOS7 / iOS7 only / Android only, or never recorded;
//  * store membership flags (Mozilla / iOS7) independent of Notary
//    observation — Table 4 needs |non-AOSP ∩ Mozilla| = 16;
//  * usage category (TLS vs code-signing/FOTA/SUPL/payment, §5.1);
//  * placements: which manufacturer×version or operator rows install the
//    certificate, with the session-frequency the marker size encodes.
//
// Three entries are flagged census_excluded: they model the §5.2 user-added
// singleton certificates that the Table 4 category census leaves out,
// keeping the non-AOSP census at the paper's 101 = 85 + 16 split.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace tangled::rootstore {

/// Fig. 2 marker shape: how the Notary classified the certificate.
enum class NotaryClass : std::uint8_t {
  kMozillaAndIos7,  // recorded; in both Mozilla and iOS7 stores (6.7%)
  kIos7Only,        // recorded; in iOS7 only (16.2%)
  kAndroidOnly,     // recorded; Android-specific (37.1%)
  kNotRecorded,     // never seen by the Notary (40.0%)
};

/// What the certificate is for (§5.1 discusses non-TLS roots).
enum class UsageCategory : std::uint8_t {
  kTls,          // ordinary server authentication
  kCodeSigning,  // e.g. GeoTrust CA for UTI (Java Verified Program)
  kFota,         // firmware-over-the-air (Motorola FOTA)
  kSupl,         // secure user-plane location (Motorola SUPL)
  kPayment,      // e.g. Visa Information Delivery
  kEmail,        // S/MIME-ish client certs
  kTimestamping,
  kOperatorApi,  // operator service APIs (Vodafone widget domain, ...)
};

/// A row of Figure 2 the certificate appears in.
enum class PlacementRow : std::uint8_t {
  // Manufacturer × Android version rows.
  kHtc41, kHtc42, kHtc43, kHtc44,
  kMotorola41,
  kSamsung41, kSamsung42, kSamsung43, kSamsung44,
  kSony43,
  // Operator rows.
  kThreeUk, kAttUs, kBouyguesFr, kEeUk, kFreeFr, kOrangeFr, kSfrFr,
  kSprintUs, kTmobileUs, kTelstraAu, kVerizonUs, kVodafoneDe,
};

constexpr bool is_operator_row(PlacementRow row) {
  return row >= PlacementRow::kThreeUk;
}

/// Human-readable row label matching the paper's axis ("SAMSUNG 4.2",
/// "VERIZON(US)").
std::string_view row_label(PlacementRow row);

/// One marker: the certificate appears in `row` with this session ratio.
struct Placement {
  PlacementRow row;
  double frequency;  // ratio of modified-store sessions exhibiting the cert
};

struct NonAospCertSpec {
  std::string_view display_name;  // x-axis label
  std::string_view paper_tag;     // bracketed 8-hex-digit tag as printed
  NotaryClass notary_class;
  bool in_mozilla;     // store membership irrespective of Notary sightings
  bool in_ios7;
  UsageCategory usage;
  bool census_excluded;  // §5.2 user-added singleton, out of Table 4 scope
  std::span<const Placement> placements;
};

/// All Figure 2 certificates, in x-axis order.
std::span<const NonAospCertSpec> nonaosp_catalog();

/// Census helpers (entries with census_excluded filtered out).
std::size_t count_census_entries();                 // paper: 101
std::size_t count_census_in_mozilla();              // paper: 16
std::size_t count_census_not_in_mozilla();          // paper: 85

}  // namespace tangled::rootstore
