#include "rootstore/cacerts.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "x509/pem.h"

namespace tangled::rootstore {

namespace fs = std::filesystem;

std::string cacerts_basename(const x509::Certificate& cert) {
  return cert.subject_tag();
}

Result<void> save_cacerts(const RootStore& store, const fs::path& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return state_error("cannot create " + dir.string() + ": " + ec.message());

  // Count per-hash files for the `.N` suffix.
  std::unordered_map<std::string, int> suffix;
  for (const auto& cert : store.certificates()) {
    const std::string base = cacerts_basename(cert);
    const int n = suffix[base]++;
    const fs::path file = dir / (base + "." + std::to_string(n));
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    if (!out) return state_error("cannot write " + file.string());
    out << x509::to_pem(cert);
    if (!out.good()) return state_error("short write to " + file.string());
  }
  return {};
}

Result<LoadReport> load_cacerts(std::string name, const fs::path& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return not_found_error("not a directory: " + dir.string());
  }
  LoadReport report;
  report.store = RootStore(std::move(name));

  // Deterministic order regardless of directory iteration order.
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto certs = x509::certificates_from_pem(buffer.str());
    if (!certs.ok() || certs.value().empty()) {
      report.skipped_files.push_back(file.filename().string());
      continue;
    }
    for (auto& cert : certs.value()) {
      report.store.add(std::move(cert));
    }
  }
  return report;
}

}  // namespace tangled::rootstore
