// X.509v3 certificates: value type, DER parser/encoder, fingerprints, and
// the two identity notions the paper uses:
//
//  * identity key   — hash of (RSA modulus, signature bytes). §4.1: "we
//    established certificate identity based on unique fields (RSA key
//    modulus and signature string)".
//  * equivalence key — hash of (subject DN, RSA modulus). §4.2: roots that
//    are not byte-equivalent are still "equivalent" when subject and
//    modulus match (they validate the same children).
//
// Also the paper's display tag: the first 32 bits of the hashed subject,
// printed as 8 hex digits (Figure 2's bracketed values, e.g. "b530fe64").
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "asn1/der.h"
#include "asn1/oid.h"
#include "asn1/time.h"
#include "crypto/hash.h"
#include "crypto/rsa.h"
#include "util/bytes.h"
#include "util/interner.h"
#include "util/result.h"
#include "x509/extensions.h"
#include "x509/name.h"

namespace tangled::x509 {

/// Process-global interners mapping certificate digests to dense ids.
/// Every parsed certificate registers its fingerprint, equivalence key,
/// and SPKI hash once at intern time; the verify/census hot paths then key
/// loop guards, dedup sets, cache keys, and accounting maps on the small
/// ids instead of 32-byte digests or hex strings. Ids are process-local
/// and never serialized — the interners' reverse lookup recovers the
/// digest whenever canonical bytes are needed (snapshots, exports).
util::DigestInterner& cert_fingerprint_ids();
util::DigestInterner& cert_equivalence_ids();
util::DigestInterner& cert_spki_ids();
util::DigestInterner& cert_identity_ids();

struct Validity {
  asn1::Time not_before;
  asn1::Time not_after;

  bool contains(const asn1::Time& at) const {
    return not_before <= at && at <= not_after;
  }
  bool expired_at(const asn1::Time& at) const { return at > not_after; }

  friend bool operator==(const Validity&, const Validity&) = default;
};

/// Compute-once identity material for one parsed certificate. Interned by
/// the parser: every copy of a Certificate shares the same immutable
/// instance, so the digests and hex renderings below are computed exactly
/// once per distinct parse no matter how often the certificate is copied,
/// hashed, or printed (the §5.3 census queries them per ingested leaf).
struct CertificateIdentity {
  std::uint64_t der_hash = 0;           // fnv1a64(full DER)
  std::uint64_t subject_name_hash = 0;  // fnv1a64(subject DER)
  std::uint64_t issuer_name_hash = 0;   // fnv1a64(issuer DER)
  Bytes subject_der;                    // canonical subject Name encoding
  Bytes issuer_der;                     // canonical issuer Name encoding
  bool is_ca = false;                   // resolved CA-bit (incl. v1 legacy)
  std::optional<int> path_len;          // pathLenConstraint, when present
  std::int64_t not_before_unix = 0;     // validity window as unix seconds
  std::int64_t not_after_unix = 0;
  Bytes fingerprint;                    // SHA-256(full DER)
  std::string fingerprint_hex;
  Bytes identity;                       // SHA-256(modulus || signature), §4.1
  std::string identity_hex;
  Bytes equivalence;                    // SHA-256(subject DER || modulus), §4.2
  std::string equivalence_hex;
  Bytes spki_sha256;                    // SHA-256(modulus || exponent)
  std::uint32_t dense_id = 0;           // cert_fingerprint_ids() id
  std::uint32_t equivalence_id = 0;     // cert_equivalence_ids() id
  std::uint32_t spki_id = 0;            // cert_spki_ids() id
  std::uint32_t identity_id = 0;        // cert_identity_ids() id
  crypto::Sha256 sim_prefix;            // SHA-256 mid-state over modulus bytes
};

class Certificate {
 public:
  Certificate() = default;

  /// Parses a DER-encoded certificate. Strict: rejects trailing bytes,
  /// non-v3-compatible structure, and non-RSA subject keys.
  static Result<Certificate> from_der(ByteView der);

  // --- TBS fields -----------------------------------------------------
  int version() const { return version_; }                 // 1 or 3
  const Bytes& serial() const { return serial_; }          // big-endian magnitude
  const asn1::Oid& signature_algorithm() const { return sig_alg_; }
  const Name& issuer() const { return issuer_; }
  const Validity& validity() const { return validity_; }
  const Name& subject() const { return subject_; }
  const crypto::RsaPublicKey& public_key() const { return public_key_; }
  const ExtensionSet& extensions() const { return extensions_; }
  const Bytes& signature() const { return signature_; }

  /// Raw bytes the signature covers (the TBSCertificate TLV).
  const Bytes& tbs_der() const { return tbs_der_; }
  /// Full certificate encoding.
  const Bytes& der() const { return der_; }

  // --- Derived properties ----------------------------------------------
  bool is_self_issued() const {
    const CertificateIdentity& id = interned();
    return id.subject_name_hash == id.issuer_name_hash &&
           bytes_equal(id.subject_der, id.issuer_der);
  }
  bool is_ca() const { return interned().is_ca; }
  /// BasicConstraints pathLenConstraint, parsed once at intern time; the
  /// verifier's path checks read this instead of re-parsing the extension.
  std::optional<int> path_len_constraint() const { return interned().path_len; }
  bool expired_at(const asn1::Time& at) const { return validity_.expired_at(at); }
  /// Validity checks against a pre-converted unix timestamp — the verifier
  /// and census convert their reference time once, not per candidate.
  bool valid_at_unix(std::int64_t at) const {
    const CertificateIdentity& id = interned();
    return id.not_before_unix <= at && at <= id.not_after_unix;
  }
  bool expired_at_unix(std::int64_t at) const {
    return at > interned().not_after_unix;
  }
  /// Validity end as unix seconds — the store journals it so expiry counts
  /// can be derived without re-parsing the DER.
  std::int64_t not_after_unix() const { return interned().not_after_unix; }

  // All identity material is interned (see CertificateIdentity): computed
  // once when the certificate is parsed, shared by every copy, returned by
  // reference. Thread-safe for any certificate produced by from_der or the
  // builder; only a default-constructed placeholder computes lazily.

  /// SHA-256 over the full DER (the usual fingerprint).
  const Bytes& fingerprint_sha256() const { return interned().fingerprint; }
  /// fingerprint_sha256 as lowercase hex (dedup keys, display).
  const std::string& fingerprint_hex() const {
    return interned().fingerprint_hex;
  }

  /// Paper identity: SHA-256 over (modulus bytes || signature bytes).
  const Bytes& identity_key() const { return interned().identity; }
  const std::string& identity_hex() const { return interned().identity_hex; }
  /// Paper equivalence: SHA-256 over (subject DER || modulus bytes).
  const Bytes& equivalence_key() const { return interned().equivalence; }
  const std::string& equivalence_hex() const {
    return interned().equivalence_hex;
  }

  /// fnv1a64 of the full DER — the cheap non-cryptographic handle the
  /// lookup indexes use (collision-prone: compare DER or fingerprints on a
  /// hit before trusting it).
  std::uint64_t der_hash() const { return interned().der_hash; }
  /// fnv1a64 of the subject / issuer Name DER; equal to
  /// pki::name_hash(subject()) / pki::name_hash(issuer()) but computed once.
  std::uint64_t subject_name_hash() const {
    return interned().subject_name_hash;
  }
  std::uint64_t issuer_name_hash() const { return interned().issuer_name_hash; }
  /// Canonical DER of the subject / issuer Name. For DER-parsed
  /// certificates byte equality here is exactly Name equality, so the
  /// verifier's candidate loops compare these (hash first, then bytes)
  /// instead of deep-comparing parsed RDN structures.
  const Bytes& subject_name_der() const { return interned().subject_der; }
  const Bytes& issuer_name_der() const { return interned().issuer_der; }
  /// SHA-256 over the subject public key (modulus || exponent) — the issuer
  /// half of the verify-cache link key.
  const Bytes& spki_sha256() const { return interned().spki_sha256; }

  /// Dense process-local ids (see the interner accessors above). Two
  /// certificates share dense_id() iff their DER is byte-identical, share
  /// equivalence_id() iff their equivalence keys match, and share
  /// spki_id() iff they carry the same public key — so the hot paths
  /// compare one 32-bit word where they used to compare digests or DER.
  std::uint32_t dense_id() const { return interned().dense_id; }
  std::uint32_t equivalence_id() const { return interned().equivalence_id; }
  std::uint32_t spki_id() const { return interned().spki_id; }
  std::uint32_t identity_id() const { return interned().identity_id; }

  /// Interned SimSig hash prefix for certificates *issued by* this one:
  /// SHA-256 mid-state already fed this certificate's modulus bytes.
  const crypto::Sha256& sim_sig_prefix_state() const {
    return interned().sim_prefix;
  }

  /// First 32 bits of SHA-1(subject DER) as 8 lowercase hex digits — the
  /// bracketed tag format used in the paper's Figure 2.
  std::string subject_tag() const;

  /// Verifies `signature()` over `tbs_der()` with the issuer's key,
  /// dispatching on signature_algorithm().
  Result<void> check_signature_from(const crypto::RsaPublicKey& issuer_key) const;

  /// Same verification, but given the issuer *certificate*: SimSig
  /// signatures reuse the issuer's interned hash prefix (no modulus
  /// re-serialization, no prefix re-hash) when TANGLED_BATCH_HASH is on.
  /// Result identical to the key overload by construction.
  Result<void> check_signature_from(const Certificate& issuer) const;

  friend bool operator==(const Certificate& a, const Certificate& b) {
    return a.der_ == b.der_;
  }

 private:
  friend class CertificateBuilder;

  /// The interned identity block. from_der computes it eagerly, before the
  /// certificate is ever shared, so concurrent readers only ever see a
  /// fully-built instance. The lazy branch exists solely for
  /// default-constructed placeholders (never shared across threads).
  const CertificateIdentity& interned() const {
    if (identity_ == nullptr) identity_ = compute_identity();
    return *identity_;
  }
  std::shared_ptr<const CertificateIdentity> compute_identity() const;

  int version_ = 3;
  Bytes serial_;
  asn1::Oid sig_alg_;
  Name issuer_;
  Validity validity_;
  Name subject_;
  crypto::RsaPublicKey public_key_;
  ExtensionSet extensions_;
  Bytes signature_;
  Bytes tbs_der_;
  Bytes der_;
  mutable std::shared_ptr<const CertificateIdentity> identity_;
};

/// Encodes an AlgorithmIdentifier ::= SEQUENCE { algorithm OID, NULL }.
void write_algorithm_identifier(asn1::DerWriter& w, const asn1::Oid& oid);

/// Encodes a SubjectPublicKeyInfo for an RSA key.
Bytes encode_spki(const crypto::RsaPublicKey& key);

/// Parses an AlgorithmIdentifier, returning its OID (parameters ignored).
Result<asn1::Oid> read_algorithm_identifier(asn1::DerReader& r);

}  // namespace tangled::x509
