// X.509v3 certificates: value type, DER parser/encoder, fingerprints, and
// the two identity notions the paper uses:
//
//  * identity key   — hash of (RSA modulus, signature bytes). §4.1: "we
//    established certificate identity based on unique fields (RSA key
//    modulus and signature string)".
//  * equivalence key — hash of (subject DN, RSA modulus). §4.2: roots that
//    are not byte-equivalent are still "equivalent" when subject and
//    modulus match (they validate the same children).
//
// Also the paper's display tag: the first 32 bits of the hashed subject,
// printed as 8 hex digits (Figure 2's bracketed values, e.g. "b530fe64").
#pragma once

#include <string>

#include "asn1/der.h"
#include "asn1/oid.h"
#include "asn1/time.h"
#include "crypto/rsa.h"
#include "util/bytes.h"
#include "util/result.h"
#include "x509/extensions.h"
#include "x509/name.h"

namespace tangled::x509 {

struct Validity {
  asn1::Time not_before;
  asn1::Time not_after;

  bool contains(const asn1::Time& at) const {
    return not_before <= at && at <= not_after;
  }
  bool expired_at(const asn1::Time& at) const { return at > not_after; }

  friend bool operator==(const Validity&, const Validity&) = default;
};

class Certificate {
 public:
  Certificate() = default;

  /// Parses a DER-encoded certificate. Strict: rejects trailing bytes,
  /// non-v3-compatible structure, and non-RSA subject keys.
  static Result<Certificate> from_der(ByteView der);

  // --- TBS fields -----------------------------------------------------
  int version() const { return version_; }                 // 1 or 3
  const Bytes& serial() const { return serial_; }          // big-endian magnitude
  const asn1::Oid& signature_algorithm() const { return sig_alg_; }
  const Name& issuer() const { return issuer_; }
  const Validity& validity() const { return validity_; }
  const Name& subject() const { return subject_; }
  const crypto::RsaPublicKey& public_key() const { return public_key_; }
  const ExtensionSet& extensions() const { return extensions_; }
  const Bytes& signature() const { return signature_; }

  /// Raw bytes the signature covers (the TBSCertificate TLV).
  const Bytes& tbs_der() const { return tbs_der_; }
  /// Full certificate encoding.
  const Bytes& der() const { return der_; }

  // --- Derived properties ----------------------------------------------
  bool is_self_issued() const { return subject_ == issuer_; }
  bool is_ca() const;
  bool expired_at(const asn1::Time& at) const { return validity_.expired_at(at); }

  /// SHA-256 over the full DER (the usual fingerprint).
  Bytes fingerprint_sha256() const;

  /// Paper identity: SHA-256 over (modulus bytes || signature bytes).
  Bytes identity_key() const;
  /// Paper equivalence: SHA-256 over (subject DER || modulus bytes).
  Bytes equivalence_key() const;

  /// First 32 bits of SHA-1(subject DER) as 8 lowercase hex digits — the
  /// bracketed tag format used in the paper's Figure 2.
  std::string subject_tag() const;

  /// Verifies `signature()` over `tbs_der()` with the issuer's key,
  /// dispatching on signature_algorithm().
  Result<void> check_signature_from(const crypto::RsaPublicKey& issuer_key) const;

  friend bool operator==(const Certificate& a, const Certificate& b) {
    return a.der_ == b.der_;
  }

 private:
  friend class CertificateBuilder;

  int version_ = 3;
  Bytes serial_;
  asn1::Oid sig_alg_;
  Name issuer_;
  Validity validity_;
  Name subject_;
  crypto::RsaPublicKey public_key_;
  ExtensionSet extensions_;
  Bytes signature_;
  Bytes tbs_der_;
  Bytes der_;
};

/// Encodes an AlgorithmIdentifier ::= SEQUENCE { algorithm OID, NULL }.
void write_algorithm_identifier(asn1::DerWriter& w, const asn1::Oid& oid);

/// Encodes a SubjectPublicKeyInfo for an RSA key.
Bytes encode_spki(const crypto::RsaPublicKey& key);

/// Parses an AlgorithmIdentifier, returning its OID (parameters ignored).
Result<asn1::Oid> read_algorithm_identifier(asn1::DerReader& r);

}  // namespace tangled::x509
