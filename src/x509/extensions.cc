#include "x509/extensions.h"

#include "asn1/der.h"

namespace tangled::x509 {

namespace {

constexpr std::uint8_t kDnsNameTag = 0x82;  // [2] IMPLICIT IA5String

}  // namespace

// ---------------------------------------------------------------------------
// BasicConstraints
// ---------------------------------------------------------------------------

Bytes BasicConstraints::to_der() const {
  asn1::DerWriter w;
  w.begin(asn1::Tag::kSequence);
  // DER: DEFAULT FALSE must be omitted when false.
  if (is_ca) w.write_boolean(true);
  if (path_len.has_value()) w.write_integer(*path_len);
  w.end();
  return w.take();
}

Result<BasicConstraints> BasicConstraints::from_der(ByteView der) {
  asn1::DerReader r(der);
  auto seq = r.expect(asn1::Tag::kSequence);
  if (!seq.ok()) return seq.error();
  if (auto end = r.expect_end(); !end.ok()) return end.error();
  BasicConstraints bc;
  asn1::DerReader body(seq.value().body);
  if (!body.at_end()) {
    auto tag = body.peek_tag();
    if (tag.ok() && tag.value() == static_cast<std::uint8_t>(asn1::Tag::kBoolean)) {
      auto ca = body.read_boolean();
      if (!ca.ok()) return ca.error();
      bc.is_ca = ca.value();
    }
  }
  if (!body.at_end()) {
    auto len = body.read_small_integer();
    if (!len.ok()) return len.error();
    if (len.value() < 0) return parse_error("negative pathLenConstraint");
    bc.path_len = static_cast<int>(len.value());
  }
  if (auto end = body.expect_end(); !end.ok()) return end.error();
  return bc;
}

// ---------------------------------------------------------------------------
// KeyUsage
// ---------------------------------------------------------------------------

Bytes KeyUsage::to_der() const {
  // KeyUsage ::= BIT STRING; bit 0 = digitalSignature, 2 = keyEncipherment,
  // 5 = keyCertSign, 6 = cRLSign. DER requires trailing-zero-bit trimming;
  // for simplicity we always emit one content octet with unused-bit count 0
  // plus explicit trailing zeros — accepted by our reader and unambiguous.
  std::uint8_t bits = 0;
  if (digital_signature) bits |= 0x80;
  if (key_encipherment) bits |= 0x20;
  if (key_cert_sign) bits |= 0x04;
  if (crl_sign) bits |= 0x02;
  asn1::DerWriter w;
  const std::uint8_t body = bits;
  w.write_bit_string(ByteView(&body, 1));
  return w.take();
}

Result<KeyUsage> KeyUsage::from_der(ByteView der) {
  asn1::DerReader r(der);
  auto bits = r.read_bit_string();
  if (!bits.ok()) return bits.error();
  if (auto end = r.expect_end(); !end.ok()) return end.error();
  KeyUsage ku;
  if (!bits.value().empty()) {
    const std::uint8_t b = bits.value()[0];
    ku.digital_signature = (b & 0x80) != 0;
    ku.key_encipherment = (b & 0x20) != 0;
    ku.key_cert_sign = (b & 0x04) != 0;
    ku.crl_sign = (b & 0x02) != 0;
  }
  return ku;
}

// ---------------------------------------------------------------------------
// ExtendedKeyUsage
// ---------------------------------------------------------------------------

bool ExtendedKeyUsage::allows(const asn1::Oid& purpose) const {
  for (const auto& p : purposes) {
    if (p == purpose) return true;
  }
  return false;
}

Bytes ExtendedKeyUsage::to_der() const {
  asn1::DerWriter w;
  w.begin(asn1::Tag::kSequence);
  for (const auto& p : purposes) w.write_oid(p);
  w.end();
  return w.take();
}

Result<ExtendedKeyUsage> ExtendedKeyUsage::from_der(ByteView der) {
  asn1::DerReader r(der);
  auto seq = r.expect(asn1::Tag::kSequence);
  if (!seq.ok()) return seq.error();
  if (auto end = r.expect_end(); !end.ok()) return end.error();
  ExtendedKeyUsage eku;
  asn1::DerReader body(seq.value().body);
  while (!body.at_end()) {
    auto oid = body.read_oid();
    if (!oid.ok()) return oid.error();
    eku.purposes.push_back(std::move(oid).value());
  }
  if (eku.purposes.empty()) return parse_error("empty ExtendedKeyUsage");
  return eku;
}

// ---------------------------------------------------------------------------
// SubjectAltName
// ---------------------------------------------------------------------------

Bytes SubjectAltName::to_der() const {
  asn1::DerWriter w;
  w.begin(asn1::Tag::kSequence);
  for (const auto& dns : dns_names) {
    w.primitive(kDnsNameTag, to_bytes(dns));
  }
  w.end();
  return w.take();
}

Result<SubjectAltName> SubjectAltName::from_der(ByteView der) {
  asn1::DerReader r(der);
  auto seq = r.expect(asn1::Tag::kSequence);
  if (!seq.ok()) return seq.error();
  if (auto end = r.expect_end(); !end.ok()) return end.error();
  SubjectAltName san;
  asn1::DerReader body(seq.value().body);
  while (!body.at_end()) {
    auto tlv = body.read_tlv();
    if (!tlv.ok()) return tlv.error();
    // Skip non-dNSName general names (not interpreted by this toolkit).
    if (tlv.value().raw_tag == kDnsNameTag) {
      san.dns_names.push_back(to_string(tlv.value().body));
    }
  }
  return san;
}

// ---------------------------------------------------------------------------
// Key identifiers
// ---------------------------------------------------------------------------

Bytes encode_key_id_extension(ByteView key_id, bool authority) {
  asn1::DerWriter w;
  if (authority) {
    // AuthorityKeyIdentifier ::= SEQUENCE { keyIdentifier [0] IMPLICIT ... }
    w.begin(asn1::Tag::kSequence);
    w.primitive(asn1::context_tag(0, /*constructed=*/false), key_id);
    w.end();
  } else {
    // SubjectKeyIdentifier ::= OCTET STRING
    w.write_octet_string(key_id);
  }
  return w.take();
}

Result<Bytes> decode_subject_key_id(ByteView der) {
  asn1::DerReader r(der);
  auto id = r.read_octet_string();
  if (!id.ok()) return id;
  if (auto end = r.expect_end(); !end.ok()) return end.error();
  return id;
}

Result<Bytes> decode_authority_key_id(ByteView der) {
  asn1::DerReader r(der);
  auto seq = r.expect(asn1::Tag::kSequence);
  if (!seq.ok()) return seq.error();
  if (auto end = r.expect_end(); !end.ok()) return end.error();
  asn1::DerReader body(seq.value().body);
  while (!body.at_end()) {
    auto tlv = body.read_tlv();
    if (!tlv.ok()) return tlv.error();
    if (tlv.value().is_context(0)) {
      return Bytes(tlv.value().body.begin(), tlv.value().body.end());
    }
  }
  return not_found_error("AuthorityKeyIdentifier without keyIdentifier");
}

// ---------------------------------------------------------------------------
// ExtensionSet
// ---------------------------------------------------------------------------

const Extension* ExtensionSet::find(const asn1::Oid& oid) const {
  for (const Extension& ext : extensions_) {
    if (ext.oid == oid) return &ext;
  }
  return nullptr;
}

std::optional<BasicConstraints> ExtensionSet::basic_constraints() const {
  const Extension* ext = find(asn1::oids::basic_constraints());
  if (ext == nullptr) return std::nullopt;
  auto parsed = BasicConstraints::from_der(ext->value);
  if (!parsed.ok()) return std::nullopt;
  return parsed.value();
}

std::optional<KeyUsage> ExtensionSet::key_usage() const {
  const Extension* ext = find(asn1::oids::key_usage());
  if (ext == nullptr) return std::nullopt;
  auto parsed = KeyUsage::from_der(ext->value);
  if (!parsed.ok()) return std::nullopt;
  return parsed.value();
}

std::optional<ExtendedKeyUsage> ExtensionSet::extended_key_usage() const {
  const Extension* ext = find(asn1::oids::ext_key_usage());
  if (ext == nullptr) return std::nullopt;
  auto parsed = ExtendedKeyUsage::from_der(ext->value);
  if (!parsed.ok()) return std::nullopt;
  return parsed.value();
}

std::optional<SubjectAltName> ExtensionSet::subject_alt_name() const {
  const Extension* ext = find(asn1::oids::subject_alt_name());
  if (ext == nullptr) return std::nullopt;
  auto parsed = SubjectAltName::from_der(ext->value);
  if (!parsed.ok()) return std::nullopt;
  return parsed.value();
}

std::optional<Bytes> ExtensionSet::subject_key_id() const {
  const Extension* ext = find(asn1::oids::subject_key_id());
  if (ext == nullptr) return std::nullopt;
  auto parsed = decode_subject_key_id(ext->value);
  if (!parsed.ok()) return std::nullopt;
  return parsed.value();
}

std::optional<Bytes> ExtensionSet::authority_key_id() const {
  const Extension* ext = find(asn1::oids::authority_key_id());
  if (ext == nullptr) return std::nullopt;
  auto parsed = decode_authority_key_id(ext->value);
  if (!parsed.ok()) return std::nullopt;
  return parsed.value();
}

}  // namespace tangled::x509
