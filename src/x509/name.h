// X.501 distinguished names: RDNSequence model, DER codec, RFC 4514-style
// rendering ("CN=DoD CLASS 3 Root CA,OU=PKI,O=U.S. Government,C=US").
//
// The model is deliberately simple — one attribute per RDN is what every
// certificate in this toolkit (and the overwhelming majority in the wild)
// uses, but multi-attribute RDNs still parse and re-encode faithfully.
#pragma once

#include <string>
#include <vector>

#include "asn1/der.h"
#include "asn1/oid.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tangled::x509 {

/// One AttributeTypeAndValue, e.g. (id-at-cn, "DoD CLASS 3 Root CA").
struct Attribute {
  asn1::Oid type;
  std::string value;

  friend bool operator==(const Attribute&, const Attribute&) = default;
  friend auto operator<=>(const Attribute&, const Attribute&) = default;
};

/// One RelativeDistinguishedName (SET of attributes; usually a single one).
struct Rdn {
  std::vector<Attribute> attributes;

  friend bool operator==(const Rdn&, const Rdn&) = default;
};

/// A distinguished name: SEQUENCE of RDNs, outermost (usually C) first.
class Name {
 public:
  Name() = default;

  /// Appends one single-attribute RDN in wire order. Conventional names are
  /// built country-first: add_country("US").add_organization(...).add_common_name(...).
  Name& add(const asn1::Oid& type, std::string value);
  Name& add_country(std::string value) { return add(asn1::oids::country(), std::move(value)); }
  Name& add_state(std::string value) { return add(asn1::oids::state(), std::move(value)); }
  Name& add_locality(std::string value) { return add(asn1::oids::locality(), std::move(value)); }
  Name& add_organization(std::string value) { return add(asn1::oids::organization(), std::move(value)); }
  Name& add_organizational_unit(std::string value) { return add(asn1::oids::organizational_unit(), std::move(value)); }
  Name& add_common_name(std::string value) { return add(asn1::oids::common_name(), std::move(value)); }
  Name& add_email(std::string value) { return add(asn1::oids::email_address(), std::move(value)); }

  const std::vector<Rdn>& rdns() const { return rdns_; }
  bool empty() const { return rdns_.empty(); }

  /// First value for `type`, or empty string.
  std::string find(const asn1::Oid& type) const;
  std::string common_name() const { return find(asn1::oids::common_name()); }
  std::string organization() const { return find(asn1::oids::organization()); }
  std::string country() const { return find(asn1::oids::country()); }

  /// DER: Name ::= SEQUENCE OF RelativeDistinguishedName.
  Bytes to_der() const;
  static Result<Name> from_der(ByteView der);
  /// Parses the *contents* of the outer SEQUENCE (used by the cert parser,
  /// which has already consumed the TLV).
  static Result<Name> from_der_body(ByteView body);

  /// RFC 4514-flavoured single-line rendering, most-specific (CN) first,
  /// e.g. "CN=DoD CLASS 3 Root CA,OU=PKI,OU=DoD,O=U.S. Government,C=US".
  std::string to_string() const;

  friend bool operator==(const Name&, const Name&) = default;

 private:
  std::vector<Rdn> rdns_;
};

}  // namespace tangled::x509
