#include "x509/builder.h"

#include "crypto/hash.h"

namespace tangled::x509 {

Bytes key_id_for(const crypto::RsaPublicKey& key) {
  return crypto::Sha1::hash(key.n.to_bytes());
}

CertificateBuilder::CertificateBuilder() {
  serial_ = Bytes{0x01};
  validity_.not_before = asn1::make_time(2012, 1, 1);
  validity_.not_after = asn1::make_time(2032, 1, 1);
}

CertificateBuilder& CertificateBuilder::serial(std::uint64_t serial) {
  serial_ = crypto::BigNum(serial).to_bytes();
  return *this;
}

CertificateBuilder& CertificateBuilder::serial_bytes(Bytes serial) {
  serial_ = std::move(serial);
  return *this;
}

CertificateBuilder& CertificateBuilder::subject(Name name) {
  subject_ = std::move(name);
  return *this;
}

CertificateBuilder& CertificateBuilder::issuer(Name name) {
  issuer_ = std::move(name);
  return *this;
}

CertificateBuilder& CertificateBuilder::not_before(asn1::Time t) {
  validity_.not_before = t;
  return *this;
}

CertificateBuilder& CertificateBuilder::not_after(asn1::Time t) {
  validity_.not_after = t;
  return *this;
}

CertificateBuilder& CertificateBuilder::public_key(crypto::RsaPublicKey key) {
  public_key_ = std::move(key);
  return *this;
}

CertificateBuilder& CertificateBuilder::ca(bool is_ca,
                                           std::optional<int> path_len) {
  BasicConstraints bc;
  bc.is_ca = is_ca;
  bc.path_len = path_len;
  extensions_.add(Extension{asn1::oids::basic_constraints(), true, bc.to_der()});
  return *this;
}

CertificateBuilder& CertificateBuilder::key_usage(KeyUsage usage) {
  extensions_.add(Extension{asn1::oids::key_usage(), true, usage.to_der()});
  return *this;
}

CertificateBuilder& CertificateBuilder::extended_key_usage(ExtendedKeyUsage eku) {
  extensions_.add(Extension{asn1::oids::ext_key_usage(), false, eku.to_der()});
  return *this;
}

CertificateBuilder& CertificateBuilder::dns_names(std::vector<std::string> names) {
  SubjectAltName san;
  san.dns_names = std::move(names);
  extensions_.add(Extension{asn1::oids::subject_alt_name(), false, san.to_der()});
  return *this;
}

CertificateBuilder& CertificateBuilder::key_ids(
    const crypto::RsaPublicKey& subject_key,
    const crypto::RsaPublicKey& issuer_key) {
  extensions_.add(Extension{asn1::oids::subject_key_id(), false,
                            encode_key_id_extension(key_id_for(subject_key),
                                                    /*authority=*/false)});
  extensions_.add(Extension{asn1::oids::authority_key_id(), false,
                            encode_key_id_extension(key_id_for(issuer_key),
                                                    /*authority=*/true)});
  return *this;
}

CertificateBuilder& CertificateBuilder::extension(Extension ext) {
  extensions_.add(std::move(ext));
  return *this;
}

CertificateBuilder& CertificateBuilder::legacy_v1(bool v1) {
  v1_ = v1;
  return *this;
}

Bytes CertificateBuilder::build_tbs(const asn1::Oid& sig_alg) const {
  asn1::DerWriter w;
  w.begin(asn1::Tag::kSequence);

  if (!v1_) {
    // version [0] EXPLICIT v3(2); v1 omits the field entirely (DEFAULT).
    w.begin(asn1::context_tag(0, /*constructed=*/true));
    w.write_integer(2);
    w.end();
  }

  w.write_integer_unsigned(serial_);
  write_algorithm_identifier(w, sig_alg);
  w.write_raw(issuer_.to_der());

  w.begin(asn1::Tag::kSequence);
  auto write_time = [&w](const asn1::Time& t) {
    if (t.needs_generalized()) {
      // Covers both ends of the UTCTime window: 2050+ per RFC 5280, and
      // pre-1950 (where the two-digit year would alias into 1950-2049).
      w.primitive(asn1::Tag::kGeneralizedTime, to_bytes(t.encode_generalized()));
    } else {
      // Inside [1950, 2049] encode_utc cannot fail.
      w.primitive(asn1::Tag::kUtcTime, to_bytes(t.encode_utc().value()));
    }
  };
  write_time(validity_.not_before);
  write_time(validity_.not_after);
  w.end();

  w.write_raw(subject_.to_der());
  w.write_raw(encode_spki(public_key_));

  if (!extensions_.empty() && !v1_) {
    w.begin(asn1::context_tag(3, /*constructed=*/true));
    w.begin(asn1::Tag::kSequence);
    for (const Extension& ext : extensions_.all()) {
      w.begin(asn1::Tag::kSequence);
      w.write_oid(ext.oid);
      if (ext.critical) w.write_boolean(true);
      w.write_octet_string(ext.value);
      w.end();
    }
    w.end();
    w.end();
  }

  w.end();
  return w.take();
}

Result<Certificate> CertificateBuilder::sign(
    const crypto::SignatureScheme& scheme,
    const crypto::KeyPair& issuer_key) const {
  if (subject_.empty() || issuer_.empty()) {
    return state_error("certificate needs subject and issuer names");
  }
  if (public_key_.n.is_zero()) {
    return state_error("certificate needs a subject public key");
  }
  const Bytes tbs = build_tbs(scheme.algorithm_oid());
  auto signature = scheme.sign(issuer_key, tbs);
  if (!signature.ok()) return signature.error();

  asn1::DerWriter w;
  w.begin(asn1::Tag::kSequence);
  w.write_raw(tbs);
  write_algorithm_identifier(w, scheme.algorithm_oid());
  w.write_bit_string(signature.value());
  w.end();

  // Re-parse so the returned value is exactly what a consumer would see on
  // the wire — and so the builder cannot emit anything the parser rejects.
  return Certificate::from_der(w.take());
}

}  // namespace tangled::x509
