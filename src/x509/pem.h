// PEM (RFC 7468) encapsulation for certificates: "-----BEGIN CERTIFICATE-----"
// blocks with base64 body, multi-block files (the on-disk layout of
// /system/etc/security/cacerts is one PEM file per root).
#pragma once

#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"
#include "x509/certificate.h"

namespace tangled::x509 {

/// Encodes DER as a single PEM block with the given label.
std::string pem_encode(ByteView der, std::string_view label = "CERTIFICATE");

/// Decodes the first PEM block with the given label; fails if absent.
Result<Bytes> pem_decode(std::string_view text,
                         std::string_view label = "CERTIFICATE");

/// Decodes every PEM block with the given label (multi-cert bundles).
Result<std::vector<Bytes>> pem_decode_all(std::string_view text,
                                          std::string_view label = "CERTIFICATE");

/// Convenience: certificate -> PEM and PEM -> certificate.
std::string to_pem(const Certificate& cert);
Result<Certificate> certificate_from_pem(std::string_view text);
Result<std::vector<Certificate>> certificates_from_pem(std::string_view text);

}  // namespace tangled::x509
