#include "x509/certificate.h"

#include "crypto/hash.h"
#include "crypto/signature.h"
#include "util/features.h"

namespace tangled::x509 {

util::DigestInterner& cert_fingerprint_ids() {
  static util::DigestInterner interner;
  return interner;
}
util::DigestInterner& cert_equivalence_ids() {
  static util::DigestInterner interner;
  return interner;
}
util::DigestInterner& cert_spki_ids() {
  static util::DigestInterner interner;
  return interner;
}
util::DigestInterner& cert_identity_ids() {
  static util::DigestInterner interner;
  return interner;
}

namespace {

Result<asn1::Time> read_time(asn1::DerReader& r) {
  auto tlv = r.read_tlv();
  if (!tlv.ok()) return tlv.error();
  const std::string body = to_string(tlv.value().body);
  if (tlv.value().is(asn1::Tag::kUtcTime)) return asn1::Time::parse_utc(body);
  if (tlv.value().is(asn1::Tag::kGeneralizedTime)) {
    return asn1::Time::parse_generalized(body);
  }
  return parse_error("expected UTCTime or GeneralizedTime");
}

Result<crypto::RsaPublicKey> parse_spki(ByteView spki_body) {
  asn1::DerReader r(spki_body);
  auto alg = read_algorithm_identifier(r);
  if (!alg.ok()) return alg.error();
  if (!(alg.value() == asn1::oids::rsa_encryption())) {
    return unsupported_error("only RSA subject keys are supported");
  }
  auto key_bits = r.read_bit_string();
  if (!key_bits.ok()) return key_bits.error();
  if (auto end = r.expect_end(); !end.ok()) return end.error();
  // RSAPublicKey ::= SEQUENCE { modulus INTEGER, publicExponent INTEGER }
  asn1::DerReader key_reader(key_bits.value());
  auto key_seq = key_reader.expect(asn1::Tag::kSequence);
  if (!key_seq.ok()) return key_seq.error();
  if (auto end = key_reader.expect_end(); !end.ok()) return end.error();
  asn1::DerReader fields(key_seq.value().body);
  auto modulus = fields.read_integer_unsigned();
  if (!modulus.ok()) return modulus.error();
  auto exponent = fields.read_integer_unsigned();
  if (!exponent.ok()) return exponent.error();
  if (auto end = fields.expect_end(); !end.ok()) return end.error();
  crypto::RsaPublicKey key;
  key.n = crypto::BigNum::from_bytes(modulus.value());
  key.e = crypto::BigNum::from_bytes(exponent.value());
  if (key.n.is_zero() || key.e.is_zero()) {
    return parse_error("degenerate RSA public key");
  }
  return key;
}

Result<ExtensionSet> parse_extensions(ByteView exts_explicit_body) {
  // [3] EXPLICIT wraps SEQUENCE OF Extension.
  asn1::DerReader outer(exts_explicit_body);
  auto seq = outer.expect(asn1::Tag::kSequence);
  if (!seq.ok()) return seq.error();
  if (auto end = outer.expect_end(); !end.ok()) return end.error();
  ExtensionSet set;
  asn1::DerReader list(seq.value().body);
  while (!list.at_end()) {
    auto ext_seq = list.expect(asn1::Tag::kSequence);
    if (!ext_seq.ok()) return ext_seq.error();
    asn1::DerReader fields(ext_seq.value().body);
    Extension ext;
    auto oid = fields.read_oid();
    if (!oid.ok()) return oid.error();
    ext.oid = std::move(oid).value();
    auto tag = fields.peek_tag();
    if (tag.ok() && tag.value() == static_cast<std::uint8_t>(asn1::Tag::kBoolean)) {
      auto critical = fields.read_boolean();
      if (!critical.ok()) return critical.error();
      ext.critical = critical.value();
    }
    auto value = fields.read_octet_string();
    if (!value.ok()) return value.error();
    ext.value = std::move(value).value();
    if (auto end = fields.expect_end(); !end.ok()) return end.error();
    set.add(std::move(ext));
  }
  return set;
}

}  // namespace

void write_algorithm_identifier(asn1::DerWriter& w, const asn1::Oid& oid) {
  w.begin(asn1::Tag::kSequence);
  w.write_oid(oid);
  w.write_null();
  w.end();
}

Bytes encode_spki(const crypto::RsaPublicKey& key) {
  asn1::DerWriter inner;
  inner.begin(asn1::Tag::kSequence);
  inner.write_integer_unsigned(key.n.to_bytes());
  inner.write_integer_unsigned(key.e.to_bytes());
  inner.end();
  const Bytes rsa_key = inner.take();

  asn1::DerWriter w;
  w.begin(asn1::Tag::kSequence);
  write_algorithm_identifier(w, asn1::oids::rsa_encryption());
  w.write_bit_string(rsa_key);
  w.end();
  return w.take();
}

Result<asn1::Oid> read_algorithm_identifier(asn1::DerReader& r) {
  auto seq = r.expect(asn1::Tag::kSequence);
  if (!seq.ok()) return seq.error();
  asn1::DerReader body(seq.value().body);
  auto oid = body.read_oid();
  if (!oid.ok()) return oid;
  // Parameters (NULL or absent) are tolerated and ignored.
  return oid;
}

Result<Certificate> Certificate::from_der(ByteView der) {
  Certificate cert;
  cert.der_.assign(der.begin(), der.end());

  asn1::DerReader top(der);
  auto outer = top.expect(asn1::Tag::kSequence);
  if (!outer.ok()) return outer.error();
  if (auto end = top.expect_end(); !end.ok()) return end.error();

  asn1::DerReader fields(outer.value().body);
  ByteView tbs_window;
  auto tbs = fields.expect(asn1::Tag::kSequence, &tbs_window);
  if (!tbs.ok()) return tbs.error();
  cert.tbs_der_.assign(tbs_window.begin(), tbs_window.end());

  auto outer_alg = read_algorithm_identifier(fields);
  if (!outer_alg.ok()) return outer_alg.error();
  auto signature = fields.read_bit_string();
  if (!signature.ok()) return signature.error();
  cert.signature_ = std::move(signature).value();
  if (auto end = fields.expect_end(); !end.ok()) return end.error();

  // --- TBSCertificate --------------------------------------------------
  asn1::DerReader t(tbs.value().body);

  // version [0] EXPLICIT INTEGER DEFAULT v1(0).
  cert.version_ = 1;
  {
    auto tag = t.peek_tag();
    if (tag.ok() && tag.value() == asn1::context_tag(0, true)) {
      auto wrapper = t.read_tlv();
      if (!wrapper.ok()) return wrapper.error();
      asn1::DerReader version_reader(wrapper.value().body);
      auto version = version_reader.read_small_integer();
      if (!version.ok()) return version.error();
      if (auto end = version_reader.expect_end(); !end.ok()) return end.error();
      if (version.value() < 0 || version.value() > 2) {
        return parse_error("certificate version out of range");
      }
      cert.version_ = static_cast<int>(version.value()) + 1;
    }
  }

  auto serial = t.read_integer_unsigned();
  if (!serial.ok()) return serial.error();
  cert.serial_ = std::move(serial).value();

  auto inner_alg = read_algorithm_identifier(t);
  if (!inner_alg.ok()) return inner_alg.error();
  cert.sig_alg_ = inner_alg.value();
  if (!(outer_alg.value() == inner_alg.value())) {
    return parse_error("TBS and outer signature algorithms disagree");
  }

  auto issuer_seq = t.expect(asn1::Tag::kSequence);
  if (!issuer_seq.ok()) return issuer_seq.error();
  auto issuer = Name::from_der_body(issuer_seq.value().body);
  if (!issuer.ok()) return issuer.error();
  cert.issuer_ = std::move(issuer).value();

  auto validity_seq = t.expect(asn1::Tag::kSequence);
  if (!validity_seq.ok()) return validity_seq.error();
  {
    asn1::DerReader v(validity_seq.value().body);
    auto not_before = read_time(v);
    if (!not_before.ok()) return not_before.error();
    auto not_after = read_time(v);
    if (!not_after.ok()) return not_after.error();
    if (auto end = v.expect_end(); !end.ok()) return end.error();
    cert.validity_ = Validity{not_before.value(), not_after.value()};
  }

  auto subject_seq = t.expect(asn1::Tag::kSequence);
  if (!subject_seq.ok()) return subject_seq.error();
  auto subject = Name::from_der_body(subject_seq.value().body);
  if (!subject.ok()) return subject.error();
  cert.subject_ = std::move(subject).value();

  auto spki_seq = t.expect(asn1::Tag::kSequence);
  if (!spki_seq.ok()) return spki_seq.error();
  auto key = parse_spki(spki_seq.value().body);
  if (!key.ok()) return key.error();
  cert.public_key_ = std::move(key).value();

  // Optional [3] EXPLICIT extensions (v3 only).
  if (!t.at_end()) {
    auto tag = t.peek_tag();
    if (tag.ok() && tag.value() == asn1::context_tag(3, true)) {
      if (cert.version_ != 3) {
        return parse_error("extensions present in a pre-v3 certificate");
      }
      auto wrapper = t.read_tlv();
      if (!wrapper.ok()) return wrapper.error();
      auto exts = parse_extensions(wrapper.value().body);
      if (!exts.ok()) return exts.error();
      cert.extensions_ = std::move(exts).value();
    }
  }
  if (auto end = t.expect_end(); !end.ok()) return end.error();

  // Intern the identity material before the certificate escapes the parser,
  // so every copy shares one immutable instance and concurrent readers
  // never trigger the lazy fallback.
  cert.identity_ = cert.compute_identity();
  return cert;
}

std::shared_ptr<const CertificateIdentity> Certificate::compute_identity()
    const {
  auto id = std::make_shared<CertificateIdentity>();
  id->subject_der = subject_.to_der();
  id->issuer_der = issuer_.to_der();
  const Bytes& subject_der = id->subject_der;
  const Bytes n = public_key_.n.to_bytes();

  id->der_hash = fnv1a64(der_);
  id->subject_name_hash = fnv1a64(subject_der);
  id->issuer_name_hash = fnv1a64(id->issuer_der);

  const auto bc = extensions_.basic_constraints();
  if (bc.has_value()) {
    id->is_ca = bc->is_ca;
    id->path_len = bc->path_len;
  } else {
    // v1 self-issued certs (old roots) carry no BasicConstraints; treat
    // self-issued as CA in that legacy case, matching Android's behaviour
    // of trusting whatever sits in /system/etc/security/cacerts.
    id->is_ca = version_ == 1 &&
                id->subject_name_hash == id->issuer_name_hash &&
                bytes_equal(subject_der, id->issuer_der);
  }
  id->not_before_unix = validity_.not_before.to_unix();
  id->not_after_unix = validity_.not_after.to_unix();

  // The four identity digests hash as one multi-buffer batch: fingerprint,
  // paper identity, paper equivalence, and SPKI run through interleaved
  // SHA-256 lanes (hardware-assisted when available) instead of four
  // sequential passes. sha256_batch degrades to the sequential scalar path
  // when TANGLED_BATCH_HASH is off, with identical digests.
  const Bytes e = public_key_.e.to_bytes();
  id->fingerprint.resize(crypto::Sha256::kDigestSize);
  id->identity.resize(crypto::Sha256::kDigestSize);
  id->equivalence.resize(crypto::Sha256::kDigestSize);
  id->spki_sha256.resize(crypto::Sha256::kDigestSize);
  const ByteView fp_parts[] = {der_};
  const ByteView identity_parts[] = {n, signature_};
  const ByteView equivalence_parts[] = {subject_der, n};
  const ByteView spki_parts[] = {n, e};
  const crypto::Sha256Lane lanes[] = {
      {fp_parts, id->fingerprint.data()},
      {identity_parts, id->identity.data()},
      {equivalence_parts, id->equivalence.data()},
      {spki_parts, id->spki_sha256.data()},
  };
  crypto::sha256_batch(lanes);
  id->fingerprint_hex = to_hex(id->fingerprint);
  id->identity_hex = to_hex(id->identity);
  id->equivalence_hex = to_hex(id->equivalence);

  id->dense_id = cert_fingerprint_ids().intern(id->fingerprint);
  id->equivalence_id = cert_equivalence_ids().intern(id->equivalence);
  id->spki_id = cert_spki_ids().intern(id->spki_sha256);
  id->identity_id = cert_identity_ids().intern(id->identity);

  id->sim_prefix.update(n);
  return id;
}

std::string Certificate::subject_tag() const {
  const Bytes digest = crypto::Sha1::hash(subject_.to_der());
  return to_hex(ByteView(digest.data(), 4));
}

Result<void> Certificate::check_signature_from(
    const crypto::RsaPublicKey& issuer_key) const {
  return crypto::verify_signature(sig_alg_, issuer_key, tbs_der_, signature_);
}

Result<void> Certificate::check_signature_from(const Certificate& issuer) const {
  if (util::batch_hash_enabled() && sig_alg_ == asn1::oids::sim_sig()) {
    return crypto::sim_sig_verify_prefixed(issuer.interned().sim_prefix,
                                           tbs_der_, signature_);
  }
  return check_signature_from(issuer.public_key());
}

}  // namespace tangled::x509
