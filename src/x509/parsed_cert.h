// Zero-copy certificate views (the arena-backed fast parse path).
//
// Certificate::from_der deep-copies every field it touches — the DER, the
// TBS window, both names, the serial, the SPKI integers — because a
// Certificate outlives whatever buffer it was parsed from. On the capture
// hot path that cost is paid per observed cert even when the caller only
// needs to validate structure, dedup, or route the chain.
//
// ParsedCert is the shallow alternative: every field is a ByteView into the
// backing buffer (in practice a util::Arena copy of the wire bytes made once
// per chain). Parsing allocates nothing and copies nothing; the only owned
// members are the handful of decoded scalars (version, validity instants,
// signature algorithm). The trade is a lifetime contract: a ParsedCert is
// valid only while its backing buffer is — holders must keep the arena alive
// (see ExtractedSession::arena / util::Arena::Pin), and the ASan lane
// enforces it.
//
// The structural walk here mirrors Certificate::from_der exactly, so a DER
// blob is accepted by one iff the structure is accepted by the other
// (from_der additionally rejects semantic problems inside names/SPKI that a
// view parse never decodes; materialize() re-checks those).
#pragma once

#include <cstdint>

#include "asn1/der.h"
#include "asn1/oid.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tangled::util {
class Arena;
}  // namespace tangled::util

namespace tangled::x509 {

class Certificate;

class ParsedCert {
 public:
  /// Parses certificate structure without copying: all views point into
  /// `der`, which must outlive the result. Rejects the same structural
  /// malformations Certificate::from_der rejects.
  static Result<ParsedCert> from_der_view(ByteView der);

  /// Convenience: copies `der` into `arena` once and parses views into the
  /// stable copy, so the result's lifetime is the arena's.
  static Result<ParsedCert> from_der_arena(ByteView der, util::Arena& arena);

  // --- Views into the backing buffer --------------------------------------
  ByteView der() const { return der_; }
  ByteView tbs_der() const { return tbs_; }
  /// Signature bits (BIT STRING body with the unused-bits octet stripped).
  ByteView signature() const { return signature_; }
  /// Raw INTEGER body of the serial (sign octet included if present).
  ByteView serial() const { return serial_; }
  /// Full TLV windows of the subject / issuer Name SEQUENCEs — directly
  /// comparable to Name::to_der() output.
  ByteView subject_der() const { return subject_; }
  ByteView issuer_der() const { return issuer_; }
  /// RSA modulus / exponent magnitudes (INTEGER bodies, sign octet
  /// stripped) — hashable without constructing a BigNum.
  ByteView modulus() const { return modulus_; }
  ByteView exponent() const { return exponent_; }

  // --- Owned scalars -------------------------------------------------------
  int version() const { return version_; }
  const asn1::Oid& signature_algorithm() const { return sig_alg_; }
  std::int64_t not_before_unix() const { return not_before_unix_; }
  std::int64_t not_after_unix() const { return not_after_unix_; }

  bool is_self_issued() const { return bytes_equal(subject_, issuer_); }
  /// Past the notAfter boundary — same semantics as
  /// Certificate::expired_at_unix (a not-yet-valid certificate is NOT
  /// expired; use valid_at_unix for the full window check).
  bool expired_at_unix(std::int64_t now) const {
    return now > not_after_unix_;
  }
  bool valid_at_unix(std::int64_t now) const {
    return not_before_unix_ <= now && now <= not_after_unix_;
  }

  /// Deep-parses into an owning Certificate (one Certificate::from_der over
  /// the viewed bytes). This is where name/SPKI semantic checks run.
  Result<Certificate> materialize() const;

 private:
  ByteView der_;
  ByteView tbs_;
  ByteView signature_;
  ByteView serial_;
  ByteView subject_;
  ByteView issuer_;
  ByteView modulus_;
  ByteView exponent_;
  asn1::Oid sig_alg_;
  int version_ = 1;
  std::int64_t not_before_unix_ = 0;
  std::int64_t not_after_unix_ = 0;
};

}  // namespace tangled::x509
