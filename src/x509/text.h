// Human-readable certificate rendering in the spirit of
// `openssl x509 -text`: every TBS field, extensions, fingerprints, and the
// paper's identity/equivalence keys. Used by the examples and handy when
// debugging catalog certificates.
#pragma once

#include <string>

#include "x509/certificate.h"

namespace tangled::x509 {

/// Multi-line description of a certificate.
std::string describe(const Certificate& cert);

/// One-line summary: "subject <- issuer [serial, validity]".
std::string summarize(const Certificate& cert);

}  // namespace tangled::x509
