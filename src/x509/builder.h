// Fluent certificate issuance. Builds the TBSCertificate, signs it with a
// SignatureScheme, and returns a fully re-parsed Certificate so every cert
// in the system has round-tripped through the DER codec.
#pragma once

#include <cstdint>

#include "asn1/time.h"
#include "crypto/signature.h"
#include "util/result.h"
#include "x509/certificate.h"

namespace tangled::x509 {

class CertificateBuilder {
 public:
  CertificateBuilder();

  CertificateBuilder& serial(std::uint64_t serial);
  CertificateBuilder& serial_bytes(Bytes serial);
  CertificateBuilder& subject(Name name);
  CertificateBuilder& issuer(Name name);
  CertificateBuilder& not_before(asn1::Time t);
  CertificateBuilder& not_after(asn1::Time t);
  CertificateBuilder& public_key(crypto::RsaPublicKey key);
  /// Marks the subject as a CA (BasicConstraints critical, optional path len).
  CertificateBuilder& ca(bool is_ca, std::optional<int> path_len = std::nullopt);
  CertificateBuilder& key_usage(KeyUsage usage);
  CertificateBuilder& extended_key_usage(ExtendedKeyUsage eku);
  CertificateBuilder& dns_names(std::vector<std::string> names);
  /// Adds SKI (hash of subject key) and AKI (hash of issuer key) extensions.
  CertificateBuilder& key_ids(const crypto::RsaPublicKey& subject_key,
                              const crypto::RsaPublicKey& issuer_key);
  /// Raw escape hatch for odd extensions.
  CertificateBuilder& extension(Extension ext);

  /// Emits an X.509 v1 certificate: no version field, no extensions (any
  /// added so far are discarded at sign time). Legacy roots from the
  /// 1990s-era CAs in the paper's Figure 2 (VeriSign/Thawte/RSA Data
  /// Security) shipped as v1.
  CertificateBuilder& legacy_v1(bool v1 = true);

  /// Signs with `scheme` using `issuer_key` and returns the parsed result.
  /// Self-signed roots pass their own keypair and issuer == subject.
  Result<Certificate> sign(const crypto::SignatureScheme& scheme,
                           const crypto::KeyPair& issuer_key) const;

 private:
  Bytes build_tbs(const asn1::Oid& sig_alg) const;

  Bytes serial_;
  Name subject_;
  Name issuer_;
  Validity validity_;
  crypto::RsaPublicKey public_key_;
  ExtensionSet extensions_;
  bool v1_ = false;
};

/// The key-identifier convention used throughout the toolkit: SHA-1 of the
/// modulus bytes (matching RFC 5280 method (1) closely enough for chain
/// building).
Bytes key_id_for(const crypto::RsaPublicKey& key);

}  // namespace tangled::x509
