// RFC 6125-style hostname verification: match a presented certificate
// against the reference identifier the client intended to reach. SAN
// dNSNames take precedence; the subject CN is the legacy fallback.
// Wildcards match exactly one left-most label ("*.example.com" covers
// "www.example.com" but not "example.com" or "a.b.example.com").
#pragma once

#include <string_view>

#include "x509/certificate.h"

namespace tangled::x509 {

/// True when `host` is an IPv4 dotted-quad or IPv6 literal rather than a
/// DNS name. RFC 6125 §6.4.3: wildcard patterns never match IP addresses
/// ("*.168.0.1" must not cover "192.168.0.1"); an address is only matched
/// by an exact SAN entry.
bool is_ip_literal(std::string_view host);

/// Case-insensitive single-pattern match with left-most-label wildcard.
bool hostname_matches_pattern(std::string_view host, std::string_view pattern);

/// Full certificate check: SAN dNSNames if present (exclusively), else CN.
bool certificate_matches_hostname(const Certificate& cert,
                                  std::string_view host);

}  // namespace tangled::x509
