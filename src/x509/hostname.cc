#include "x509/hostname.h"

#include "util/strings.h"

namespace tangled::x509 {

namespace {

bool is_ipv4_literal(std::string_view host) {
  int octets = 0;
  std::size_t i = 0;
  while (i < host.size()) {
    const std::size_t start = i;
    int value = 0;
    while (i < host.size() && host[i] >= '0' && host[i] <= '9') {
      value = value * 10 + (host[i] - '0');
      if (value > 255) return false;
      ++i;
    }
    if (i == start || i - start > 3) return false;
    ++octets;
    if (i == host.size()) break;
    if (host[i] != '.' || ++i == host.size()) return false;
  }
  return octets == 4;
}

}  // namespace

bool is_ip_literal(std::string_view host) {
  if (host.empty()) return false;
  if (host.back() == '.') host.remove_suffix(1);
  // A colon never appears in a DNS name; treat any as an IPv6 literal
  // (including bracketed "[::1]" reference forms).
  if (host.find(':') != std::string_view::npos) return true;
  return is_ipv4_literal(host);
}

bool hostname_matches_pattern(std::string_view host, std::string_view pattern) {
  if (host.empty() || pattern.empty()) return false;
  // Trailing-dot normalization (absolute names).
  if (host.back() == '.') host.remove_suffix(1);
  if (pattern.back() == '.') pattern.remove_suffix(1);

  if (!starts_with(pattern, "*.")) return iequals(host, pattern);

  // RFC 6125 §6.4.3: a wildcard never matches an IP-address host —
  // "192.168.0.1" must not satisfy "*.168.0.1". Addresses only match the
  // exact-equality branch above.
  if (is_ip_literal(host)) return false;

  // Wildcard: "*.rest" matches "<one-label>.rest" only.
  const std::string_view rest = pattern.substr(2);
  if (rest.empty() || rest.find('*') != std::string_view::npos) return false;
  const std::size_t dot = host.find('.');
  if (dot == std::string_view::npos || dot == 0) return false;
  const std::string_view host_rest = host.substr(dot + 1);
  // The matched label must be non-empty and the suffix must have at least
  // two labels ("*.com" is rejected as over-broad).
  if (rest.find('.') == std::string_view::npos) return false;
  return iequals(host_rest, rest);
}

bool certificate_matches_hostname(const Certificate& cert,
                                  std::string_view host) {
  const auto san = cert.extensions().subject_alt_name();
  if (san.has_value() && !san->dns_names.empty()) {
    for (const auto& pattern : san->dns_names) {
      if (hostname_matches_pattern(host, pattern)) return true;
    }
    return false;  // SAN present: CN is not consulted (RFC 6125 §6.4.4)
  }
  const std::string cn = cert.subject().common_name();
  return !cn.empty() && hostname_matches_pattern(host, cn);
}

}  // namespace tangled::x509
