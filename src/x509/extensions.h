// X.509v3 extensions: the raw Extension container plus typed views for the
// extensions the toolkit interprets (BasicConstraints, KeyUsage, SKI/AKI,
// ExtendedKeyUsage, SubjectAltName dNSNames).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "asn1/oid.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tangled::x509 {

/// Raw extension as carried in the certificate.
struct Extension {
  asn1::Oid oid;
  bool critical = false;
  Bytes value;  // contents of the extnValue OCTET STRING

  friend bool operator==(const Extension&, const Extension&) = default;
};

/// BasicConstraints ::= SEQUENCE { cA BOOLEAN DEFAULT FALSE,
///                                 pathLenConstraint INTEGER OPTIONAL }
struct BasicConstraints {
  bool is_ca = false;
  std::optional<int> path_len;

  Bytes to_der() const;
  static Result<BasicConstraints> from_der(ByteView der);

  friend bool operator==(const BasicConstraints&, const BasicConstraints&) = default;
};

/// KeyUsage bits (RFC 5280 §4.2.1.3); a subset relevant to root stores.
struct KeyUsage {
  bool digital_signature = false;
  bool key_encipherment = false;
  bool key_cert_sign = false;
  bool crl_sign = false;

  Bytes to_der() const;
  static Result<KeyUsage> from_der(ByteView der);

  friend bool operator==(const KeyUsage&, const KeyUsage&) = default;
};

/// ExtendedKeyUsage: list of purpose OIDs.
struct ExtendedKeyUsage {
  std::vector<asn1::Oid> purposes;

  bool allows(const asn1::Oid& purpose) const;

  Bytes to_der() const;
  static Result<ExtendedKeyUsage> from_der(ByteView der);

  friend bool operator==(const ExtendedKeyUsage&, const ExtendedKeyUsage&) = default;
};

/// SubjectAltName restricted to dNSName entries (all this toolkit needs).
struct SubjectAltName {
  std::vector<std::string> dns_names;

  Bytes to_der() const;
  static Result<SubjectAltName> from_der(ByteView der);

  friend bool operator==(const SubjectAltName&, const SubjectAltName&) = default;
};

/// SubjectKeyIdentifier / AuthorityKeyIdentifier (keyIdentifier form only).
Bytes encode_key_id_extension(ByteView key_id, bool authority);
Result<Bytes> decode_subject_key_id(ByteView der);
Result<Bytes> decode_authority_key_id(ByteView der);

/// An ordered extension list with typed accessors.
class ExtensionSet {
 public:
  void add(Extension ext) { extensions_.push_back(std::move(ext)); }
  const std::vector<Extension>& all() const { return extensions_; }
  bool empty() const { return extensions_.empty(); }

  const Extension* find(const asn1::Oid& oid) const;

  std::optional<BasicConstraints> basic_constraints() const;
  std::optional<KeyUsage> key_usage() const;
  std::optional<ExtendedKeyUsage> extended_key_usage() const;
  std::optional<SubjectAltName> subject_alt_name() const;
  std::optional<Bytes> subject_key_id() const;
  std::optional<Bytes> authority_key_id() const;

  friend bool operator==(const ExtensionSet&, const ExtensionSet&) = default;

 private:
  std::vector<Extension> extensions_;
};

}  // namespace tangled::x509
