#include "x509/name.h"

namespace tangled::x509 {

namespace {

/// PrintableString charset per X.680; anything else is emitted as UTF8String.
bool is_printable(std::string_view s) {
  for (char c : s) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == ' ' || c == '\'' ||
                    c == '(' || c == ')' || c == '+' || c == ',' || c == '-' ||
                    c == '.' || c == '/' || c == ':' || c == '=' || c == '?';
    if (!ok) return false;
  }
  return true;
}

/// Escapes RFC 4514 special characters for display.
void escape_into(std::string& out, std::string_view value) {
  for (std::size_t i = 0; i < value.size(); ++i) {
    const char c = value[i];
    const bool leading_or_trailing =
        (i == 0 && (c == ' ' || c == '#')) || (i + 1 == value.size() && c == ' ');
    if (c == ',' || c == '+' || c == '"' || c == '\\' || c == '<' || c == '>' ||
        c == ';' || leading_or_trailing) {
      out.push_back('\\');
    }
    out.push_back(c);
  }
}

}  // namespace

Name& Name::add(const asn1::Oid& type, std::string value) {
  Rdn rdn;
  rdn.attributes.push_back(Attribute{type, std::move(value)});
  rdns_.push_back(std::move(rdn));
  return *this;
}

std::string Name::find(const asn1::Oid& type) const {
  for (const Rdn& rdn : rdns_) {
    for (const Attribute& attr : rdn.attributes) {
      if (attr.type == type) return attr.value;
    }
  }
  return {};
}

Bytes Name::to_der() const {
  asn1::DerWriter w;
  w.begin(asn1::Tag::kSequence);
  for (const Rdn& rdn : rdns_) {
    w.begin(asn1::Tag::kSet);
    for (const Attribute& attr : rdn.attributes) {
      w.begin(asn1::Tag::kSequence);
      w.write_oid(attr.type);
      // emailAddress is IA5String by PKCS#9; otherwise prefer PrintableString.
      if (attr.type == asn1::oids::email_address()) {
        w.write_ia5_string(attr.value);
      } else if (is_printable(attr.value)) {
        w.write_printable_string(attr.value);
      } else {
        w.write_utf8_string(attr.value);
      }
      w.end();
    }
    w.end();
  }
  w.end();
  return w.take();
}

Result<Name> Name::from_der(ByteView der) {
  asn1::DerReader r(der);
  auto seq = r.expect(asn1::Tag::kSequence);
  if (!seq.ok()) return seq.error();
  if (auto end = r.expect_end(); !end.ok()) return end.error();
  return from_der_body(seq.value().body);
}

Result<Name> Name::from_der_body(ByteView body) {
  Name name;
  asn1::DerReader rdns(body);
  while (!rdns.at_end()) {
    auto set = rdns.expect(asn1::Tag::kSet);
    if (!set.ok()) return set.error();
    Rdn rdn;
    asn1::DerReader attrs(set.value().body);
    while (!attrs.at_end()) {
      auto seq = attrs.expect(asn1::Tag::kSequence);
      if (!seq.ok()) return seq.error();
      asn1::DerReader attr_reader(seq.value().body);
      auto type = attr_reader.read_oid();
      if (!type.ok()) return type.error();
      auto value = attr_reader.read_string();
      if (!value.ok()) return value.error();
      if (auto end = attr_reader.expect_end(); !end.ok()) return end.error();
      rdn.attributes.push_back(
          Attribute{std::move(type).value(), std::move(value).value()});
    }
    if (rdn.attributes.empty()) return parse_error("empty RDN set");
    name.rdns_.push_back(std::move(rdn));
  }
  return name;
}

std::string Name::to_string() const {
  std::string out;
  // RFC 4514 renders most-specific-first, i.e. reverse of wire order.
  for (std::size_t i = rdns_.size(); i > 0; --i) {
    if (!out.empty()) out.push_back(',');
    const Rdn& rdn = rdns_[i - 1];
    for (std::size_t j = 0; j < rdn.attributes.size(); ++j) {
      if (j > 0) out.push_back('+');
      const Attribute& attr = rdn.attributes[j];
      const std::string_view short_name =
          asn1::oids::attribute_short_name(attr.type);
      if (short_name.empty()) {
        out += attr.type.to_dotted();
      } else {
        out += short_name;
      }
      out.push_back('=');
      escape_into(out, attr.value);
    }
  }
  return out;
}

}  // namespace tangled::x509
