#include "x509/parsed_cert.h"

#include "asn1/time.h"
#include "util/arena.h"
#include "x509/certificate.h"

namespace tangled::x509 {

namespace {

/// View twin of DerReader::read_integer_unsigned: same rejections, but the
/// magnitude stays a window into the input.
Result<ByteView> read_integer_view(asn1::DerReader& r) {
  auto tlv = r.expect(asn1::Tag::kInteger);
  if (!tlv.ok()) return tlv.error();
  ByteView body = tlv.value().body;
  if (body.empty()) return parse_error("empty INTEGER");
  if (body[0] & 0x80) {
    return parse_error("negative INTEGER where unsigned expected");
  }
  if (body.size() >= 2 && body[0] == 0x00 && !(body[1] & 0x80)) {
    return parse_error("non-minimal INTEGER encoding");
  }
  if (body.size() > 1 && body[0] == 0x00) body = body.subspan(1);
  return body;
}

/// View twin of DerReader::read_bit_string.
Result<ByteView> read_bit_string_view(asn1::DerReader& r) {
  auto tlv = r.expect(asn1::Tag::kBitString);
  if (!tlv.ok()) return tlv.error();
  const ByteView body = tlv.value().body;
  if (body.empty()) return parse_error("empty BIT STRING");
  if (body[0] != 0) return unsupported_error("BIT STRING with unused bits");
  return body.subspan(1);
}

Result<asn1::Time> read_time(asn1::DerReader& r) {
  auto tlv = r.read_tlv();
  if (!tlv.ok()) return tlv.error();
  const std::string body = to_string(tlv.value().body);
  if (tlv.value().is(asn1::Tag::kUtcTime)) return asn1::Time::parse_utc(body);
  if (tlv.value().is(asn1::Tag::kGeneralizedTime)) {
    return asn1::Time::parse_generalized(body);
  }
  return parse_error("expected UTCTime or GeneralizedTime");
}

}  // namespace

Result<ParsedCert> ParsedCert::from_der_view(ByteView der) {
  ParsedCert cert;
  cert.der_ = der;

  asn1::DerReader top(der);
  auto outer = top.expect(asn1::Tag::kSequence);
  if (!outer.ok()) return outer.error();
  if (auto end = top.expect_end(); !end.ok()) return end.error();

  asn1::DerReader fields(outer.value().body);
  ByteView tbs_window;
  auto tbs = fields.expect(asn1::Tag::kSequence, &tbs_window);
  if (!tbs.ok()) return tbs.error();
  cert.tbs_ = tbs_window;

  auto outer_alg = read_algorithm_identifier(fields);
  if (!outer_alg.ok()) return outer_alg.error();
  auto signature = read_bit_string_view(fields);
  if (!signature.ok()) return signature.error();
  cert.signature_ = signature.value();
  if (auto end = fields.expect_end(); !end.ok()) return end.error();

  // --- TBSCertificate ----------------------------------------------------
  asn1::DerReader t(tbs.value().body);

  cert.version_ = 1;
  {
    auto tag = t.peek_tag();
    if (tag.ok() && tag.value() == asn1::context_tag(0, true)) {
      auto wrapper = t.read_tlv();
      if (!wrapper.ok()) return wrapper.error();
      asn1::DerReader version_reader(wrapper.value().body);
      auto version = version_reader.read_small_integer();
      if (!version.ok()) return version.error();
      if (auto end = version_reader.expect_end(); !end.ok()) return end.error();
      if (version.value() < 0 || version.value() > 2) {
        return parse_error("certificate version out of range");
      }
      cert.version_ = static_cast<int>(version.value()) + 1;
    }
  }

  {
    auto tlv = t.expect(asn1::Tag::kInteger);
    if (!tlv.ok()) return tlv.error();
    if (tlv.value().body.empty()) return parse_error("empty INTEGER");
    cert.serial_ = tlv.value().body;
  }

  auto inner_alg = read_algorithm_identifier(t);
  if (!inner_alg.ok()) return inner_alg.error();
  cert.sig_alg_ = inner_alg.value();
  if (!(outer_alg.value() == inner_alg.value())) {
    return parse_error("TBS and outer signature algorithms disagree");
  }

  auto issuer_seq = t.expect(asn1::Tag::kSequence, &cert.issuer_);
  if (!issuer_seq.ok()) return issuer_seq.error();

  auto validity_seq = t.expect(asn1::Tag::kSequence);
  if (!validity_seq.ok()) return validity_seq.error();
  {
    asn1::DerReader v(validity_seq.value().body);
    auto not_before = read_time(v);
    if (!not_before.ok()) return not_before.error();
    auto not_after = read_time(v);
    if (!not_after.ok()) return not_after.error();
    if (auto end = v.expect_end(); !end.ok()) return end.error();
    cert.not_before_unix_ = not_before.value().to_unix();
    cert.not_after_unix_ = not_after.value().to_unix();
  }

  auto subject_seq = t.expect(asn1::Tag::kSequence, &cert.subject_);
  if (!subject_seq.ok()) return subject_seq.error();

  // SubjectPublicKeyInfo, down to the RSA integer magnitudes.
  auto spki_seq = t.expect(asn1::Tag::kSequence);
  if (!spki_seq.ok()) return spki_seq.error();
  {
    asn1::DerReader spki(spki_seq.value().body);
    auto alg = read_algorithm_identifier(spki);
    if (!alg.ok()) return alg.error();
    if (!(alg.value() == asn1::oids::rsa_encryption())) {
      return unsupported_error("only RSA subject keys are supported");
    }
    auto key_bits = read_bit_string_view(spki);
    if (!key_bits.ok()) return key_bits.error();
    if (auto end = spki.expect_end(); !end.ok()) return end.error();
    asn1::DerReader key_reader(key_bits.value());
    auto key_seq = key_reader.expect(asn1::Tag::kSequence);
    if (!key_seq.ok()) return key_seq.error();
    if (auto end = key_reader.expect_end(); !end.ok()) return end.error();
    asn1::DerReader key_fields(key_seq.value().body);
    auto modulus = read_integer_view(key_fields);
    if (!modulus.ok()) return modulus.error();
    cert.modulus_ = modulus.value();
    auto exponent = read_integer_view(key_fields);
    if (!exponent.ok()) return exponent.error();
    cert.exponent_ = exponent.value();
    if (auto end = key_fields.expect_end(); !end.ok()) return end.error();
  }

  // Optional [3] EXPLICIT extensions — structural skip only; materialize()
  // decodes them.
  if (!t.at_end()) {
    auto tag = t.peek_tag();
    if (tag.ok() && tag.value() == asn1::context_tag(3, true)) {
      if (cert.version_ != 3) {
        return parse_error("extensions present in a pre-v3 certificate");
      }
      auto wrapper = t.read_tlv();
      if (!wrapper.ok()) return wrapper.error();
    }
  }
  if (auto end = t.expect_end(); !end.ok()) return end.error();

  return cert;
}

Result<ParsedCert> ParsedCert::from_der_arena(ByteView der,
                                              util::Arena& arena) {
  return from_der_view(arena.copy(der));
}

Result<Certificate> ParsedCert::materialize() const {
  return Certificate::from_der(der_);
}

}  // namespace tangled::x509
