#include "x509/text.h"

#include <cstdio>

namespace tangled::x509 {

namespace {

std::string algorithm_name(const asn1::Oid& oid) {
  if (oid == asn1::oids::sha256_with_rsa()) return "sha256WithRSAEncryption";
  if (oid == asn1::oids::sha1_with_rsa()) return "sha1WithRSAEncryption";
  if (oid == asn1::oids::sim_sig()) return "simSig (simulation scheme)";
  return oid.to_dotted();
}

void append_line(std::string& out, const char* label, const std::string& value) {
  out += "  ";
  out += label;
  out += ": ";
  out += value;
  out += "\n";
}

}  // namespace

std::string summarize(const Certificate& cert) {
  std::string out = cert.subject().to_string();
  if (!cert.is_self_issued()) {
    out += " <- ";
    out += cert.issuer().to_string();
  } else {
    out += " (self-signed)";
  }
  out += " [serial " + to_hex(cert.serial()) + ", " +
         cert.validity().not_before.to_iso8601() + " .. " +
         cert.validity().not_after.to_iso8601() + "]";
  return out;
}

std::string describe(const Certificate& cert) {
  std::string out = "Certificate:\n";
  append_line(out, "version", "v" + std::to_string(cert.version()));
  append_line(out, "serial", to_hex(cert.serial()));
  append_line(out, "signature algorithm",
              algorithm_name(cert.signature_algorithm()));
  append_line(out, "issuer", cert.issuer().to_string());
  append_line(out, "subject", cert.subject().to_string());
  append_line(out, "not before", cert.validity().not_before.to_iso8601());
  append_line(out, "not after", cert.validity().not_after.to_iso8601());
  append_line(out, "public key",
              "RSA " + std::to_string(cert.public_key().n.bit_length()) +
                  " bit, e=" + cert.public_key().e.to_hex());

  if (!cert.extensions().empty()) {
    out += "  extensions:\n";
    if (const auto bc = cert.extensions().basic_constraints(); bc.has_value()) {
      std::string line = bc->is_ca ? "CA:TRUE" : "CA:FALSE";
      if (bc->path_len.has_value()) {
        line += ", pathlen:" + std::to_string(*bc->path_len);
      }
      append_line(out, "  basicConstraints", line);
    }
    if (const auto ku = cert.extensions().key_usage(); ku.has_value()) {
      std::string line;
      auto add = [&line](bool set, const char* name) {
        if (!set) return;
        if (!line.empty()) line += ", ";
        line += name;
      };
      add(ku->digital_signature, "digitalSignature");
      add(ku->key_encipherment, "keyEncipherment");
      add(ku->key_cert_sign, "keyCertSign");
      add(ku->crl_sign, "cRLSign");
      append_line(out, "  keyUsage", line.empty() ? "(none)" : line);
    }
    if (const auto eku = cert.extensions().extended_key_usage();
        eku.has_value()) {
      std::string line;
      for (const auto& purpose : eku->purposes) {
        if (!line.empty()) line += ", ";
        if (purpose == asn1::oids::eku_server_auth()) line += "serverAuth";
        else if (purpose == asn1::oids::eku_client_auth()) line += "clientAuth";
        else if (purpose == asn1::oids::eku_code_signing()) line += "codeSigning";
        else line += purpose.to_dotted();
      }
      append_line(out, "  extendedKeyUsage", line);
    }
    if (const auto san = cert.extensions().subject_alt_name(); san.has_value()) {
      std::string line;
      for (const auto& dns : san->dns_names) {
        if (!line.empty()) line += ", ";
        line += "DNS:" + dns;
      }
      append_line(out, "  subjectAltName", line);
    }
    if (const auto ski = cert.extensions().subject_key_id(); ski.has_value()) {
      append_line(out, "  subjectKeyIdentifier", to_hex(*ski));
    }
    if (const auto aki = cert.extensions().authority_key_id(); aki.has_value()) {
      append_line(out, "  authorityKeyIdentifier", to_hex(*aki));
    }
  }

  append_line(out, "sha256 fingerprint", to_hex(cert.fingerprint_sha256()));
  append_line(out, "identity key (modulus+signature)", to_hex(cert.identity_key()));
  append_line(out, "equivalence key (subject+modulus)",
              to_hex(cert.equivalence_key()));
  append_line(out, "subject tag (paper Fig.2)", cert.subject_tag());
  return out;
}

}  // namespace tangled::x509
