#include "x509/pem.h"

#include "util/base64.h"
#include "util/strings.h"

namespace tangled::x509 {

namespace {

std::string begin_marker(std::string_view label) {
  return "-----BEGIN " + std::string(label) + "-----";
}

std::string end_marker(std::string_view label) {
  return "-----END " + std::string(label) + "-----";
}

}  // namespace

std::string pem_encode(ByteView der, std::string_view label) {
  std::string out = begin_marker(label);
  out.push_back('\n');
  out += base64_encode_wrapped(der, 64);
  out += end_marker(label);
  out.push_back('\n');
  return out;
}

Result<std::vector<Bytes>> pem_decode_all(std::string_view text,
                                          std::string_view label) {
  const std::string begin = begin_marker(label);
  const std::string end = end_marker(label);
  std::vector<Bytes> blocks;
  std::size_t pos = 0;
  while (true) {
    const std::size_t b = text.find(begin, pos);
    if (b == std::string_view::npos) break;
    const std::size_t body_start = b + begin.size();
    const std::size_t e = text.find(end, body_start);
    if (e == std::string_view::npos) {
      return parse_error("PEM BEGIN without matching END");
    }
    const std::string_view body = text.substr(body_start, e - body_start);
    auto der = base64_decode(body);
    if (!der.has_value()) return parse_error("invalid base64 in PEM body");
    if (der->empty()) return parse_error("empty PEM body");
    blocks.push_back(std::move(*der));
    pos = e + end.size();
  }
  return blocks;
}

Result<Bytes> pem_decode(std::string_view text, std::string_view label) {
  auto blocks = pem_decode_all(text, label);
  if (!blocks.ok()) return blocks.error();
  if (blocks.value().empty()) {
    return not_found_error("no PEM block with label " + std::string(label));
  }
  return std::move(blocks).value().front();
}

std::string to_pem(const Certificate& cert) {
  return pem_encode(cert.der());
}

Result<Certificate> certificate_from_pem(std::string_view text) {
  auto der = pem_decode(text);
  if (!der.ok()) return der.error();
  return Certificate::from_der(der.value());
}

Result<std::vector<Certificate>> certificates_from_pem(std::string_view text) {
  auto blocks = pem_decode_all(text);
  if (!blocks.ok()) return blocks.error();
  std::vector<Certificate> certs;
  certs.reserve(blocks.value().size());
  for (const Bytes& der : blocks.value()) {
    auto cert = Certificate::from_der(der);
    if (!cert.ok()) return cert.error();
    certs.push_back(std::move(cert).value());
  }
  return certs;
}

}  // namespace tangled::x509
