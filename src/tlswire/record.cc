#include "tlswire/record.h"

#include "obs/obs.h"

namespace tangled::tlswire {

namespace {

bool known_content_type(std::uint8_t t) {
  return t >= 20 && t <= 23;
}

}  // namespace

Result<Bytes> encode_record(const Record& record) {
  if (record.fragment.size() > kMaxFragment) {
    return range_error("TLS record fragment exceeds 2^14 bytes");
  }
  if (record.fragment.empty()) {
    return range_error("TLS record fragment must be non-empty");
  }
  Bytes out;
  out.reserve(record.fragment.size() + 5);
  out.push_back(static_cast<std::uint8_t>(record.type));
  out.push_back(static_cast<std::uint8_t>(record.version >> 8));
  out.push_back(static_cast<std::uint8_t>(record.version & 0xff));
  out.push_back(static_cast<std::uint8_t>(record.fragment.size() >> 8));
  out.push_back(static_cast<std::uint8_t>(record.fragment.size() & 0xff));
  append(out, record.fragment);
  return out;
}

Result<Bytes> encode_records(ContentType type, ByteView payload) {
  if (payload.empty()) return range_error("empty TLS payload");
  Bytes out;
  std::size_t offset = 0;
  while (offset < payload.size()) {
    const std::size_t take = std::min(kMaxFragment, payload.size() - offset);
    Record record;
    record.type = type;
    record.fragment.assign(payload.begin() + static_cast<std::ptrdiff_t>(offset),
                           payload.begin() + static_cast<std::ptrdiff_t>(offset + take));
    auto encoded = encode_record(record);
    if (!encoded.ok()) return encoded;
    append(out, encoded.value());
    offset += take;
  }
  return out;
}

Result<Bytes> encode_alert(const Alert& alert) {
  Record record;
  record.type = ContentType::kAlert;
  record.fragment = {static_cast<std::uint8_t>(alert.level),
                     static_cast<std::uint8_t>(alert.description)};
  return encode_record(record);
}

Result<Alert> parse_alert(ByteView fragment) {
  if (fragment.size() != 2) return parse_error("alert must be two bytes");
  if (fragment[0] != 1 && fragment[0] != 2) {
    return parse_error("unknown alert level");
  }
  Alert alert;
  alert.level = static_cast<AlertLevel>(fragment[0]);
  alert.description = static_cast<AlertDescription>(fragment[1]);
  return alert;
}

void RecordReader::feed(ByteView data) {
  if (fault_.has_value()) {
    // Alignment is gone; buffering more of the broken stream would only
    // grow memory for bytes drain() will never parse.
    TANGLED_OBS_ADD("tlswire.record.poisoned_bytes_dropped", data.size());
    return;
  }
  append(buffer_, data);
}

Partial<Record> RecordReader::drain() {
  std::vector<Record> records;
  if (fault_.has_value()) return {std::move(records), *fault_};
  std::size_t pos = 0;
  // On a framing fault, `poison` records it, consumes everything (the good
  // records up to `pos` plus the unparseable rest), and returns the records
  // salvaged before the fault. Later drains return the same fault with no
  // records instead of re-failing on the same bytes.
  auto poison = [&](Error error) -> Partial<Record> {
    TANGLED_OBS_INC("tlswire.record.framing_faults");
    fault_ = std::move(error);
    buffer_.clear();
    return {std::move(records), *fault_};
  };
  while (buffer_.size() - pos >= 5) {
    const std::uint8_t type = buffer_[pos];
    if (!known_content_type(type)) {
      return poison(
          parse_error("unknown TLS content type " + std::to_string(type)));
    }
    const std::uint16_t version =
        static_cast<std::uint16_t>((buffer_[pos + 1] << 8) | buffer_[pos + 2]);
    // Accept SSL3.0 .. TLS1.2 version stamps (0x0300-0x0303), as a passive
    // observer must.
    if ((version >> 8) != 0x03 || (version & 0xff) > 0x03) {
      return poison(parse_error("implausible TLS record version"));
    }
    const std::size_t length =
        static_cast<std::size_t>((buffer_[pos + 3] << 8) | buffer_[pos + 4]);
    if (length > kMaxFragment) {
      return poison(parse_error("TLS record length out of range"));
    }
    if (length == 0) {
      // RFC 5246 §6.2.1: zero-length fragments are legal for application
      // data (traffic-analysis countermeasure); skip them. Handshake and
      // alert records must carry content.
      if (static_cast<ContentType>(type) == ContentType::kApplicationData) {
        TANGLED_OBS_INC("tlswire.record.empty_appdata_skipped");
        pos += 5;
        continue;
      }
      return poison(parse_error("zero-length TLS record (non-application-data)"));
    }
    if (buffer_.size() - pos - 5 < length) break;  // need more bytes
    Record record;
    record.type = static_cast<ContentType>(type);
    record.version = version;
    record.fragment.assign(
        buffer_.begin() + static_cast<std::ptrdiff_t>(pos + 5),
        buffer_.begin() + static_cast<std::ptrdiff_t>(pos + 5 + length));
    records.push_back(std::move(record));
    pos += 5 + length;
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(pos));
  return records;
}

}  // namespace tangled::tlswire
