// TLS 1.2 record layer (RFC 5246 §6.2): the outermost framing the ICSI
// Certificate Notary's passive extractor [17] parses from live traffic.
//
//   struct {
//     ContentType type;          // 1 byte
//     ProtocolVersion version;   // 2 bytes
//     uint16 length;             // <= 2^14
//     opaque fragment[length];
//   } TLSPlaintext;
//
// Only plaintext handshake records matter here — certificates travel
// before encryption starts.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace tangled::tlswire {

/// What an incremental parser hands back: every item parsed before the
/// first framing fault, plus the fault itself when one was hit. A passive
/// observer must not lose the three good records in front of one bad byte,
/// so — unlike Result — value() is populated even when ok() is false.
template <typename T>
class [[nodiscard]] Partial {
 public:
  Partial() = default;
  Partial(std::vector<T> items) : items_(std::move(items)) {}  // NOLINT(google-explicit-constructor)
  Partial(std::vector<T> items, Error fault)
      : items_(std::move(items)), fault_(std::move(fault)) {}

  /// False when a framing fault was hit; value() still holds the items
  /// parsed before it.
  bool ok() const { return !fault_.has_value(); }
  explicit operator bool() const { return ok(); }

  const std::vector<T>& value() const& { return items_; }
  std::vector<T>& value() & { return items_; }

  const Error& error() const {
    assert(!ok());
    return *fault_;
  }

 private:
  std::vector<T> items_;
  std::optional<Error> fault_;
};

enum class ContentType : std::uint8_t {
  kChangeCipherSpec = 20,
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
};

/// TLS 1.2 on the wire.
inline constexpr std::uint16_t kTls12 = 0x0303;
/// RFC 5246: records carry at most 2^14 bytes of fragment.
inline constexpr std::size_t kMaxFragment = 1 << 14;

struct Record {
  ContentType type = ContentType::kHandshake;
  std::uint16_t version = kTls12;
  Bytes fragment;
};

/// Serializes one record (fragment must fit kMaxFragment).
Result<Bytes> encode_record(const Record& record);

/// Splits a payload across as many records as needed.
Result<Bytes> encode_records(ContentType type, ByteView payload);

/// TLS alert payloads (RFC 5246 §7.2) — two bytes: level + description.
/// A pinning client that rejects a chain sends bad_certificate(42) fatal(2).
enum class AlertLevel : std::uint8_t { kWarning = 1, kFatal = 2 };
enum class AlertDescription : std::uint8_t {
  kCloseNotify = 0,
  kBadCertificate = 42,
  kUnknownCa = 48,
  kCertificateExpired = 45,
  kHandshakeFailure = 40,
};

struct Alert {
  AlertLevel level = AlertLevel::kFatal;
  AlertDescription description = AlertDescription::kBadCertificate;
};

/// One alert record on the wire.
Result<Bytes> encode_alert(const Alert& alert);
/// Parses an alert record fragment (exactly two bytes).
Result<Alert> parse_alert(ByteView fragment);

/// Incremental record parser: feed arbitrary byte chunks, pull complete
/// records. Tolerates fragments split at any boundary (TCP semantics).
class RecordReader {
 public:
  /// Appends raw bytes from the stream. Bytes fed after a framing fault are
  /// discarded — record alignment is unrecoverable once the stream breaks.
  void feed(ByteView data);

  /// Extracts every complete record buffered so far (an incomplete trailing
  /// record waits for more bytes). Malformed framing poisons the stream:
  /// the fault comes back *alongside* the records parsed before it, the
  /// consumed bytes are compacted away, and every later drain() returns the
  /// same fault with no records — never a re-parse of the same bad bytes.
  Partial<Record> drain();

  /// Bytes buffered but not yet consumed.
  std::size_t pending() const { return buffer_.size(); }

  /// The framing fault that broke the stream, if any.
  bool poisoned() const { return fault_.has_value(); }
  const std::optional<Error>& fault() const { return fault_; }

 private:
  Bytes buffer_;
  std::optional<Error> fault_;
};

}  // namespace tangled::tlswire
