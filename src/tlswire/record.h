// TLS 1.2 record layer (RFC 5246 §6.2): the outermost framing the ICSI
// Certificate Notary's passive extractor [17] parses from live traffic.
//
//   struct {
//     ContentType type;          // 1 byte
//     ProtocolVersion version;   // 2 bytes
//     uint16 length;             // <= 2^14
//     opaque fragment[length];
//   } TLSPlaintext;
//
// Only plaintext handshake records matter here — certificates travel
// before encryption starts.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace tangled::tlswire {

enum class ContentType : std::uint8_t {
  kChangeCipherSpec = 20,
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
};

/// TLS 1.2 on the wire.
inline constexpr std::uint16_t kTls12 = 0x0303;
/// RFC 5246: records carry at most 2^14 bytes of fragment.
inline constexpr std::size_t kMaxFragment = 1 << 14;

struct Record {
  ContentType type = ContentType::kHandshake;
  std::uint16_t version = kTls12;
  Bytes fragment;
};

/// Serializes one record (fragment must fit kMaxFragment).
Result<Bytes> encode_record(const Record& record);

/// Splits a payload across as many records as needed.
Result<Bytes> encode_records(ContentType type, ByteView payload);

/// TLS alert payloads (RFC 5246 §7.2) — two bytes: level + description.
/// A pinning client that rejects a chain sends bad_certificate(42) fatal(2).
enum class AlertLevel : std::uint8_t { kWarning = 1, kFatal = 2 };
enum class AlertDescription : std::uint8_t {
  kCloseNotify = 0,
  kBadCertificate = 42,
  kUnknownCa = 48,
  kCertificateExpired = 45,
  kHandshakeFailure = 40,
};

struct Alert {
  AlertLevel level = AlertLevel::kFatal;
  AlertDescription description = AlertDescription::kBadCertificate;
};

/// One alert record on the wire.
Result<Bytes> encode_alert(const Alert& alert);
/// Parses an alert record fragment (exactly two bytes).
Result<Alert> parse_alert(ByteView fragment);

/// Incremental record parser: feed arbitrary byte chunks, pull complete
/// records. Tolerates fragments split at any boundary (TCP semantics).
class RecordReader {
 public:
  /// Appends raw bytes from the stream.
  void feed(ByteView data);

  /// Extracts the next complete record; std::nullopt when more bytes are
  /// needed. Malformed framing yields an error and poisons the stream.
  Result<std::vector<Record>> drain();

  /// Bytes buffered but not yet consumed.
  std::size_t pending() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

}  // namespace tangled::tlswire
