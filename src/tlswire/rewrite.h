// Wire-level chain substitution — what the Reality Mine proxy does to the
// byte stream (§7: it terminates TLS and re-emits a handshake whose
// Certificate message carries freshly minted certificates).
#pragma once

#include "tlswire/handshake.h"

namespace tangled::tlswire {

/// Parses a captured server flight, replaces the Certificate message's
/// chain with `new_chain`, and re-encodes the flight. Non-certificate
/// handshake messages pass through untouched. Fails if the capture holds
/// no Certificate message.
Result<Bytes> substitute_chain(ByteView server_flight,
                               const std::vector<x509::Certificate>& new_chain);

}  // namespace tangled::tlswire
