// TLS 1.2 handshake messages (RFC 5246 §7.4) — the subset a certificate
// observer needs:
//
//  * ClientHello with the server_name (SNI) extension (RFC 6066) — how the
//    Notary knows which domain a chain was presented for;
//  * ServerHello (minimal);
//  * Certificate — the 3-byte-length-prefixed DER chain, leaf first, that
//    both the Notary and the Reality-Mine proxy operate on.
//
// Handshake messages may span records; HandshakeReassembler coalesces.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tlswire/record.h"
#include "util/arena.h"
#include "util/bytes.h"
#include "util/result.h"
#include "x509/certificate.h"
#include "x509/parsed_cert.h"

namespace tangled::tlswire {

enum class HandshakeType : std::uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kCertificate = 11,
};

struct HandshakeMessage {
  HandshakeType type = HandshakeType::kClientHello;
  Bytes body;
};

/// msg_type(1) || length(3) || body.
Bytes encode_handshake(const HandshakeMessage& message);

// --- ClientHello ----------------------------------------------------------

struct ClientHello {
  std::uint16_t version = kTls12;
  std::array<std::uint8_t, 32> random{};
  std::vector<std::uint16_t> cipher_suites{0x002f, 0xc013, 0xc02f};
  std::string sni;  // empty = no server_name extension

  Bytes encode_body() const;
  static Result<ClientHello> parse_body(ByteView body);
};

// --- ServerHello ------------------------------------------------------------

struct ServerHello {
  std::uint16_t version = kTls12;
  std::array<std::uint8_t, 32> random{};
  std::uint16_t cipher_suite = 0xc02f;

  Bytes encode_body() const;
  static Result<ServerHello> parse_body(ByteView body);
};

// --- Certificate -------------------------------------------------------------

/// Encodes a chain (leaf first) as a Certificate message body:
/// certificate_list<3..2^24-1> of opaque ASN.1Cert<1..2^24-1>.
Bytes encode_certificate_body(const std::vector<x509::Certificate>& chain);

/// Parses the body back into parsed certificates. Individual certs that
/// fail to parse abort with an error (the Notary logs such streams).
Result<std::vector<x509::Certificate>> parse_certificate_body(ByteView body);

/// Zero-copy twin of parse_certificate_body: copies `body` into `arena`
/// once, then parses each certificate as views into that stable copy — no
/// per-cert buffer copies, no Name/BigNum decoding. Accepts/rejects the
/// same message structure; returned views live as long as the arena.
Result<std::vector<x509::ParsedCert>> parse_certificate_views(
    ByteView body, util::Arena& arena);

// --- Reassembly ----------------------------------------------------------------

/// Feed handshake-record fragments, pull whole handshake messages
/// (messages may span multiple records; multiple messages may share one).
/// Same fault contract as RecordReader: a malformed message surfaces the
/// messages reassembled before it, poisons the stream, and repeated drains
/// return the stored fault without re-parsing.
class HandshakeReassembler {
 public:
  void feed(ByteView fragment);
  Partial<HandshakeMessage> drain();

  /// Bytes buffered but not yet reassembled into a whole message.
  std::size_t pending() const { return buffer_.size(); }

  bool poisoned() const { return fault_.has_value(); }
  const std::optional<Error>& fault() const { return fault_; }

 private:
  Bytes buffer_;
  std::optional<Error> fault_;
};

/// Convenience: serialize a full server flight (ServerHello + Certificate)
/// into TLS records, as captured on the wire.
Result<Bytes> encode_server_flight(const ServerHello& hello,
                                   const std::vector<x509::Certificate>& chain);

}  // namespace tangled::tlswire
