// The passive side: "Extracting Certificates from Live Traffic" [17].
// Feed captured bytes of one TLS connection; the extractor reassembles
// records and handshake messages, remembers the ClientHello's SNI, and
// surfaces the presented certificate chain — exactly what the ICSI Notary
// stores per session.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "tlswire/handshake.h"

namespace tangled::tlswire {

struct ExtractedSession {
  std::optional<std::string> sni;
  std::vector<x509::Certificate> chain;  // leaf first, as presented
  bool saw_client_hello = false;
  bool saw_server_hello = false;
  /// Alerts observed on the wire (a burst of fatal bad_certificate alerts
  /// right after Certificate is the pinning-failure signature §7 leans on).
  std::vector<Alert> alerts;
  /// Arena mode (TANGLED_ARENA_CERTS): zero-copy views of the same chain,
  /// backed by `arena`. The views are valid exactly as long as `arena` is
  /// owned somewhere — the session carries shared ownership, and anything
  /// the session is moved into (a demux CompletedFlow, say) inherits it, so
  /// retiring the extractor or the flow cannot dangle the views. Empty /
  /// null when the feature is off.
  std::vector<x509::ParsedCert> view_chain;
  std::shared_ptr<util::Arena> arena;
};

class CertificateExtractor {
 public:
  /// Feeds captured bytes (either direction; the caller may interleave).
  /// Malformed data returns the first fault hit, but everything parsed
  /// before the bad bytes — records, handshake messages, even a complete
  /// certificate chain — is retained in session(): a passive observer
  /// salvages what it saw before the stream went bad. After a fault the
  /// underlying readers are poisoned, so further feeds keep returning the
  /// same fault without buffering or re-parsing.
  Result<void> feed(ByteView capture);

  /// The session as understood so far.
  const ExtractedSession& session() const { return session_; }

  /// Moves the session out (for callers about to discard the extractor —
  /// a streaming demux retiring a finished flow). Leaves session() empty.
  ExtractedSession take_session() { return std::move(session_); }

  /// True once a complete Certificate message has been seen.
  bool has_chain() const { return !session_.chain.empty(); }

  /// Bytes held across the record and handshake reassembly buffers —
  /// what a streaming demux charges this flow for.
  std::size_t buffered_bytes() const {
    return records_.pending() + handshakes_.pending();
  }
  /// Bytes of an incomplete TLS record awaiting more data.
  std::size_t record_pending() const { return records_.pending(); }
  /// Bytes of an incomplete handshake message awaiting more records.
  std::size_t handshake_pending() const { return handshakes_.pending(); }

  /// True once a fault has permanently broken this session's stream.
  bool poisoned() const {
    return records_.poisoned() || handshakes_.poisoned();
  }

 private:
  RecordReader records_;
  HandshakeReassembler handshakes_;
  ExtractedSession session_;
};

}  // namespace tangled::tlswire
