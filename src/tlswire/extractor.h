// The passive side: "Extracting Certificates from Live Traffic" [17].
// Feed captured bytes of one TLS connection; the extractor reassembles
// records and handshake messages, remembers the ClientHello's SNI, and
// surfaces the presented certificate chain — exactly what the ICSI Notary
// stores per session.
#pragma once

#include <optional>
#include <string>

#include "tlswire/handshake.h"

namespace tangled::tlswire {

struct ExtractedSession {
  std::optional<std::string> sni;
  std::vector<x509::Certificate> chain;  // leaf first, as presented
  bool saw_client_hello = false;
  bool saw_server_hello = false;
  /// Alerts observed on the wire (a burst of fatal bad_certificate alerts
  /// right after Certificate is the pinning-failure signature §7 leans on).
  std::vector<Alert> alerts;
};

class CertificateExtractor {
 public:
  /// Feeds captured bytes (either direction; the caller may interleave).
  /// Malformed data poisons the session with an error state.
  Result<void> feed(ByteView capture);

  /// The session as understood so far.
  const ExtractedSession& session() const { return session_; }

  /// True once a complete Certificate message has been seen.
  bool has_chain() const { return !session_.chain.empty(); }

 private:
  RecordReader records_;
  HandshakeReassembler handshakes_;
  ExtractedSession session_;
};

}  // namespace tangled::tlswire
