#include "tlswire/rewrite.h"

#include "obs/obs.h"
#include "tlswire/record.h"

namespace tangled::tlswire {

Result<Bytes> substitute_chain(ByteView server_flight,
                               const std::vector<x509::Certificate>& new_chain) {
  TANGLED_OBS_INC("tlswire.rewrite.calls");
  TANGLED_OBS_ADD("tlswire.rewrite.bytes_in", server_flight.size());
  auto result = [&]() -> Result<Bytes> {
    RecordReader records;
    records.feed(server_flight);
    auto parsed_records = records.drain();
    if (!parsed_records.ok()) return parsed_records.error();
    if (records.pending() != 0) {
      return parse_error("trailing partial record in captured flight");
    }

    HandshakeReassembler reassembler;
    for (const Record& record : parsed_records.value()) {
      if (record.type != ContentType::kHandshake) {
        return unsupported_error("non-handshake record in server flight");
      }
      reassembler.feed(record.fragment);
    }
    auto messages = reassembler.drain();
    if (!messages.ok()) return messages.error();

    Bytes rebuilt;
    bool substituted = false;
    for (const HandshakeMessage& message : messages.value()) {
      if (message.type == HandshakeType::kCertificate) {
        append(rebuilt, encode_handshake({HandshakeType::kCertificate,
                                          encode_certificate_body(new_chain)}));
        substituted = true;
      } else {
        append(rebuilt, encode_handshake(message));
      }
    }
    if (!substituted) {
      return not_found_error("no Certificate message in captured flight");
    }
    return encode_records(ContentType::kHandshake, rebuilt);
  }();
  if (result.ok()) {
    TANGLED_OBS_INC("tlswire.rewrite.substituted");
    TANGLED_OBS_ADD("tlswire.rewrite.bytes_out", result.value().size());
  } else {
    TANGLED_OBS_INC("tlswire.rewrite.errors");
  }
  return result;
}

}  // namespace tangled::tlswire
