#include "tlswire/rewrite.h"

#include "tlswire/record.h"

namespace tangled::tlswire {

Result<Bytes> substitute_chain(ByteView server_flight,
                               const std::vector<x509::Certificate>& new_chain) {
  RecordReader records;
  records.feed(server_flight);
  auto parsed_records = records.drain();
  if (!parsed_records.ok()) return parsed_records.error();
  if (records.pending() != 0) {
    return parse_error("trailing partial record in captured flight");
  }

  HandshakeReassembler reassembler;
  for (const Record& record : parsed_records.value()) {
    if (record.type != ContentType::kHandshake) {
      return unsupported_error("non-handshake record in server flight");
    }
    reassembler.feed(record.fragment);
  }
  auto messages = reassembler.drain();
  if (!messages.ok()) return messages.error();

  Bytes rebuilt;
  bool substituted = false;
  for (const HandshakeMessage& message : messages.value()) {
    if (message.type == HandshakeType::kCertificate) {
      append(rebuilt, encode_handshake({HandshakeType::kCertificate,
                                        encode_certificate_body(new_chain)}));
      substituted = true;
    } else {
      append(rebuilt, encode_handshake(message));
    }
  }
  if (!substituted) {
    return not_found_error("no Certificate message in captured flight");
  }
  return encode_records(ContentType::kHandshake, rebuilt);
}

}  // namespace tangled::tlswire
