#include "tlswire/handshake.h"

namespace tangled::tlswire {

namespace {

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void put_u24(Bytes& out, std::size_t v) {
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

/// Bounds-checked big-endian cursor.
class Cursor {
 public:
  explicit Cursor(ByteView data) : data_(data) {}

  bool at_end() const { return pos_ >= data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  Result<std::uint8_t> u8() {
    if (remaining() < 1) return parse_error("truncated handshake field");
    return data_[pos_++];
  }
  Result<std::uint16_t> u16() {
    if (remaining() < 2) return parse_error("truncated handshake field");
    const std::uint16_t v =
        static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  Result<std::uint32_t> u24() {
    if (remaining() < 3) return parse_error("truncated handshake field");
    const std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 16) |
                            (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                            data_[pos_ + 2];
    pos_ += 3;
    return v;
  }
  Result<ByteView> take(std::size_t n) {
    if (remaining() < n) return parse_error("truncated handshake field");
    ByteView out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

 private:
  ByteView data_;
  std::size_t pos_ = 0;
};

constexpr std::uint16_t kSniExtension = 0;
constexpr std::uint8_t kSniHostName = 0;

}  // namespace

Bytes encode_handshake(const HandshakeMessage& message) {
  Bytes out;
  out.reserve(message.body.size() + 4);
  out.push_back(static_cast<std::uint8_t>(message.type));
  put_u24(out, message.body.size());
  append(out, message.body);
  return out;
}

// ---------------------------------------------------------------------------
// ClientHello
// ---------------------------------------------------------------------------

Bytes ClientHello::encode_body() const {
  Bytes out;
  put_u16(out, version);
  out.insert(out.end(), random.begin(), random.end());
  out.push_back(0);  // empty session_id
  put_u16(out, static_cast<std::uint16_t>(cipher_suites.size() * 2));
  for (const std::uint16_t suite : cipher_suites) put_u16(out, suite);
  out.push_back(1);  // compression_methods length
  out.push_back(0);  // null compression

  Bytes extensions;
  if (!sni.empty()) {
    // server_name extension (RFC 6066 §3).
    Bytes entry;
    entry.push_back(kSniHostName);
    put_u16(entry, static_cast<std::uint16_t>(sni.size()));
    append(entry, to_bytes(sni));
    Bytes list;
    put_u16(list, static_cast<std::uint16_t>(entry.size()));
    append(list, entry);
    put_u16(extensions, kSniExtension);
    put_u16(extensions, static_cast<std::uint16_t>(list.size()));
    append(extensions, list);
  }
  put_u16(out, static_cast<std::uint16_t>(extensions.size()));
  append(out, extensions);
  return out;
}

Result<ClientHello> ClientHello::parse_body(ByteView body) {
  Cursor c(body);
  ClientHello hello;
  auto version = c.u16();
  if (!version.ok()) return version.error();
  hello.version = version.value();

  auto random = c.take(32);
  if (!random.ok()) return random.error();
  std::copy(random.value().begin(), random.value().end(), hello.random.begin());

  auto session_len = c.u8();
  if (!session_len.ok()) return session_len.error();
  if (auto skip = c.take(session_len.value()); !skip.ok()) return skip.error();

  auto suites_len = c.u16();
  if (!suites_len.ok()) return suites_len.error();
  if (suites_len.value() % 2 != 0) return parse_error("odd cipher_suites length");
  hello.cipher_suites.clear();
  for (std::size_t i = 0; i < suites_len.value() / 2; ++i) {
    auto suite = c.u16();
    if (!suite.ok()) return suite.error();
    hello.cipher_suites.push_back(suite.value());
  }

  auto compression_len = c.u8();
  if (!compression_len.ok()) return compression_len.error();
  if (auto skip = c.take(compression_len.value()); !skip.ok()) return skip.error();

  hello.sni.clear();
  if (!c.at_end()) {
    auto ext_total = c.u16();
    if (!ext_total.ok()) return ext_total.error();
    auto ext_bytes = c.take(ext_total.value());
    if (!ext_bytes.ok()) return ext_bytes.error();
    Cursor e(ext_bytes.value());
    while (!e.at_end()) {
      auto ext_type = e.u16();
      if (!ext_type.ok()) return ext_type.error();
      auto ext_len = e.u16();
      if (!ext_len.ok()) return ext_len.error();
      auto ext_data = e.take(ext_len.value());
      if (!ext_data.ok()) return ext_data.error();
      if (ext_type.value() == kSniExtension) {
        Cursor s(ext_data.value());
        auto list_len = s.u16();
        if (!list_len.ok()) return list_len.error();
        while (!s.at_end()) {
          auto name_type = s.u8();
          if (!name_type.ok()) return name_type.error();
          auto name_len = s.u16();
          if (!name_len.ok()) return name_len.error();
          auto name = s.take(name_len.value());
          if (!name.ok()) return name.error();
          if (name_type.value() == kSniHostName) {
            hello.sni = to_string(name.value());
          }
        }
      }
    }
  }
  if (!c.at_end()) return parse_error("trailing bytes after ClientHello");
  return hello;
}

// ---------------------------------------------------------------------------
// ServerHello
// ---------------------------------------------------------------------------

Bytes ServerHello::encode_body() const {
  Bytes out;
  put_u16(out, version);
  out.insert(out.end(), random.begin(), random.end());
  out.push_back(0);  // empty session_id
  put_u16(out, cipher_suite);
  out.push_back(0);  // null compression
  put_u16(out, 0);   // no extensions
  return out;
}

Result<ServerHello> ServerHello::parse_body(ByteView body) {
  Cursor c(body);
  ServerHello hello;
  auto version = c.u16();
  if (!version.ok()) return version.error();
  hello.version = version.value();
  auto random = c.take(32);
  if (!random.ok()) return random.error();
  std::copy(random.value().begin(), random.value().end(), hello.random.begin());
  auto session_len = c.u8();
  if (!session_len.ok()) return session_len.error();
  if (auto skip = c.take(session_len.value()); !skip.ok()) return skip.error();
  auto suite = c.u16();
  if (!suite.ok()) return suite.error();
  hello.cipher_suite = suite.value();
  auto compression = c.u8();
  if (!compression.ok()) return compression.error();
  // Optional extensions block; ignore its contents.
  if (!c.at_end()) {
    auto ext_total = c.u16();
    if (!ext_total.ok()) return ext_total.error();
    if (auto skip = c.take(ext_total.value()); !skip.ok()) return skip.error();
  }
  if (!c.at_end()) return parse_error("trailing bytes after ServerHello");
  return hello;
}

// ---------------------------------------------------------------------------
// Certificate
// ---------------------------------------------------------------------------

Bytes encode_certificate_body(const std::vector<x509::Certificate>& chain) {
  Bytes list;
  for (const auto& cert : chain) {
    put_u24(list, cert.der().size());
    append(list, cert.der());
  }
  Bytes out;
  put_u24(out, list.size());
  append(out, list);
  return out;
}

Result<std::vector<x509::Certificate>> parse_certificate_body(ByteView body) {
  Cursor c(body);
  auto list_len = c.u24();
  if (!list_len.ok()) return list_len.error();
  auto list_bytes = c.take(list_len.value());
  if (!list_bytes.ok()) return list_bytes.error();
  if (!c.at_end()) return parse_error("trailing bytes after certificate_list");

  std::vector<x509::Certificate> chain;
  Cursor l(list_bytes.value());
  while (!l.at_end()) {
    auto cert_len = l.u24();
    if (!cert_len.ok()) return cert_len.error();
    if (cert_len.value() == 0) return parse_error("zero-length ASN.1Cert");
    auto der = l.take(cert_len.value());
    if (!der.ok()) return der.error();
    auto cert = x509::Certificate::from_der(der.value());
    if (!cert.ok()) return cert.error();
    chain.push_back(std::move(cert).value());
  }
  return chain;
}

Result<std::vector<x509::ParsedCert>> parse_certificate_views(
    ByteView body, util::Arena& arena) {
  // One copy for the whole message; every cert view points into it.
  const ByteView stable = arena.copy(body);
  Cursor c(stable);
  auto list_len = c.u24();
  if (!list_len.ok()) return list_len.error();
  auto list_bytes = c.take(list_len.value());
  if (!list_bytes.ok()) return list_bytes.error();
  if (!c.at_end()) return parse_error("trailing bytes after certificate_list");

  std::vector<x509::ParsedCert> chain;
  Cursor l(list_bytes.value());
  while (!l.at_end()) {
    auto cert_len = l.u24();
    if (!cert_len.ok()) return cert_len.error();
    if (cert_len.value() == 0) return parse_error("zero-length ASN.1Cert");
    auto der = l.take(cert_len.value());
    if (!der.ok()) return der.error();
    auto cert = x509::ParsedCert::from_der_view(der.value());
    if (!cert.ok()) return cert.error();
    chain.push_back(cert.value());
  }
  return chain;
}

// ---------------------------------------------------------------------------
// Reassembly and flights
// ---------------------------------------------------------------------------

void HandshakeReassembler::feed(ByteView fragment) {
  if (fault_.has_value()) return;  // alignment lost; see RecordReader::feed
  append(buffer_, fragment);
}

Partial<HandshakeMessage> HandshakeReassembler::drain() {
  std::vector<HandshakeMessage> messages;
  if (fault_.has_value()) return {std::move(messages), *fault_};
  std::size_t pos = 0;
  while (buffer_.size() - pos >= 4) {
    const std::uint8_t type = buffer_[pos];
    if (type != 1 && type != 2 && type != 11) {
      fault_ =
          unsupported_error("unhandled handshake type " + std::to_string(type));
      buffer_.clear();
      return {std::move(messages), *fault_};
    }
    const std::size_t length = (static_cast<std::size_t>(buffer_[pos + 1]) << 16) |
                               (static_cast<std::size_t>(buffer_[pos + 2]) << 8) |
                               buffer_[pos + 3];
    if (buffer_.size() - pos - 4 < length) break;
    HandshakeMessage message;
    message.type = static_cast<HandshakeType>(type);
    message.body.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(pos + 4),
                        buffer_.begin() +
                            static_cast<std::ptrdiff_t>(pos + 4 + length));
    messages.push_back(std::move(message));
    pos += 4 + length;
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(pos));
  return messages;
}

Result<Bytes> encode_server_flight(const ServerHello& hello,
                                   const std::vector<x509::Certificate>& chain) {
  Bytes handshakes;
  append(handshakes, encode_handshake({HandshakeType::kServerHello,
                                       hello.encode_body()}));
  append(handshakes,
         encode_handshake({HandshakeType::kCertificate,
                           encode_certificate_body(chain)}));
  return encode_records(ContentType::kHandshake, handshakes);
}

}  // namespace tangled::tlswire
