#include "tlswire/extractor.h"

#include "obs/obs.h"

namespace tangled::tlswire {

Result<void> CertificateExtractor::feed(ByteView capture) {
  TANGLED_OBS_ADD("tlswire.extract.bytes_fed", capture.size());
  auto result = [&]() -> Result<void> {
    records_.feed(capture);
    auto records = records_.drain();
    if (!records.ok()) return records.error();
    TANGLED_OBS_ADD("tlswire.extract.records", records.value().size());

    for (const Record& record : records.value()) {
      if (record.type == ContentType::kAlert) {
        auto alert = parse_alert(record.fragment);
        if (!alert.ok()) return alert.error();
        TANGLED_OBS_INC("tlswire.extract.alerts");
        session_.alerts.push_back(alert.value());
        continue;
      }
      if (record.type != ContentType::kHandshake) continue;  // observer skips
      handshakes_.feed(record.fragment);
    }
    auto messages = handshakes_.drain();
    if (!messages.ok()) return messages.error();
    TANGLED_OBS_ADD("tlswire.extract.handshake_msgs", messages.value().size());

    for (const HandshakeMessage& message : messages.value()) {
      switch (message.type) {
        case HandshakeType::kClientHello: {
          auto hello = ClientHello::parse_body(message.body);
          if (!hello.ok()) return hello.error();
          session_.saw_client_hello = true;
          if (!hello.value().sni.empty()) session_.sni = hello.value().sni;
          break;
        }
        case HandshakeType::kServerHello: {
          auto hello = ServerHello::parse_body(message.body);
          if (!hello.ok()) return hello.error();
          session_.saw_server_hello = true;
          break;
        }
        case HandshakeType::kCertificate: {
          auto chain = parse_certificate_body(message.body);
          if (!chain.ok()) return chain.error();
          TANGLED_OBS_INC("tlswire.extract.chains");
          session_.chain = std::move(chain).value();
          break;
        }
      }
    }
    return {};
  }();
  if (!result.ok()) TANGLED_OBS_INC("tlswire.extract.errors");
  return result;
}

}  // namespace tangled::tlswire
