#include "tlswire/extractor.h"

namespace tangled::tlswire {

Result<void> CertificateExtractor::feed(ByteView capture) {
  records_.feed(capture);
  auto records = records_.drain();
  if (!records.ok()) return records.error();

  for (const Record& record : records.value()) {
    if (record.type == ContentType::kAlert) {
      auto alert = parse_alert(record.fragment);
      if (!alert.ok()) return alert.error();
      session_.alerts.push_back(alert.value());
      continue;
    }
    if (record.type != ContentType::kHandshake) continue;  // observer skips
    handshakes_.feed(record.fragment);
  }
  auto messages = handshakes_.drain();
  if (!messages.ok()) return messages.error();

  for (const HandshakeMessage& message : messages.value()) {
    switch (message.type) {
      case HandshakeType::kClientHello: {
        auto hello = ClientHello::parse_body(message.body);
        if (!hello.ok()) return hello.error();
        session_.saw_client_hello = true;
        if (!hello.value().sni.empty()) session_.sni = hello.value().sni;
        break;
      }
      case HandshakeType::kServerHello: {
        auto hello = ServerHello::parse_body(message.body);
        if (!hello.ok()) return hello.error();
        session_.saw_server_hello = true;
        break;
      }
      case HandshakeType::kCertificate: {
        auto chain = parse_certificate_body(message.body);
        if (!chain.ok()) return chain.error();
        session_.chain = std::move(chain).value();
        break;
      }
    }
  }
  return {};
}

}  // namespace tangled::tlswire
