#include "tlswire/extractor.h"

#include "obs/obs.h"
#include "util/features.h"

namespace tangled::tlswire {

Result<void> CertificateExtractor::feed(ByteView capture) {
  TANGLED_OBS_ADD("tlswire.extract.bytes_fed", capture.size());
  // First fault wins, but processing continues past it: the records and
  // messages that parsed before the bad bytes still update the session.
  std::optional<Error> fault;
  auto note = [&fault](Error error) {
    if (!fault.has_value()) fault = std::move(error);
  };

  records_.feed(capture);
  auto records = records_.drain();
  TANGLED_OBS_ADD("tlswire.extract.records", records.value().size());

  for (const Record& record : records.value()) {
    if (record.type == ContentType::kAlert) {
      auto alert = parse_alert(record.fragment);
      if (!alert.ok()) {
        note(alert.error());
        continue;
      }
      TANGLED_OBS_INC("tlswire.extract.alerts");
      session_.alerts.push_back(alert.value());
      continue;
    }
    if (record.type != ContentType::kHandshake) continue;  // observer skips
    handshakes_.feed(record.fragment);
  }
  auto messages = handshakes_.drain();
  TANGLED_OBS_ADD("tlswire.extract.handshake_msgs", messages.value().size());

  for (const HandshakeMessage& message : messages.value()) {
    switch (message.type) {
      case HandshakeType::kClientHello: {
        auto hello = ClientHello::parse_body(message.body);
        if (!hello.ok()) {
          note(hello.error());
          break;
        }
        session_.saw_client_hello = true;
        if (!hello.value().sni.empty()) session_.sni = hello.value().sni;
        break;
      }
      case HandshakeType::kServerHello: {
        auto hello = ServerHello::parse_body(message.body);
        if (!hello.ok()) {
          note(hello.error());
          break;
        }
        session_.saw_server_hello = true;
        break;
      }
      case HandshakeType::kCertificate: {
        if (util::arena_certs_enabled()) {
          // Arena path: one copy of the message into the session's arena,
          // views parsed into it (structure validated without per-cert
          // buffers), then the owning chain materialized from the same
          // bytes. For a chain with several distinct malformations the
          // first fault reported may differ from the legacy path (views
          // surface structural faults across the whole list before
          // materialize surfaces semantic ones), but any given fault is
          // reported by both, and well-formed chains parse identically.
          if (!session_.arena) {
            session_.arena = std::make_shared<util::Arena>();
          }
          auto views = parse_certificate_views(message.body, *session_.arena);
          if (!views.ok()) {
            note(Error{views.error().code,
                       "certificate message: " + views.error().message});
            break;
          }
          std::vector<x509::Certificate> chain;
          chain.reserve(views.value().size());
          bool failed = false;
          for (const x509::ParsedCert& view : views.value()) {
            auto cert = view.materialize();
            if (!cert.ok()) {
              note(Error{cert.error().code,
                         "certificate message: " + cert.error().message});
              failed = true;
              break;
            }
            chain.push_back(std::move(cert).value());
          }
          if (failed) break;
          TANGLED_OBS_INC("tlswire.extract.chains");
          session_.chain = std::move(chain);
          session_.view_chain = std::move(views).value();
          break;
        }
        auto chain = parse_certificate_body(message.body);
        if (!chain.ok()) {
          // Tagged so downstream fault taxonomies can tell a broken
          // certificate_list from generic handshake damage.
          note(Error{chain.error().code,
                     "certificate message: " + chain.error().message});
          break;
        }
        TANGLED_OBS_INC("tlswire.extract.chains");
        session_.chain = std::move(chain).value();
        break;
      }
    }
  }
  // Layer faults come positionally after the messages salvaged above.
  if (!messages.ok()) note(messages.error());
  if (!records.ok()) note(records.error());

  if (fault.has_value()) {
    TANGLED_OBS_INC("tlswire.extract.errors");
    return *fault;
  }
  return {};
}

}  // namespace tangled::tlswire
