#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/telemetry.h"

namespace tangled::serve {

namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

Result<SubmitResponse> submit_frame(const std::string& host,
                                    std::uint16_t port, const Bytes& frame,
                                    ClientConfig config) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config.timeout_ms);

  FdCloser sock{::socket(AF_INET, SOCK_STREAM, 0)};
  if (sock.fd < 0) return state_error("serve client: socket() failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return state_error("serve client: bad host " + host);
  }
  const int connected = obs::retry_eintr([&] {
    return ::connect(sock.fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr));
  });
  if (connected != 0) {
    return state_error("serve client: connect failed: " +
                       std::string(std::strerror(errno)));
  }
  if (!obs::send_all(sock.fd,
                     std::string_view(
                         reinterpret_cast<const char*>(frame.data()),
                         frame.size()))) {
    return state_error("serve client: send failed");
  }

  // Read header + body with the round-trip deadline; the response frame is
  // small, but a server mid-overload may take a moment to answer.
  Bytes response;
  std::size_t need = kFrameHeaderBytes;
  while (response.size() < need) {
    const int left = remaining_ms(deadline);
    if (left == 0) return state_error("serve client: response timed out");
    pollfd pfd{sock.fd, POLLIN, 0};
    const int ready = obs::retry_eintr([&] { return ::poll(&pfd, 1, left); });
    if (ready <= 0) return state_error("serve client: response timed out");
    std::uint8_t buf[4096];
    const ssize_t got =
        obs::retry_eintr([&] { return ::recv(sock.fd, buf, sizeof(buf), 0); });
    if (got == 0) {
      return state_error("serve client: connection closed mid-response");
    }
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return state_error("serve client: recv failed");
    }
    response.insert(response.end(), buf, buf + got);
    if (need == kFrameHeaderBytes && response.size() >= kFrameHeaderBytes) {
      const std::uint32_t body_len =
          static_cast<std::uint32_t>(response[8]) |
          static_cast<std::uint32_t>(response[9]) << 8 |
          static_cast<std::uint32_t>(response[10]) << 16 |
          static_cast<std::uint32_t>(response[11]) << 24;
      if (body_len > (1u << 20)) {
        return parse_error("serve client: implausible response body length");
      }
      need = kFrameHeaderBytes + body_len;
    }
  }
  return decode_response(ByteView(response.data(), response.size()));
}

Result<SubmitResponse> submit_rootstore(const std::string& host,
                                        std::uint16_t port,
                                        const RootStoreObservation& observation,
                                        ClientConfig config) {
  return submit_frame(host, port, encode_rootstore_observation(observation),
                      config);
}

Result<SubmitResponse> submit_capture(const std::string& host,
                                      std::uint16_t port,
                                      const CaptureUpload& upload,
                                      ClientConfig config) {
  return submit_frame(host, port, encode_capture_upload(upload), config);
}

}  // namespace tangled::serve
