#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/obs.h"
#include "obs/telemetry.h"
#include "stream/fault.h"
#include "x509/certificate.h"

namespace tangled::serve {

namespace {

using Clock = std::chrono::steady_clock;

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

/// One connection's read state machine. A connection carries exactly one
/// frame: header → payload → response → close.
struct IngestServer::Conn {
  enum class State { kReadHeader, kReadPayload, kWriteResponse };

  int fd = -1;
  State state = State::kReadHeader;
  Clock::time_point deadline;

  std::uint8_t header[kFrameHeaderBytes];
  std::size_t header_read = 0;

  FrameHeader frame;
  Bytes payload;               // buffered payload (empty while discarding)
  std::size_t payload_read = 0;  // payload bytes consumed off the socket
  bool charged = false;          // frame.payload_bytes counted in inflight_

  /// Set when the frame's fate was decided before its bytes finished
  /// arriving (shed / evicted / draining / unsupported): the remaining
  /// payload is read and dropped, then `verdict` is answered.
  bool discarding = false;
  SubmitStatus verdict = SubmitStatus::kMalformed;
  std::string verdict_detail;

  Bytes out;
  std::size_t out_written = 0;

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
};

IngestServer::IngestServer(notary::NotaryDb& db,
                           notary::ValidationCensus* census,
                           util::ThreadPool& pool, ServeConfig config,
                           recover::CheckpointingCensus* checkpoint)
    : db_(db),
      census_(census),
      pool_(pool),
      config_(std::move(config)),
      checkpoint_(checkpoint) {}

IngestServer::~IngestServer() { stop(); }

Result<void> IngestServer::start() {
  if (running_.load(std::memory_order_acquire)) {
    return state_error("serve: already running");
  }
  if (config_.require_budget && census_ != nullptr) {
    const pki::ResourceBudget& budget = census_->options().budget;
    if (budget.max_search_steps == 0 && budget.max_depth == 0 &&
        budget.deadline_us == 0) {
      return state_error(
          "serve: census VerifyOptions carry no ResourceBudget; an "
          "unbudgeted verifier lets one hostile submission starve the "
          "server (set budget.max_search_steps, or require_budget=false)");
    }
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return state_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return state_error("serve: bad bind address " + config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return state_error("serve: bind failed: " +
                       std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) != 0 || !set_nonblocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return state_error("serve: listen failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  stream::StreamIngestConfig stream_config = config_.stream;
  if (checkpoint_ != nullptr) {
    stream_config.on_batch_committed = checkpoint_->stream_hook();
  }
  ingestor_ = std::make_unique<stream::StreamIngestor>(db_, census_, pool_,
                                                       stream_config);

  stop_requested_.store(false, std::memory_order_release);
  drain_requested_.store(false, std::memory_order_release);
  drained_ = false;
  drain_report_ = DrainReport{};
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  TANGLED_OBS_INC("serve.started");
  return {};
}

void IngestServer::stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

Result<DrainReport> IngestServer::drain() {
  if (!running_.load(std::memory_order_acquire) && !drained_) {
    return state_error("serve: drain() before start()");
  }
  drain_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
  if (!drained_) {
    // The loop exited via stop() before the drain flag was seen.
    return state_error("serve: stopped before the drain completed");
  }
  return drain_report_;
}

ServeStats IngestServer::stats() const {
  ServeStats out;
  out.connections_accepted = stats_.connections_accepted.load();
  out.accepted = stats_.accepted.load();
  out.flow_faulted = stats_.flow_faulted.load();
  out.shed = stats_.shed.load();
  out.evicted = stats_.evicted.load();
  out.deadline_expired = stats_.deadline_expired.load();
  out.malformed = stats_.malformed.load();
  out.unsupported = stats_.unsupported.load();
  out.draining_refused = stats_.draining_refused.load();
  out.rootstore_observations = stats_.rootstore_observations.load();
  out.capture_uploads = stats_.capture_uploads.load();
  out.payload_bytes_received = stats_.payload_bytes_received.load();
  out.payload_bytes_discarded = stats_.payload_bytes_discarded.load();
  return out;
}

RootStoreTallySnapshot IngestServer::rootstore_tally() const {
  std::lock_guard<std::mutex> lock(tally_mutex_);
  return tally_;
}

std::uint64_t IngestServer::cursor() const {
  if (checkpoint_ != nullptr) return checkpoint_->observations_ingested();
  return ingestor_ != nullptr ? ingestor_->census_committed() : 0;
}

void IngestServer::serve_loop() {
  bool draining = false;
  Clock::time_point drain_deadline{};

  std::vector<pollfd> fds;
  for (;;) {
    if (stop_requested_.load(std::memory_order_acquire)) break;
    if (!draining && drain_requested_.load(std::memory_order_acquire)) {
      draining = true;
      drain_deadline =
          Clock::now() + std::chrono::milliseconds(config_.drain_deadline_ms);
    }
    if (draining &&
        (conns_.empty() || Clock::now() >= drain_deadline)) {
      // Expire whatever is still mid-frame; the storm is over. One
      // best-effort non-blocking flush each, then the Conn destructors
      // close the sockets.
      for (auto& conn : conns_) {
        if (conn->state != Conn::State::kWriteResponse) {
          respond(*conn, SubmitStatus::kDeadlineExpired, "server drained");
        }
        (void)obs::retry_eintr([&] {
          return ::send(conn->fd, conn->out.data() + conn->out_written,
                        conn->out.size() - conn->out_written,
                        MSG_NOSIGNAL | MSG_DONTWAIT);
        });
      }
      conns_.clear();
      break;
    }

    fds.clear();
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const auto& conn : conns_) {
      const short events =
          conn->state == Conn::State::kWriteResponse ? POLLOUT : POLLIN;
      fds.push_back(pollfd{conn->fd, events, 0});
    }

    const int ready = obs::retry_eintr(
        [&] { return ::poll(fds.data(), fds.size(), /*timeout_ms=*/10); });
    if (ready < 0) break;  // unrecoverable poll failure

    if (fds[0].revents & POLLIN) accept_ready();

    // Walk a snapshot of the connection list: processing may close (erase)
    // entries, so match by fd and re-find the live Conn each time.
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      const int fd = fds[i].fd;
      auto it = std::find_if(
          conns_.begin(), conns_.end(),
          [fd](const std::unique_ptr<Conn>& c) { return c->fd == fd; });
      if (it == conns_.end()) continue;
      Conn& conn = **it;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        close_conn(static_cast<std::size_t>(it - conns_.begin()));
        continue;
      }
      if (conn.state == Conn::State::kWriteResponse) {
        write_ready(conn);
      } else {
        read_ready(conn);
      }
      // read_ready/process may have finished the frame; flush eagerly so a
      // one-round-trip submission needs one poll cycle, not two.
      auto again = std::find_if(
          conns_.begin(), conns_.end(),
          [fd](const std::unique_ptr<Conn>& c) { return c->fd == fd; });
      if (again != conns_.end() &&
          (*again)->state == Conn::State::kWriteResponse) {
        write_ready(**again);
      }
    }

    expire_overdue(Clock::now());
  }

  if (drain_requested_.load(std::memory_order_acquire) &&
      !stop_requested_.load(std::memory_order_acquire)) {
    // Graceful path: flush the final partial batch at a batch boundary
    // (firing the checkpoint hook), then snapshot explicitly so the resume
    // cursor covers everything this server accepted.
    drain_report_.stream = ingestor_->finish();
    drain_report_.observations_committed = cursor();
    // In-flight store maintenance must settle before the final
    // checkpoint: a compaction pass swapping segments after the cursor is
    // written would be harmless for correctness (compaction preserves
    // every record above stable_seq) but leaves the index accelerator
    // stale for the very open that resume performs next.
    if (config_.quiesce_maintenance) config_.quiesce_maintenance();
    if (checkpoint_ != nullptr) {
      auto written = checkpoint_->checkpoint();
      drain_report_.checkpointed = written.ok();
      if (!written.ok()) drain_report_.checkpoint_error = written.error().message;
    }
    drained_ = true;
    TANGLED_OBS_INC("serve.drained");
  }
  // stop() path: no flush, no checkpoint — crash semantics by design.
  conns_.clear();
  inflight_bytes_ = 0;
}

void IngestServer::accept_ready() {
  for (;;) {
    const int fd =
        obs::retry_eintr([&] { return ::accept(listen_fd_, nullptr, nullptr); });
    if (fd < 0) return;  // EAGAIN or transient accept failure: next poll
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->deadline = Clock::now() +
                     std::chrono::milliseconds(config_.request_deadline_ms);
    if (conns_.size() >= config_.max_connections) {
      // Connection-count admission: refuse before reading a byte.
      respond(*conn, SubmitStatus::kShed, "connection limit reached");
    } else if (drain_requested_.load(std::memory_order_acquire)) {
      respond(*conn, SubmitStatus::kDraining, "server is draining");
    }
    conns_.push_back(std::move(conn));
  }
}

void IngestServer::read_ready(Conn& conn) {
  if (conn.state == Conn::State::kReadHeader) {
    const ssize_t got = obs::retry_eintr([&] {
      return ::recv(conn.fd, conn.header + conn.header_read,
                    kFrameHeaderBytes - conn.header_read, 0);
    });
    if (got == 0 || (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
      close_conn_by_fd(conn.fd);
      return;
    }
    if (got < 0) return;
    conn.header_read += static_cast<std::size_t>(got);
    if (conn.header_read < kFrameHeaderBytes) return;

    auto header = decode_frame_header(
        ByteView(conn.header, kFrameHeaderBytes));
    if (!header.ok()) {
      // Bad magic: the declared length is untrustworthy, answer and close
      // without reading another byte.
      respond(conn, SubmitStatus::kMalformed, header.error().message);
      return;
    }
    conn.frame = header.value();
    conn.state = Conn::State::kReadPayload;

    const bool known_type =
        conn.frame.type == MessageType::kRootStoreObservation ||
        conn.frame.type == MessageType::kCaptureUpload;
    if (conn.frame.version != kProtocolVersion || !known_type) {
      conn.discarding = true;
      conn.verdict = SubmitStatus::kUnsupported;
      conn.verdict_detail =
          conn.frame.version != kProtocolVersion
              ? "unsupported protocol version"
              : "unsupported message type";
    } else if (drain_requested_.load(std::memory_order_acquire)) {
      conn.discarding = true;
      conn.verdict = SubmitStatus::kDraining;
      conn.verdict_detail = "server is draining";
    } else if (conn.frame.payload_bytes > config_.max_payload_bytes) {
      conn.discarding = true;
      conn.verdict = SubmitStatus::kShed;
      conn.verdict_detail = "payload exceeds per-request cap";
    } else if (!admit(conn)) {
      conn.discarding = true;
      conn.verdict = SubmitStatus::kShed;
      conn.verdict_detail = "in-flight byte budget exhausted";
    } else {
      // Admitted: the declared length is now safe to allocate against (it
      // is bounded by max_payload_bytes and charged to the budget).
      conn.payload.resize(conn.frame.payload_bytes);
    }
    if (conn.frame.payload_bytes == 0) finish_frame(conn);
    return;
  }

  if (conn.state != Conn::State::kReadPayload) return;
  const std::size_t remaining = conn.frame.payload_bytes - conn.payload_read;
  if (conn.discarding) {
    std::uint8_t sink[4096];
    const ssize_t got = obs::retry_eintr([&] {
      return ::recv(conn.fd, sink, std::min(remaining, sizeof(sink)), 0);
    });
    if (got == 0 || (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
      close_conn_by_fd(conn.fd);
      return;
    }
    if (got < 0) return;
    conn.payload_read += static_cast<std::size_t>(got);
    stats_.payload_bytes_discarded.fetch_add(static_cast<std::uint64_t>(got),
                                             std::memory_order_relaxed);
  } else {
    const ssize_t got = obs::retry_eintr([&] {
      return ::recv(conn.fd, conn.payload.data() + conn.payload_read,
                    remaining, 0);
    });
    if (got == 0 || (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
      close_conn_by_fd(conn.fd);
      return;
    }
    if (got < 0) return;
    conn.payload_read += static_cast<std::size_t>(got);
    stats_.payload_bytes_received.fetch_add(static_cast<std::uint64_t>(got),
                                            std::memory_order_relaxed);
  }
  if (conn.payload_read >= conn.frame.payload_bytes) finish_frame(conn);
}

bool IngestServer::admit(Conn& conn) {
  const std::size_t want = conn.frame.payload_bytes;
  // Evict the largest frame still buffering, FlowDemux-style, while the
  // newcomer is smaller than it — shedding the request that already hogs
  // the budget beats shedding the one that fits.
  while (inflight_bytes_ + want > config_.max_inflight_bytes) {
    Conn* largest = nullptr;
    for (const auto& other : conns_) {
      if (other.get() == &conn || !other->charged || other->discarding) {
        continue;
      }
      if (other->state != Conn::State::kReadPayload) continue;
      if (largest == nullptr ||
          other->frame.payload_bytes > largest->frame.payload_bytes) {
        largest = other.get();
      }
    }
    if (largest == nullptr || largest->frame.payload_bytes <= want) break;
    inflight_bytes_ -= largest->frame.payload_bytes;
    largest->charged = false;
    largest->discarding = true;
    largest->verdict = SubmitStatus::kShed;
    largest->verdict_detail = "evicted: in-flight byte budget exhausted";
    Bytes().swap(largest->payload);  // release the buffer now, not at close
    stats_.evicted.fetch_add(1, std::memory_order_relaxed);
    TANGLED_OBS_INC("serve.evicted");
  }
  if (inflight_bytes_ + want > config_.max_inflight_bytes) return false;
  inflight_bytes_ += want;
  conn.charged = true;
  return true;
}

void IngestServer::finish_frame(Conn& conn) {
  if (conn.charged) {
    inflight_bytes_ -= conn.frame.payload_bytes;
    conn.charged = false;
  }
  if (conn.discarding) {
    respond(conn, conn.verdict, std::move(conn.verdict_detail));
    return;
  }
  process_frame(conn);
}

void IngestServer::process_frame(Conn& conn) {
  const ByteView payload(conn.payload.data(), conn.payload.size());
  if (conn.frame.type == MessageType::kRootStoreObservation) {
    process_rootstore(conn, payload);
  } else {
    process_capture(conn, payload);
  }
}

void IngestServer::process_rootstore(Conn& conn, ByteView payload) {
  auto parsed = decode_rootstore_observation(payload);
  if (!parsed.ok()) {
    respond(conn, SubmitStatus::kMalformed, parsed.error().message);
    return;
  }
  const RootStoreObservation& observation = parsed.value();
  std::uint64_t parsed_roots = 0;
  std::uint64_t bad_roots = 0;
  {
    std::lock_guard<std::mutex> lock(tally_mutex_);
    tally_.submissions_by_label[observation.store_label] += 1;
    for (const Bytes& der : observation.roots_der) {
      auto cert = x509::Certificate::from_der(der);
      if (!cert.ok()) {
        ++bad_roots;
        continue;
      }
      tally_.root_counts[cert.value().fingerprint_hex()] += 1;
      ++parsed_roots;
    }
    tally_.roots_reported += parsed_roots;
    tally_.roots_unparseable += bad_roots;
  }
  stats_.rootstore_observations.fetch_add(1, std::memory_order_relaxed);
  TANGLED_OBS_INC("serve.rootstore_observations");
  respond(conn, SubmitStatus::kAccepted,
          "store recorded: " + std::to_string(parsed_roots) + " roots (" +
              std::to_string(bad_roots) + " unparseable)");
}

void IngestServer::process_capture(Conn& conn, ByteView payload) {
  auto parsed = decode_capture_upload(payload);
  if (!parsed.ok()) {
    respond(conn, SubmitStatus::kMalformed, parsed.error().message);
    return;
  }
  const CaptureUpload& upload = parsed.value();
  stats_.capture_uploads.fetch_add(1, std::memory_order_relaxed);
  TANGLED_OBS_INC("serve.capture_uploads");

  const stream::DemuxStats before = ingestor_->demux().stats();
  const stream::FlowId flow = next_flow_++;
  ingestor_->feed(flow, ByteView(upload.capture.data(), upload.capture.size()));
  ingestor_->end_flow(flow);
  const stream::DemuxStats& after = ingestor_->demux().stats();

  if (after.flows_completed > before.flows_completed) {
    respond(conn, SubmitStatus::kAccepted, "chain observed");
    return;
  }
  std::string detail = "no certificate chain in capture";
  if (after.flows_faulted > before.flows_faulted) {
    for (std::size_t kind = 0; kind < after.fault_counts.size(); ++kind) {
      if (after.fault_counts[kind] > before.fault_counts[kind]) {
        detail = std::string(
            stream::to_string(static_cast<stream::FaultKind>(kind)));
        break;
      }
    }
  }
  respond(conn, SubmitStatus::kFlowFaulted, std::move(detail));
}

void IngestServer::respond(Conn& conn, SubmitStatus status,
                           std::string detail) {
  switch (status) {
    case SubmitStatus::kAccepted:
      stats_.accepted.fetch_add(1, std::memory_order_relaxed);
      break;
    case SubmitStatus::kFlowFaulted:
      stats_.flow_faulted.fetch_add(1, std::memory_order_relaxed);
      break;
    case SubmitStatus::kShed:
      stats_.shed.fetch_add(1, std::memory_order_relaxed);
      TANGLED_OBS_INC("serve.shed");
      break;
    case SubmitStatus::kDeadlineExpired:
      stats_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
      TANGLED_OBS_INC("serve.deadline_expired");
      break;
    case SubmitStatus::kMalformed:
      stats_.malformed.fetch_add(1, std::memory_order_relaxed);
      break;
    case SubmitStatus::kDraining:
      stats_.draining_refused.fetch_add(1, std::memory_order_relaxed);
      break;
    case SubmitStatus::kUnsupported:
      stats_.unsupported.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  SubmitResponse response;
  response.status = status;
  response.cursor = cursor();
  response.detail = std::move(detail);
  conn.out = encode_response(response);
  conn.out_written = 0;
  conn.state = Conn::State::kWriteResponse;
  Bytes().swap(conn.payload);
}

void IngestServer::write_ready(Conn& conn) {
  while (conn.out_written < conn.out.size()) {
    const ssize_t sent = obs::retry_eintr([&] {
      return ::send(conn.fd, conn.out.data() + conn.out_written,
                    conn.out.size() - conn.out_written, MSG_NOSIGNAL);
    });
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (sent <= 0) break;  // peer gone: close below
    conn.out_written += static_cast<std::size_t>(sent);
  }
  close_conn_by_fd(conn.fd);
}

void IngestServer::expire_overdue(Clock::time_point now) {
  // Collect first: respond() + close mutates conns_.
  std::vector<int> overdue;
  for (const auto& conn : conns_) {
    if (conn->state != Conn::State::kWriteResponse && now >= conn->deadline) {
      overdue.push_back(conn->fd);
    }
  }
  for (int fd : overdue) {
    auto it = std::find_if(
        conns_.begin(), conns_.end(),
        [fd](const std::unique_ptr<Conn>& c) { return c->fd == fd; });
    if (it == conns_.end()) continue;
    Conn& conn = **it;
    if (conn.charged) {
      inflight_bytes_ -= conn.frame.payload_bytes;
      conn.charged = false;
    }
    respond(conn, SubmitStatus::kDeadlineExpired, "request deadline expired");
    write_ready(conn);        // flush; closes on success or hard error
    close_conn_by_fd(fd);     // EAGAIN leftover: the deadline is up, go
  }
}

void IngestServer::close_conn(std::size_t index) {
  Conn& conn = *conns_[index];
  if (conn.charged) {
    inflight_bytes_ -= conn.frame.payload_bytes;
    conn.charged = false;
  }
  conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(index));
}

void IngestServer::close_conn_by_fd(int fd) {
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i]->fd == fd) {
      close_conn(i);
      return;
    }
  }
}

}  // namespace tangled::serve
