// tangled::serve wire protocol — the Netalyzr-shaped device submission
// framing for the notary-as-a-service ingest server.
//
// A device opens a TCP connection, sends exactly one length-prefixed frame,
// and reads exactly one response frame ("Connection: close" semantics, like
// the telemetry port — connection reuse is a later optimization, shedding
// correctness comes first). Two submission kinds cover the paper's inputs:
//
//   kRootStoreObservation  the device reports its root store: a label
//                          (e.g. "android-4.4/cacerts") and the DER of
//                          every trust anchor it holds (§4.1's population);
//   kCaptureUpload         one TLS connection's captured handshake bytes,
//                          fed through the FlowDemux/StreamIngestor path
//                          into the validation census (§4.2's live traffic).
//
// Frame layout (all integers little-endian):
//   request:  "TGSV" | u8 version | u8 type | u16 reserved=0 | u32 payload
//             length | payload
//   response: "TGSR" | u8 version | u8 status | u16 reserved=0 | u32 body
//             length | u64 cursor | u64-length-prefixed detail string
//
// The u32 payload length is validated against the server's configured cap
// *before* any buffering, so a hostile length can never drive an
// allocation — the same discipline util::BinReader applies inside the
// payload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace tangled::serve {

inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;
inline constexpr char kRequestMagic[4] = {'T', 'G', 'S', 'V'};
inline constexpr char kResponseMagic[4] = {'T', 'G', 'S', 'R'};

enum class MessageType : std::uint8_t {
  kRootStoreObservation = 1,
  kCaptureUpload = 2,
};

/// Per-submission outcome, on the wire as the response status byte.
enum class SubmitStatus : std::uint8_t {
  kAccepted = 0,         // chain observed / store recorded
  kFlowFaulted = 1,      // capture parsed to no chain (fault or empty)
  kShed = 2,             // admission control refused the payload
  kDeadlineExpired = 3,  // the per-request wall clock ran out
  kMalformed = 4,        // bad magic / framing / payload parse
  kDraining = 5,         // server is draining; retry against the successor
  kUnsupported = 6,      // unknown protocol version or message type
};

std::string_view to_string(SubmitStatus status);

/// Parsed request-frame header (the fixed 12 bytes before the payload).
struct FrameHeader {
  std::uint8_t version = 0;
  MessageType type = MessageType::kRootStoreObservation;
  std::uint32_t payload_bytes = 0;
};

/// One device's root-store report.
struct RootStoreObservation {
  std::uint64_t device_id = 0;
  std::string store_label;        // e.g. "android-4.4/cacerts"
  std::vector<Bytes> roots_der;   // the store's anchors, raw DER
};

/// One device's captured TLS connection.
struct CaptureUpload {
  std::uint64_t device_id = 0;
  std::uint16_t port = 443;  // server port the capture was taken from
  Bytes capture;             // raw handshake bytes as the wire carried them
};

/// What the server answered.
struct SubmitResponse {
  SubmitStatus status = SubmitStatus::kMalformed;
  /// Census observations committed at the last batch boundary — a device
  /// (or the resume driver) can read its storm's progress from any response.
  std::uint64_t cursor = 0;
  std::string detail;
};

// --- Encoders (device side) ------------------------------------------------
Bytes encode_rootstore_observation(const RootStoreObservation& observation);
Bytes encode_capture_upload(const CaptureUpload& upload);
Bytes encode_response(const SubmitResponse& response);

// --- Decoders (hardened: attacker-controlled input) ------------------------
/// Parses the fixed request header. kParse on bad magic; the version/type
/// are range-checked by the caller (they select the kUnsupported response,
/// not a parse failure).
Result<FrameHeader> decode_frame_header(ByteView header);

Result<RootStoreObservation> decode_rootstore_observation(ByteView payload);
Result<CaptureUpload> decode_capture_upload(ByteView payload);
/// Parses a full response frame (header + body), as the client reads it.
Result<SubmitResponse> decode_response(ByteView frame);

/// Bounds a root-store observation before any DER parsing: number of roots
/// and per-root size. Deliberately generous — real stores hold ~150 roots
/// of ~1-2 KiB — while keeping one submission from smuggling a megacert.
inline constexpr std::size_t kMaxRootsPerObservation = 1024;
inline constexpr std::size_t kMaxRootDerBytes = 64 * 1024;

}  // namespace tangled::serve
