// serve::IngestServer — the notary-as-a-service front-end: a poll-based
// event loop accepting device submissions (root-store observations + TLS
// capture uploads) and feeding them through the existing
// StreamIngestor/FlowDemux path into a (optionally checkpointing) validation
// census. The ROADMAP's "long-running server in front of the census".
//
// Non-blocking end to end, by construction:
//
//  * every socket is O_NONBLOCK; one thread polls the listener and every
//    connection, so no client can park the loop in a blocking read — the
//    slow-loris class of stall the TelemetryServer fix closes is structural
//    here;
//  * each connection runs a read state machine (header → payload →
//    response) with a per-request wall-clock deadline; expiry answers
//    kDeadlineExpired and closes;
//  * admission control bounds in-flight request bytes across all
//    connections (FlowDemux::max_buffered_bytes-style): a frame that would
//    push the total past the cap either sheds itself or — when it is
//    smaller than the largest frame currently buffering — evicts that
//    largest frame instead, exactly the demux's "largest stalled flow"
//    policy lifted to the socket layer. Shed connections drain their
//    remaining bytes unbuffered and get an honest kShed response;
//  * per submission, pki::ResourceBudget bounds the verification work a
//    hostile chain can demand: start() refuses (kInvalidState) to serve a
//    census whose VerifyOptions carry no budget at all;
//  * graceful drain reuses the checkpoint + SIGTERM path: drain() stops
//    accepting, lets in-flight requests finish inside a grace window,
//    flushes the final census batch at a batch boundary, and writes a
//    checkpoint — a SIGTERM'd storm resumes bit-identical (the
//    serve_drain/kill-matrix tests assert it).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "notary/census.h"
#include "notary/notary.h"
#include "recover/checkpoint.h"
#include "serve/protocol.h"
#include "stream/ingest.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace tangled::serve {

struct ServeConfig {
  /// Interface to bind; loopback by default, like the telemetry port.
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; read the bound port from IngestServer::port().
  std::uint16_t port = 0;
  /// Concurrent connections the loop will hold; beyond it, accepts are
  /// answered kShed immediately.
  std::size_t max_connections = 64;
  /// Largest single request payload admitted at all.
  std::size_t max_payload_bytes = 1u << 20;
  /// Cap on declared payload bytes buffering across every connection — the
  /// admission-control budget (see header comment for the eviction policy).
  std::size_t max_inflight_bytes = 4u << 20;
  /// Wall-clock budget per request, header-to-response.
  int request_deadline_ms = 5000;
  /// Grace window drain() gives in-flight requests before expiring them.
  int drain_deadline_ms = 2000;
  /// Refuse to start when the census's VerifyOptions carry no
  /// pki::ResourceBudget (no step cap, no depth cap, no deadline): an
  /// unbudgeted census lets one hostile cross-sign mesh starve every other
  /// device's submissions.
  bool require_budget = true;
  /// Streaming pipeline knobs (census batch size, demux buffering caps,
  /// fault-record bound). on_batch_committed is overwritten when a
  /// CheckpointingCensus is attached.
  stream::StreamIngestConfig stream;
  /// Called once on the graceful-drain path, after the final batch is
  /// flushed and before the drain checkpoint: the owner quiesces
  /// background store maintenance (store::Maintainer::quiesce) here so
  /// the checkpoint cursor lands on a settled log, with no compaction
  /// pass in flight. Runs on the serve thread; must return (a quiesce
  /// waits out at most one in-flight shard pass, which is bounded).
  std::function<void()> quiesce_maintenance;
};

/// Point-in-time counters, readable from any thread while the storm runs.
struct ServeStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t accepted = 0;           // submissions answering kAccepted
  std::uint64_t flow_faulted = 0;       // captures that yielded no chain
  std::uint64_t shed = 0;               // admission-control refusals
  std::uint64_t evicted = 0;            // sheds of an already-buffering frame
  std::uint64_t deadline_expired = 0;
  std::uint64_t malformed = 0;
  std::uint64_t unsupported = 0;
  std::uint64_t draining_refused = 0;
  std::uint64_t rootstore_observations = 0;
  std::uint64_t capture_uploads = 0;
  std::uint64_t payload_bytes_received = 0;
  std::uint64_t payload_bytes_discarded = 0;  // read unbuffered after a shed
};

/// Aggregate of every root store the devices reported. The paper's §4.1
/// population input: who runs which store, and which anchors exist in the
/// wild.
struct RootStoreTallySnapshot {
  /// store label → submissions carrying that label.
  std::unordered_map<std::string, std::uint64_t> submissions_by_label;
  /// root SHA-256 fingerprint (hex) → observations across all devices.
  std::unordered_map<std::string, std::uint64_t> root_counts;
  std::uint64_t roots_reported = 0;
  std::uint64_t roots_unparseable = 0;
};

/// What a graceful drain() left behind.
struct DrainReport {
  stream::StreamIngestReport stream;
  /// Census observations committed (== the resume cursor written).
  std::uint64_t observations_committed = 0;
  bool checkpointed = false;
  std::string checkpoint_error;  // empty when the write succeeded / skipped
};

class IngestServer {
 public:
  /// `census` may be null (NotaryDb-only ingest; the budget requirement is
  /// then moot). `checkpoint`, when given, wires the stream batch hook so
  /// every census batch boundary is a potential snapshot, and drain()
  /// finishes with an explicit checkpoint.
  IngestServer(notary::NotaryDb& db, notary::ValidationCensus* census,
               util::ThreadPool& pool, ServeConfig config = {},
               recover::CheckpointingCensus* checkpoint = nullptr);
  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;
  ~IngestServer();

  /// Binds, listens, and starts the serve loop. kInvalidState when already
  /// running or when require_budget finds an unbudgeted census.
  Result<void> start();

  /// Hard stop: the loop exits without flushing the partial census batch —
  /// crash semantics, everything past the last checkpoint is lost. The
  /// kill-matrix drain test relies on exactly this to simulate SIGKILL.
  void stop();

  /// Graceful drain: stop accepting, give in-flight requests the grace
  /// window, flush the final batch at a batch boundary, checkpoint (when a
  /// CheckpointingCensus is attached), and stop. Idempotent with stop().
  Result<DrainReport> drain();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const { return port_; }
  ServeStats stats() const;
  RootStoreTallySnapshot rootstore_tally() const;

 private:
  struct Conn;

  void serve_loop();
  void accept_ready();
  void read_ready(Conn& conn);
  bool admit(Conn& conn);
  void finish_frame(Conn& conn);
  void process_frame(Conn& conn);
  void process_rootstore(Conn& conn, ByteView payload);
  void process_capture(Conn& conn, ByteView payload);
  void respond(Conn& conn, SubmitStatus status, std::string detail);
  void write_ready(Conn& conn);
  void expire_overdue(std::chrono::steady_clock::time_point now);
  void close_conn(std::size_t index);
  void close_conn_by_fd(int fd);
  std::uint64_t cursor() const;

  notary::NotaryDb& db_;
  notary::ValidationCensus* census_;
  util::ThreadPool& pool_;
  ServeConfig config_;
  recover::CheckpointingCensus* checkpoint_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> drain_requested_{false};
  std::thread thread_;

  /// Owned by the serve thread between start() and join; the ingest
  /// pipeline is single-threaded by design (the census batch fan-out
  /// happens inside ingest_batch over the shared pool).
  std::unique_ptr<stream::StreamIngestor> ingestor_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::size_t inflight_bytes_ = 0;
  stream::FlowId next_flow_ = 0;

  DrainReport drain_report_;
  bool drained_ = false;

  mutable std::mutex tally_mutex_;
  RootStoreTallySnapshot tally_;

  struct AtomicStats {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> flow_faulted{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> evicted{0};
    std::atomic<std::uint64_t> deadline_expired{0};
    std::atomic<std::uint64_t> malformed{0};
    std::atomic<std::uint64_t> unsupported{0};
    std::atomic<std::uint64_t> draining_refused{0};
    std::atomic<std::uint64_t> rootstore_observations{0};
    std::atomic<std::uint64_t> capture_uploads{0};
    std::atomic<std::uint64_t> payload_bytes_received{0};
    std::atomic<std::uint64_t> payload_bytes_discarded{0};
  };
  AtomicStats stats_;
};

}  // namespace tangled::serve
