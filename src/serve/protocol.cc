#include "serve/protocol.h"

#include <cstring>

#include "util/binio.h"

namespace tangled::serve {

namespace {

void put_frame_header(Bytes& out, const char magic[4], std::uint8_t type_or_status,
                      std::uint32_t payload_bytes) {
  for (std::size_t i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(magic[i]));
  }
  util::put_u8(out, kProtocolVersion);
  util::put_u8(out, type_or_status);
  util::put_u16(out, 0);  // reserved
  util::put_u32(out, payload_bytes);
}

Bytes frame(const char magic[4], std::uint8_t type_or_status,
            const Bytes& payload) {
  Bytes out;
  out.reserve(kFrameHeaderBytes + payload.size());
  put_frame_header(out, magic, type_or_status,
                   static_cast<std::uint32_t>(payload.size()));
  append(out, payload);
  return out;
}

}  // namespace

std::string_view to_string(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted: return "accepted";
    case SubmitStatus::kFlowFaulted: return "flow-faulted";
    case SubmitStatus::kShed: return "shed";
    case SubmitStatus::kDeadlineExpired: return "deadline-expired";
    case SubmitStatus::kMalformed: return "malformed";
    case SubmitStatus::kDraining: return "draining";
    case SubmitStatus::kUnsupported: return "unsupported";
  }
  return "unknown";
}

Bytes encode_rootstore_observation(const RootStoreObservation& observation) {
  Bytes payload;
  util::put_u64(payload, observation.device_id);
  util::put_string(payload, observation.store_label);
  util::put_u64(payload, observation.roots_der.size());
  for (const Bytes& der : observation.roots_der) util::put_bytes(payload, der);
  return frame(kRequestMagic,
               static_cast<std::uint8_t>(MessageType::kRootStoreObservation),
               payload);
}

Bytes encode_capture_upload(const CaptureUpload& upload) {
  Bytes payload;
  util::put_u64(payload, upload.device_id);
  util::put_u16(payload, upload.port);
  util::put_bytes(payload, upload.capture);
  return frame(kRequestMagic,
               static_cast<std::uint8_t>(MessageType::kCaptureUpload), payload);
}

Bytes encode_response(const SubmitResponse& response) {
  Bytes body;
  util::put_u64(body, response.cursor);
  util::put_string(body, response.detail);
  return frame(kResponseMagic, static_cast<std::uint8_t>(response.status),
               body);
}

Result<FrameHeader> decode_frame_header(ByteView header) {
  if (header.size() < kFrameHeaderBytes) {
    return parse_error("serve frame: short header");
  }
  if (std::memcmp(header.data(), kRequestMagic, 4) != 0) {
    return parse_error("serve frame: bad magic");
  }
  FrameHeader out;
  out.version = header[4];
  out.type = static_cast<MessageType>(header[5]);
  // header[6..7] reserved, ignored for forward compatibility.
  out.payload_bytes = static_cast<std::uint32_t>(header[8]) |
                      static_cast<std::uint32_t>(header[9]) << 8 |
                      static_cast<std::uint32_t>(header[10]) << 16 |
                      static_cast<std::uint32_t>(header[11]) << 24;
  return out;
}

Result<RootStoreObservation> decode_rootstore_observation(ByteView payload) {
  util::BinReader reader(payload);
  RootStoreObservation out;
  auto device = reader.u64();
  if (!device.ok()) return device.error();
  out.device_id = device.value();
  auto label = reader.string();
  if (!label.ok()) return label.error();
  out.store_label = std::move(label).value();
  auto count = reader.count(/*min_bytes_per_element=*/8);
  if (!count.ok()) return count.error();
  if (count.value() > kMaxRootsPerObservation) {
    return parse_error("rootstore observation: too many roots (" +
                       std::to_string(count.value()) + ")");
  }
  out.roots_der.reserve(count.value());
  for (std::size_t i = 0; i < count.value(); ++i) {
    auto der = reader.bytes();
    if (!der.ok()) return der.error();
    if (der.value().size() > kMaxRootDerBytes) {
      return parse_error("rootstore observation: oversized root DER");
    }
    out.roots_der.emplace_back(der.value().begin(), der.value().end());
  }
  if (!reader.at_end()) {
    return parse_error("rootstore observation: trailing bytes");
  }
  return out;
}

Result<CaptureUpload> decode_capture_upload(ByteView payload) {
  util::BinReader reader(payload);
  CaptureUpload out;
  auto device = reader.u64();
  if (!device.ok()) return device.error();
  out.device_id = device.value();
  auto port = reader.u16();
  if (!port.ok()) return port.error();
  out.port = port.value();
  auto capture = reader.bytes();
  if (!capture.ok()) return capture.error();
  out.capture.assign(capture.value().begin(), capture.value().end());
  if (!reader.at_end()) return parse_error("capture upload: trailing bytes");
  return out;
}

Result<SubmitResponse> decode_response(ByteView frame_bytes) {
  if (frame_bytes.size() < kFrameHeaderBytes) {
    return parse_error("serve response: short frame");
  }
  if (std::memcmp(frame_bytes.data(), kResponseMagic, 4) != 0) {
    return parse_error("serve response: bad magic");
  }
  if (frame_bytes[4] != kProtocolVersion) {
    return Error{Errc::kUnsupported,
                 "serve response: version " + std::to_string(frame_bytes[4])};
  }
  const std::uint8_t status = frame_bytes[5];
  if (status > static_cast<std::uint8_t>(SubmitStatus::kUnsupported)) {
    return parse_error("serve response: unknown status byte");
  }
  const std::uint32_t body_len = static_cast<std::uint32_t>(frame_bytes[8]) |
                                 static_cast<std::uint32_t>(frame_bytes[9]) << 8 |
                                 static_cast<std::uint32_t>(frame_bytes[10]) << 16 |
                                 static_cast<std::uint32_t>(frame_bytes[11]) << 24;
  if (frame_bytes.size() - kFrameHeaderBytes < body_len) {
    return parse_error("serve response: truncated body");
  }
  util::BinReader reader(frame_bytes.subspan(kFrameHeaderBytes, body_len));
  SubmitResponse out;
  out.status = static_cast<SubmitStatus>(status);
  auto cursor = reader.u64();
  if (!cursor.ok()) return cursor.error();
  out.cursor = cursor.value();
  auto detail = reader.string();
  if (!detail.ok()) return detail.error();
  out.detail = std::move(detail).value();
  return out;
}

}  // namespace tangled::serve
