// Blocking device-side client for the serve wire protocol: open a
// connection, send one frame, read the one response. The bench's device
// simulator and the tests speak through this — and so would a real
// measurement app's uploader.
#pragma once

#include <cstdint>
#include <string>

#include "serve/protocol.h"
#include "util/result.h"

namespace tangled::serve {

struct ClientConfig {
  /// Wall-clock cap on the whole round trip (connect + send + response).
  int timeout_ms = 5000;
};

/// Sends one already-encoded request frame and decodes the response frame.
/// kInvalidState on connect/socket trouble, kParse on a garbled response,
/// kUnsupported on a response from a different protocol version.
Result<SubmitResponse> submit_frame(const std::string& host,
                                    std::uint16_t port, const Bytes& frame,
                                    ClientConfig config = {});

Result<SubmitResponse> submit_rootstore(const std::string& host,
                                        std::uint16_t port,
                                        const RootStoreObservation& observation,
                                        ClientConfig config = {});

Result<SubmitResponse> submit_capture(const std::string& host,
                                      std::uint16_t port,
                                      const CaptureUpload& upload,
                                      ClientConfig config = {});

}  // namespace tangled::serve
