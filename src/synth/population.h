// Synthetic Netalyzr-for-Android population, calibrated to §4.1 and Table 2:
// 15,970 sessions across ≥3,835 handsets and 435 device models, with the
// published manufacturer/model session shares, a 24% rooted-handset rate
// (§6), ~39% of sessions showing extended root stores (§5), exactly 5
// missing-cert handsets (Figure 1), and the Table 5 rooted-only certificate
// injections.
//
// Each handset's root store is assembled once (device::DeviceStoreAssembler)
// and summarized; sessions reference handsets so repeat measurements of one
// device report one store, as in the real dataset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "device/assembler.h"
#include "device/device.h"
#include "rootstore/catalog.h"
#include "util/rng.h"

namespace tangled::synth {

struct PopulationConfig {
  std::uint64_t seed = 1402;
  std::size_t n_sessions = 15970;   // §4.1
  std::size_t n_handsets = 3835;    // §4.1 lower-bound estimate
  std::size_t n_models = 435;       // §4.1
  double rooted_handset_rate = 0.24;          // §6: 24% of sessions rooted
  std::size_t missing_cert_handsets = 5;      // Figure 1
  std::size_t crazy_house_handsets = 70;      // Table 5
  double user_cert_handset_rate = 0.015;      // §5.2 singleton VPN certs

  /// Probability that a non-stock handset of each manufacturer runs
  /// vendor-customized firmware (drives the 39% extended-store rate).
  double vendor_custom_samsung = 0.47;
  double vendor_custom_htc = 0.90;
  double vendor_custom_motorola = 0.85;
  double vendor_custom_sony = 0.50;

  /// Probability that a handset on a Figure 2 operator runs
  /// operator-subsidized firmware.
  double operator_custom_rate = 0.25;

  /// Sony 4.1 devices carrying a newer-AOSP root (§5).
  double sony41_future_cert_rate = 0.5;

  /// §7: handsets whose traffic flows through a Reality-Mine-style HTTPS
  /// proxy. The paper found exactly one — "a Nexus 7 device on Android
  /// 4.4, communicating with an HTTPS-proxied WiFi access point".
  std::size_t proxied_handsets = 1;
};

/// A handset plus the summary of its assembled root store.
struct HandsetRecord {
  device::Device device;
  device::AssemblyFlags flags;
  /// RNG seed the store was assembled with; materialize_store() replays it.
  std::uint64_t assembly_seed = 0;

  // Store summary (computed from a real RootStore assembly, then the store
  // itself is dropped to keep the population compact).
  std::size_t aosp_present = 0;   // AOSP-baseline certs present
  std::size_t missing_aosp = 0;
  std::size_t future_aosp = 0;    // newer-AOSP roots (count as additions)
  std::vector<std::size_t> nonaosp_indices;      // nonaosp_catalog() indices
  std::vector<std::size_t> rooted_cert_indices;  // rooted_cert_catalog() idx
  std::size_t user_added = 0;

  /// Netalyzr device-identity tuple ingredients (§4.1).
  std::uint64_t home_network_id = 0;
  std::uint64_t public_ip_id = 0;

  /// §7: this handset's WiFi AP tunnels traffic through a TLS-intercepting
  /// proxy (discoverable only by probing, as in the paper).
  bool behind_proxy = false;

  std::size_t additions() const {
    return nonaosp_indices.size() + rooted_cert_indices.size() + user_added +
           future_aosp;
  }
  bool extended() const { return additions() > 0; }
};

/// One Netalyzr execution.
struct SessionRecord {
  std::uint32_t handset_index = 0;
  std::uint64_t network_id = 0;  // network observed during this session
  std::uint64_t public_ip_id = 0;
  /// Operator providing network access during this session; differs from
  /// the handset's subscription when the user roams (§5.2's Telefonica-
  /// certs-on-Claro-networks observation).
  device::Operator network_operator = device::Operator::kWifiOnly;
  bool roaming = false;
};

struct Population {
  std::vector<HandsetRecord> handsets;
  std::vector<SessionRecord> sessions;

  const HandsetRecord& handset_of(const SessionRecord& s) const {
    return handsets[s.handset_index];
  }
};

class PopulationGenerator {
 public:
  PopulationGenerator(const rootstore::StoreUniverse& universe,
                      PopulationConfig config = {})
      : universe_(universe), config_(config) {}

  Population generate() const;

  const PopulationConfig& config() const { return config_; }

 private:
  const rootstore::StoreUniverse& universe_;
  PopulationConfig config_;
};

/// Re-assembles the full RootStore for one handset (deterministic: the same
/// flags and per-handset seed the generator used). For examples and probes
/// that need actual certificates rather than summaries.
device::AssembledStore materialize_store(const rootstore::StoreUniverse& universe,
                                         const HandsetRecord& handset);

}  // namespace tangled::synth
