#include "synth/notary_corpus.h"

#include <cassert>
#include <cmath>

#include "crypto/signature.h"
#include "obs/obs.h"

namespace tangled::synth {

namespace {

using crypto::sim_sig_scheme;
using rootstore::NotaryClass;

constexpr std::size_t kSharedEnd = 130;    // AOSP ∩ Mozilla (identical+equiv)
constexpr std::size_t kAosp41End = 139;
constexpr std::size_t kAosp42End = 140;
constexpr std::size_t kAosp43End = 146;
constexpr std::size_t kAosp44End = 150;

/// Marks `n_dead` entries of flags[lo, hi) dead (false), chosen uniformly.
void kill_range(std::vector<bool>& alive, Xoshiro256& rng, std::size_t lo,
                std::size_t hi, std::size_t n_dead) {
  assert(hi >= lo && n_dead <= hi - lo);
  const auto picks = sample_without_replacement(rng, hi - lo, n_dead);
  for (const std::size_t p : picks) alive[lo + p] = false;
}

pki::CaNode make_intermediate_for(Xoshiro256& rng, const pki::CaNode& root) {
  auto key = crypto::generate_sim_keypair(rng);
  x509::Name subject;
  subject.add_organization(root.cert.subject().organization())
      .add_common_name(root.cert.subject().common_name() + " Intermediate");
  auto node = pki::make_intermediate(
      sim_sig_scheme(), root, std::move(key), subject,
      {asn1::make_time(2008, 1, 1), asn1::make_time(2026, 1, 1)},
      fnv1a64(root.cert.identity_key()) & 0xffffff);
  assert(node.ok());
  return std::move(node).value();
}

}  // namespace

NotaryCorpusGenerator::NotaryCorpusGenerator(
    const rootstore::StoreUniverse& universe, NotaryCorpusConfig config)
    : universe_(universe), config_(config), rng_(config.seed) {
  assign_alive();
  build_slots();
}

void NotaryCorpusGenerator::assign_alive() {
  const auto catalog = rootstore::nonaosp_catalog();

  // --- AOSP roots: exact dead counts per structural group (see header). ---
  alive_aosp_.assign(universe_.aosp_cas().size(), true);
  // [0..130): 20 dead — the expired Firmaprofesional root plus 17 more in
  // the Mozilla-identical prefix and 2 in the equivalent band.
  alive_aosp_[universe_.expired_aosp_index()] = false;
  kill_range(alive_aosp_, rng_, 1, 117, 17);
  kill_range(alive_aosp_, rng_, 117, kSharedEnd, 2);
  // [130..139): 7 of 9 dead; the 4.2 addition (139) dead (Table 3 shows
  // AOSP 4.2 validating exactly as many certs as 4.1).
  kill_range(alive_aosp_, rng_, kSharedEnd, kAosp41End, 7);
  alive_aosp_[kAosp41End] = false;
  // [140..146): 4 of 6 dead; [146..150): 3 of 4 dead.
  kill_range(alive_aosp_, rng_, kAosp42End, kAosp43End, 4);
  kill_range(alive_aosp_, rng_, kAosp43End, kAosp44End, 3);

  // --- Fillers ------------------------------------------------------------
  alive_moz_filler_.assign(universe_.mozilla_only_cas().size(), false);  // all dead
  alive_ios7_filler_.assign(universe_.ios7_only_cas().size(), true);
  kill_range(alive_ios7_filler_, rng_, 0, alive_ios7_filler_.size(),
             alive_ios7_filler_.size() - 13);  // 13 alive

  // --- Catalog roots: exact dead counts per Figure 2 class. ---------------
  alive_catalog_.assign(catalog.size(), true);
  std::vector<std::size_t> both, ios7only, androidonly, notrec_moz,
      notrec_nonmoz;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].census_excluded) {
      alive_catalog_[i] = false;  // §5.2 singletons: no Notary traffic
      continue;
    }
    switch (catalog[i].notary_class) {
      case NotaryClass::kMozillaAndIos7: both.push_back(i); break;
      case NotaryClass::kIos7Only: ios7only.push_back(i); break;
      case NotaryClass::kAndroidOnly: androidonly.push_back(i); break;
      case NotaryClass::kNotRecorded:
        (catalog[i].in_mozilla ? notrec_moz : notrec_nonmoz).push_back(i);
        break;
    }
  }
  auto kill_subset = [this](const std::vector<std::size_t>& idx,
                            std::size_t n_dead) {
    const auto picks = sample_without_replacement(rng_, idx.size(), n_dead);
    for (const std::size_t p : picks) alive_catalog_[idx[p]] = false;
  };
  kill_subset(both, 2);            // 7 -> 5 alive
  kill_subset(ios7only, 10);       // 16 -> 6 alive
  kill_subset(androidonly, 19);    // 37 -> 18 alive
  kill_subset(notrec_moz, 4);      // 9 -> 5 alive
  for (const std::size_t i : notrec_nonmoz) alive_catalog_[i] = false;
}

std::size_t NotaryCorpusGenerator::dead_aosp_count() const {
  std::size_t dead = 0;
  for (const bool alive : alive_aosp_) dead += alive ? 0 : 1;
  return dead;
}

void NotaryCorpusGenerator::build_slots() {
  const auto catalog = rootstore::nonaosp_catalog();

  // Zipf weights within a group of alive roots summing to `mass`.
  auto add_group = [this](const std::vector<const pki::CaNode*>& roots,
                          double mass, bool present_root, IssuerGroup group) {
    if (roots.empty() || mass <= 0.0) return;
    std::vector<double> weights(roots.size());
    double sum = 0.0;
    for (std::size_t r = 0; r < roots.size(); ++r) {
      weights[r] = std::pow(static_cast<double>(r + 1), -config_.zipf_s);
      sum += weights[r];
    }
    for (std::size_t r = 0; r < roots.size(); ++r) {
      IssuerSlot slot{roots[r], make_intermediate_for(rng_, *roots[r]),
                      mass * weights[r] / sum, 0.0, present_root, group};
      slots_.push_back(std::move(slot));
    }
  };

  auto collect_aosp = [this](std::size_t lo, std::size_t hi) {
    std::vector<const pki::CaNode*> out;
    for (std::size_t i = lo; i < hi; ++i) {
      if (alive_aosp_[i]) out.push_back(&universe_.aosp_cas()[i]);
    }
    return out;
  };

  add_group(collect_aosp(0, kSharedEnd), config_.mass_shared, true,
            IssuerGroup::kAospShared);
  add_group(collect_aosp(kSharedEnd, kAosp41End), config_.mass_aosp_only_41,
            true, IssuerGroup::kAospOnly);
  add_group(collect_aosp(kAosp42End, kAosp43End), config_.mass_aosp_added_43,
            true, IssuerGroup::kAospOnly);
  add_group(collect_aosp(kAosp43End, kAosp44End), config_.mass_aosp_added_44,
            true, IssuerGroup::kAospOnly);

  auto collect_catalog = [this, catalog](auto&& predicate) {
    std::vector<const pki::CaNode*> out;
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      if (alive_catalog_[i] && predicate(catalog[i])) {
        out.push_back(&universe_.nonaosp_cas()[i]);
      }
    }
    return out;
  };
  using Spec = rootstore::NonAospCertSpec;
  add_group(collect_catalog([](const Spec& s) {
              return s.notary_class == NotaryClass::kMozillaAndIos7;
            }),
            config_.mass_catalog_both, true, IssuerGroup::kCatalog);
  add_group(collect_catalog([](const Spec& s) {
              return s.notary_class == NotaryClass::kNotRecorded && s.in_mozilla;
            }),
            config_.mass_catalog_notrec_moz, /*present_root=*/false,
            IssuerGroup::kCatalog);
  add_group(collect_catalog([](const Spec& s) {
              return s.notary_class == NotaryClass::kIos7Only;
            }),
            config_.mass_catalog_ios7only, true, IssuerGroup::kCatalog);
  add_group(collect_catalog([](const Spec& s) {
              return s.notary_class == NotaryClass::kAndroidOnly;
            }),
            config_.mass_catalog_androidonly, true, IssuerGroup::kCatalog);

  {
    std::vector<const pki::CaNode*> ios7_fillers;
    for (std::size_t i = 0; i < universe_.ios7_only_cas().size(); ++i) {
      if (alive_ios7_filler_[i]) {
        ios7_fillers.push_back(&universe_.ios7_only_cas()[i]);
      }
    }
    add_group(ios7_fillers, config_.mass_ios7_filler, true,
              IssuerGroup::kIos7Filler);
  }

  // Unknown/private CAs soak up the remaining unexpired mass.
  double assigned = 0.0;
  for (const auto& slot : slots_) assigned += slot.weight_unexpired;
  const double unknown_mass = std::max(0.0, 1.0 - assigned);
  unknown_roots_.reserve(config_.unknown_ca_count);
  for (std::size_t i = 0; i < config_.unknown_ca_count; ++i) {
    auto key = crypto::generate_sim_keypair(rng_);
    x509::Name name;
    name.add_organization("Private CA " + std::to_string(i))
        .add_common_name("Private Enterprise Root " + std::to_string(i));
    auto node = pki::make_root(sim_sig_scheme(), std::move(key), name,
                               {asn1::make_time(2009, 1, 1),
                                asn1::make_time(2029, 1, 1)},
                               90000 + i);
    assert(node.ok());
    unknown_roots_.push_back(std::move(node).value());
  }
  {
    std::vector<const pki::CaNode*> unknowns;
    for (const auto& node : unknown_roots_) unknowns.push_back(&node);
    add_group(unknowns, unknown_mass, /*present_root=*/false,
              IssuerGroup::kUnknown);
  }

  // Expired-leaf mass: mostly old certs under big public CAs and private
  // CAs, plus a trickle under recorded-but-dead catalog roots so those
  // roots are "recorded by the Notary" without validating anything current.
  std::vector<const pki::CaNode*> recorded_dead;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (!alive_catalog_[i] && !catalog[i].census_excluded &&
        catalog[i].notary_class != NotaryClass::kNotRecorded) {
      recorded_dead.push_back(&universe_.nonaosp_cas()[i]);
    }
  }
  for (auto& slot : slots_) {
    switch (slot.group) {
      case IssuerGroup::kAospShared: slot.weight_expired = slot.weight_unexpired * 0.8; break;
      case IssuerGroup::kUnknown: slot.weight_expired = slot.weight_unexpired * 1.0; break;
      default: slot.weight_expired = slot.weight_unexpired * 0.2; break;
    }
  }
  for (const pki::CaNode* root : recorded_dead) {
    IssuerSlot slot{root, make_intermediate_for(rng_, *root), 0.0,
                    0.002,  // small, equal trickle of expired-only traffic
                    /*present_root=*/true, IssuerGroup::kCatalog};
    slots_.push_back(std::move(slot));
  }
}

void NotaryCorpusGenerator::generate(
    const std::function<void(const notary::Observation&)>& sink) {
  generate(sink, nullptr);
}

void NotaryCorpusGenerator::generate(
    const std::function<void(const notary::Observation&)>& sink,
    util::ThreadPool* pool) {
  std::vector<double> w_unexpired;
  std::vector<double> w_expired;
  for (const auto& slot : slots_) {
    w_unexpired.push_back(slot.weight_unexpired);
    w_expired.push_back(slot.weight_expired);
  }
  WeightedSampler unexpired_sampler(w_unexpired);
  WeightedSampler expired_sampler(w_expired);

  const x509::Validity current{asn1::make_time(2013, 6, 1),
                               asn1::make_time(2015, 6, 1)};
  const x509::Validity stale{asn1::make_time(2011, 6, 1),
                             asn1::make_time(2013, 6, 1)};

  constexpr std::uint16_t kPorts[] = {443, 993, 465, 995, 8883, 8443};
  constexpr double kPortWeights[] = {0.85, 0.05, 0.03, 0.03, 0.02, 0.02};
  WeightedSampler port_sampler(kPortWeights);

  const bool parallel = pool != nullptr && pool->size() > 1;
  // Leaf construction dominates generation cost but needs no RNG, so it
  // parallelizes. Everything random is decided here, in a strictly serial
  // planning step whose draw order matches the historical serial loop:
  // [expired? slot?] for sampled emissions, then keypair, then port.
  struct LeafPlan {
    const IssuerSlot* slot;
    bool expired;
    crypto::KeyPair key;
    std::uint64_t serial;
    std::size_t host;
    std::uint16_t port;
  };
  std::uint64_t serial = 1;
  std::size_t host = 0;
  auto plan_one = [&](const IssuerSlot& slot, bool expired) {
    LeafPlan plan{&slot, expired, crypto::generate_sim_keypair(rng_),
                  serial++, host++, 0};
    plan.port = kPorts[port_sampler.sample(rng_)];
    return plan;
  };

  auto build_obs = [&](LeafPlan& plan) {
    auto leaf = pki::make_leaf(
        sim_sig_scheme(), plan.slot->intermediate, std::move(plan.key),
        "host" + std::to_string(plan.host) + ".example.com",
        plan.expired ? stale : current, plan.serial);
    assert(leaf.ok());
    notary::Observation obs;
    obs.chain.push_back(std::move(leaf).value());
    obs.chain.push_back(plan.slot->intermediate.cert);
    if (plan.slot->present_root && plan.slot->root != nullptr) {
      obs.chain.push_back(plan.slot->root->cert);
    }
    obs.port = plan.port;
    return obs;
  };

  // Build a batch of planned leaves (parallel when possible) and hand the
  // observations to `sink` in plan order.
  std::vector<LeafPlan> plans;
  const std::size_t batch_size = parallel ? 512 : 1;
  auto flush = [&] {
    std::vector<notary::Observation> batch(plans.size());
    if (parallel && plans.size() > 1) {
      util::parallel_for(*pool, plans.size(),
                         [&](std::size_t i) { batch[i] = build_obs(plans[i]); });
    } else {
      for (std::size_t i = 0; i < plans.size(); ++i) {
        batch[i] = build_obs(plans[i]);
      }
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      TANGLED_OBS_INC("synth.corpus.chains_emitted");
      TANGLED_OBS_ADD("synth.corpus.chain_certs", batch[i].chain.size());
      if (plans[i].expired) {
        TANGLED_OBS_INC("synth.corpus.expired_leaves");
      } else {
        TANGLED_OBS_INC("synth.corpus.unexpired_leaves");
      }
      sink(batch[i]);
    }
    plans.clear();
  };
  auto emit = [&](const IssuerSlot& slot, bool expired) {
    plans.push_back(plan_one(slot, expired));
    if (plans.size() >= batch_size) flush();
  };

  // Deterministic floor so scale does not distort Table 4: every alive root
  // validates at least one unexpired leaf (it is alive at any corpus size),
  // and every recorded-class catalog root appears on the wire at least once
  // (via an expired chain, which the census ignores).
  std::size_t floored = 0;
  for (const IssuerSlot& slot : slots_) {
    if (slot.weight_unexpired > 0.0) {
      emit(slot, /*expired=*/false);
      ++floored;
    }
    if (slot.group == IssuerGroup::kCatalog && slot.present_root) {
      emit(slot, /*expired=*/true);
      ++floored;
    }
  }

  const std::size_t remaining =
      config_.n_certs > floored ? config_.n_certs - floored : 0;
  for (std::size_t i = 0; i < remaining; ++i) {
    const bool expired = rng_.chance(config_.expired_fraction);
    const IssuerSlot& slot =
        slots_[expired ? expired_sampler.sample(rng_)
                       : unexpired_sampler.sample(rng_)];
    emit(slot, expired);
  }
  flush();
}

}  // namespace tangled::synth
