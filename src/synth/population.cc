#include "synth/population.h"

#include <algorithm>
#include <cassert>

#include "obs/obs.h"

namespace tangled::synth {

namespace {

using device::Device;
using device::Manufacturer;
using device::Operator;
using rootstore::AndroidVersion;

/// Session-share targets from Table 2 (fractions of 15,970 sessions).
struct ModelSpec {
  std::string_view name;
  Manufacturer manufacturer;
  bool stock;  // Nexus-class: ships the plain AOSP store
  double share;
};

constexpr ModelSpec kNamedModels[] = {
    {"Samsung Galaxy SIV", Manufacturer::kSamsung, false, 0.1729},
    {"Samsung Galaxy SIII", Manufacturer::kSamsung, false, 0.1320},
    {"LG Nexus 4", Manufacturer::kLg, true, 0.0833},
    {"LG Nexus 5", Manufacturer::kLg, true, 0.0632},
    {"Asus Nexus 7", Manufacturer::kAsus, true, 0.0521},
};

/// Residual manufacturer shares once the named models are taken out,
/// normalized so Table 2's per-manufacturer totals hold.
struct ManufacturerShare {
  Manufacturer manufacturer;
  double share;
};

constexpr ManufacturerShare kResidualShares[] = {
    {Manufacturer::kSamsung, 0.1778},  // 0.4827 total
    {Manufacturer::kLg, 0.0356},       // 0.1821 total
    {Manufacturer::kAsus, 0.0654},     // 0.1175 total
    {Manufacturer::kHtc, 0.0603},
    {Manufacturer::kMotorola, 0.0524},
    {Manufacturer::kSony, 0.0400},
    {Manufacturer::kHuawei, 0.0200},
    {Manufacturer::kLenovo, 0.0100},
    {Manufacturer::kPantech, 0.0050},
    {Manufacturer::kCompal, 0.0030},
    {Manufacturer::kOther, 0.0271},
};

struct OperatorShare {
  Operator op;
  double share;
};

constexpr OperatorShare kOperatorShares[] = {
    {Operator::kVerizonUs, 0.09}, {Operator::kAttUs, 0.08},
    {Operator::kTmobileUs, 0.05}, {Operator::kSprintUs, 0.04},
    {Operator::kVodafoneDe, 0.05}, {Operator::kOrangeFr, 0.04},
    {Operator::kSfrFr, 0.03}, {Operator::kBouyguesFr, 0.02},
    {Operator::kFreeFr, 0.02}, {Operator::kEeUk, 0.03},
    {Operator::kThreeUk, 0.02}, {Operator::kTelstraAu, 0.02},
    {Operator::kMovistarAr, 0.01}, {Operator::kClaroCo, 0.01},
    {Operator::kMeditelMa, 0.005}, {Operator::kOtherOperator, 0.315},
    {Operator::kWifiOnly, 0.20},
};

/// Late-2013 Android version mix.
constexpr double kVersionShares[] = {0.30, 0.25, 0.20, 0.25};  // 4.1..4.4

double vendor_custom_rate(const PopulationConfig& cfg, Manufacturer m) {
  switch (m) {
    case Manufacturer::kSamsung: return cfg.vendor_custom_samsung;
    case Manufacturer::kHtc: return cfg.vendor_custom_htc;
    case Manufacturer::kMotorola: return cfg.vendor_custom_motorola;
    case Manufacturer::kSony: return cfg.vendor_custom_sony;
    default: return 0.0;  // no Figure 2 vendor row
  }
}

}  // namespace

device::AssembledStore materialize_store(
    const rootstore::StoreUniverse& universe, const HandsetRecord& handset) {
  device::DeviceStoreAssembler assembler(universe);
  Xoshiro256 rng(handset.assembly_seed);
  return assembler.assemble(handset.device, handset.flags, rng);
}

Population PopulationGenerator::generate() const {
  TANGLED_OBS_SCOPED_TIMER("synth.population.generate_us");
  Population pop;
  Xoshiro256 rng(config_.seed);
  device::DeviceStoreAssembler assembler(universe_);

  // --- Model table ------------------------------------------------------
  struct Model {
    std::string name;
    Manufacturer manufacturer;
    bool stock;
    double weight;
  };
  std::vector<Model> models;
  models.reserve(config_.n_models);
  for (const ModelSpec& spec : kNamedModels) {
    models.push_back({std::string(spec.name), spec.manufacturer, spec.stock,
                      spec.share});
  }
  // Synthetic tail models: each manufacturer gets a model count
  // proportional to its residual session share, with Zipf weights inside
  // the manufacturer normalized to exactly that share — so the Table 2
  // per-manufacturer totals hold by construction.
  const std::size_t n_tail = config_.n_models - std::size(kNamedModels);
  double residual_total = 0.0;
  for (const auto& ms : kResidualShares) residual_total += ms.share;
  std::size_t allocated = 0;
  for (std::size_t m = 0; m < std::size(kResidualShares); ++m) {
    const auto& ms = kResidualShares[m];
    std::size_t n_m = m + 1 == std::size(kResidualShares)
                          ? n_tail - allocated
                          : std::max<std::size_t>(
                                1, static_cast<std::size_t>(
                                       static_cast<double>(n_tail) * ms.share /
                                       residual_total));
    n_m = std::min(n_m, n_tail - allocated);
    allocated += n_m;
    double zipf_sum = 0.0;
    for (std::size_t j = 0; j < n_m; ++j) zipf_sum += 1.0 / (j + 1.0);
    for (std::size_t j = 0; j < n_m; ++j) {
      models.push_back({std::string(to_string(ms.manufacturer)) + " Model " +
                            std::to_string(j + 1),
                        ms.manufacturer, false,
                        ms.share * (1.0 / (j + 1.0)) / zipf_sum});
    }
  }

  // The coverage pass below hands every model one handset up front; the
  // weighted pass must target share*n_handsets - 1 so the final handset
  // counts still match the Table 2 session shares.
  std::vector<double> model_weights;
  model_weights.reserve(models.size());
  for (const auto& m : models) {
    const double target = m.weight * static_cast<double>(config_.n_handsets);
    model_weights.push_back(std::max(target - 1.0, 0.02));
  }
  WeightedSampler model_sampler(model_weights);

  std::vector<double> operator_weights;
  for (const auto& os : kOperatorShares) operator_weights.push_back(os.share);
  WeightedSampler operator_sampler(operator_weights);

  WeightedSampler version_sampler(kVersionShares);

  // Operator mix is manufacturer-correlated for Motorola and Pantech —
  // both sold (almost) exclusively through US carriers in this period,
  // which is what makes the §5.1 Verizon/AT&T attributions detectable.
  constexpr OperatorShare kUsCarrierShares[] = {
      {Operator::kVerizonUs, 0.50},
      {Operator::kAttUs, 0.25},
      {Operator::kSprintUs, 0.12},
      {Operator::kTmobileUs, 0.13},
  };
  std::vector<double> us_carrier_weights;
  for (const auto& os : kUsCarrierShares) us_carrier_weights.push_back(os.share);
  WeightedSampler us_carrier_sampler(us_carrier_weights);

  // --- Handsets ---------------------------------------------------------
  pop.handsets.reserve(config_.n_handsets);
  for (std::size_t h = 0; h < config_.n_handsets; ++h) {
    // The first pass walks every model once so all configured models are
    // observed (the paper saw 435 distinct models); later handsets follow
    // the session-share weights.
    const Model& model = h < models.size()
                             ? models[h]
                             : models[model_sampler.sample(rng)];
    HandsetRecord rec;
    rec.device.handset_id = static_cast<std::uint32_t>(h);
    rec.device.model = model.name;
    rec.device.manufacturer = model.manufacturer;
    rec.device.op =
        (model.manufacturer == Manufacturer::kMotorola ||
         model.manufacturer == Manufacturer::kPantech)
            ? kUsCarrierShares[us_carrier_sampler.sample(rng)].op
            : kOperatorShares[operator_sampler.sample(rng)].op;
    rec.device.version =
        static_cast<AndroidVersion>(version_sampler.sample(rng));
    rec.device.rooted = rng.chance(config_.rooted_handset_rate);

    rec.flags.vendor_pack =
        !model.stock &&
        rng.chance(vendor_custom_rate(config_, model.manufacturer));
    rec.flags.operator_pack =
        !model.stock &&
        device::operator_row(rec.device.op).has_value() &&
        rng.chance(config_.operator_custom_rate);
    rec.flags.user_cert = rng.chance(config_.user_cert_handset_rate);
    rec.flags.sony41_future_cert =
        rec.device.manufacturer == Manufacturer::kSony &&
        rec.device.version == AndroidVersion::k41 &&
        rng.chance(config_.sony41_future_cert_rate);

    rec.home_network_id = rng.next();
    rec.public_ip_id = rng.next();
    rec.assembly_seed = rng.next();
    pop.handsets.push_back(std::move(rec));
  }
  TANGLED_OBS_ADD("synth.population.handsets", pop.handsets.size());

  // Exactly `missing_cert_handsets` handsets with removed AOSP certs.
  {
    const auto picks = sample_without_replacement(
        rng, pop.handsets.size(), config_.missing_cert_handsets);
    for (const std::size_t idx : picks) {
      pop.handsets[idx].flags.missing_certs = true;
    }
  }

  // Table 5 rooted-only certificates. CRAZY HOUSE goes on `crazy_house`
  // rooted handsets; each other catalog entry on exactly one.
  {
    std::vector<std::size_t> rooted_idx;
    for (std::size_t i = 0; i < pop.handsets.size(); ++i) {
      if (pop.handsets[i].device.rooted) rooted_idx.push_back(i);
    }
    const auto rooted_catalog = device::rooted_cert_catalog();
    // CRAZY HOUSE's device count is configurable so small test populations
    // can scale Table 5 down; the singleton entries stay at one device.
    auto devices_for = [this, rooted_catalog](std::size_t c) {
      return c == 0 ? config_.crazy_house_handsets
                    : rooted_catalog[c].device_count;
    };
    std::size_t need = 0;
    for (std::size_t c = 0; c < rooted_catalog.size(); ++c) {
      need += devices_for(c);
    }
    assert(rooted_idx.size() >= need && "rooted rate too low for Table 5");
    const auto picks =
        sample_without_replacement(rng, rooted_idx.size(), need);
    std::size_t cursor = 0;
    for (std::size_t c = 0; c < rooted_catalog.size(); ++c) {
      for (std::size_t k = 0; k < devices_for(c); ++k) {
        pop.handsets[rooted_idx[picks[cursor++]]].flags.rooted_cert = c;
      }
    }
  }

  // §7: designate the proxied handsets — Nexus 7 devices on Android 4.4,
  // matching the paper's single observed interception case.
  {
    std::vector<std::size_t> nexus7;
    for (std::size_t i = 0; i < pop.handsets.size(); ++i) {
      if (pop.handsets[i].device.model == "Asus Nexus 7") nexus7.push_back(i);
    }
    const std::size_t n =
        std::min(config_.proxied_handsets, nexus7.size());
    const auto picks = sample_without_replacement(rng, nexus7.size(), n);
    for (std::size_t k = 0; k < n; ++k) {
      HandsetRecord& rec = pop.handsets[nexus7[picks[k]]];
      rec.behind_proxy = true;
      rec.device.version = AndroidVersion::k44;
    }
  }

  // --- Assemble stores and summarize -------------------------------------
  for (HandsetRecord& rec : pop.handsets) {
    TANGLED_OBS_SCOPED_TIMER("synth.population.assemble_us");
    TANGLED_OBS_INC("synth.population.stores_assembled");
    Xoshiro256 assembly_rng(rec.assembly_seed);
    device::AssembledStore assembled =
        assembler.assemble(rec.device, rec.flags, assembly_rng);
    rec.aosp_present = assembled.aosp_present;
    rec.missing_aosp = assembled.missing_aosp;
    rec.nonaosp_indices = std::move(assembled.nonaosp_indices);
    rec.rooted_cert_indices = std::move(assembled.rooted_cert_indices);
    rec.user_added = assembled.user_added;
    // The Sony 4.1 future-AOSP root counts as an addition relative to the
    // device's own AOSP baseline.
    const std::size_t base = rootstore::aosp_store_size(rec.device.version);
    rec.future_aosp = assembled.aosp_present > base - assembled.missing_aosp
                          ? assembled.aosp_present - (base - assembled.missing_aosp)
                          : 0;
    rec.aosp_present -= rec.future_aosp;
  }

  // --- Sessions -----------------------------------------------------------
  // Every handset produces at least one session (a handset exists in the
  // dataset only because it ran Netalyzr); the rest are uniform repeats.
  pop.sessions.reserve(config_.n_sessions);
  for (std::size_t s = 0; s < config_.n_sessions; ++s) {
    SessionRecord session;
    session.handset_index =
        s < pop.handsets.size()
            ? static_cast<std::uint32_t>(s)
            : static_cast<std::uint32_t>(rng.below(pop.handsets.size()));
    const HandsetRecord& handset = pop.handsets[session.handset_index];
    // Most sessions run from the handset's home network; some roam onto
    // foreign networks (and foreign operators).
    if (rng.chance(0.8)) {
      session.network_id = handset.home_network_id;
      session.public_ip_id = handset.public_ip_id;
      session.network_operator = handset.device.op;
      session.roaming = false;
    } else {
      session.network_id = rng.next();
      session.public_ip_id = rng.next();
      session.network_operator =
          kOperatorShares[operator_sampler.sample(rng)].op;
      session.roaming = session.network_operator != handset.device.op;
    }
    pop.sessions.push_back(session);
  }
  TANGLED_OBS_ADD("synth.population.sessions", pop.sessions.size());

  return pop;
}

}  // namespace tangled::synth
