// Synthetic ICSI-Notary traffic corpus (§4.2), calibrated so the validation
// census reproduces Tables 3/4 and Figure 3:
//
//  * ~47% of unique certificates are expired (1.9 M total vs ~1 M unexpired);
//  * per-root "alive/dead" assignment hits Table 4's validate-nothing
//    percentages per category (72/38/15/22/23/40/22/41%), with exact dead
//    counts per structural group;
//  * unexpired leaf mass is split so the per-store validated totals land on
//    Table 3 (Mozilla 744,069 : AOSP4.x 744,350-744,398 : iOS7 745,736 per
//    million unexpired certs), with the remainder under private/unknown CAs;
//  * "recorded" roots appear inside presented chains (so NotaryDb marks
//    them), unrecorded ones never do — the Figure 2 marker classes.
//
// Leaves are signed through one intermediate per alive root, so the census
// exercises real chain building, not bookkeeping.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "notary/notary.h"
#include "pki/hierarchy.h"
#include "rootstore/catalog.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tangled::synth {

struct NotaryCorpusConfig {
  std::uint64_t seed = 2012;      // the Notary's collection started Feb 2012
  std::size_t n_certs = 20000;    // unique certs; paper scale is 1.9 M
  double expired_fraction = 0.47;
  asn1::Time now = asn1::make_time(2014, 4, 1);

  // Unexpired leaf mass per million, straight from Table 3 arithmetic.
  double mass_shared = 743929e-6;        // alive AOSP[0..130) roots
  double mass_aosp_only_41 = 421e-6;     // alive AOSP[130..139)
  double mass_aosp_added_43 = 34e-6;     // alive AOSP[140..146)
  double mass_aosp_added_44 = 14e-6;     // alive AOSP[146..150)
  double mass_catalog_both = 70e-6;      // alive Mozilla+iOS7 catalog roots
  double mass_catalog_notrec_moz = 70e-6;
  double mass_catalog_ios7only = 437e-6;
  double mass_ios7_filler = 1300e-6;
  double mass_catalog_androidonly = 500e-6;
  // Remainder (~25.3%) goes to private/unknown CAs validated by no store.
  std::size_t unknown_ca_count = 150;
  double zipf_s = 1.05;
};

/// Structural issuer groups (exposed for tests and the Table 4 bench).
enum class IssuerGroup : std::uint8_t {
  kAospShared,        // AOSP[0..130): identical/equivalent with Mozilla
  kAospOnly,          // AOSP[130..150)
  kMozillaFiller,     // Mozilla-only program roots
  kIos7Filler,        // iOS7-only program roots
  kCatalog,           // non-AOSP Figure 2 roots
  kUnknown,           // private CAs outside every store
};

class NotaryCorpusGenerator {
 public:
  NotaryCorpusGenerator(const rootstore::StoreUniverse& universe,
                        NotaryCorpusConfig config = {});

  /// Streams observations into `sink` (typically NotaryDb::observe +
  /// ValidationCensus::ingest). Deterministic in the seed.
  void generate(const std::function<void(const notary::Observation&)>& sink);

  /// Same stream, with leaf construction spread over `pool`. All RNG draws
  /// happen in a serial planning pass in the exact order of the serial
  /// path, and observations reach `sink` in plan order, so the emitted
  /// corpus is bit-identical for any thread count (pool == nullptr or a
  /// zero-worker pool degrades to the serial path).
  void generate(const std::function<void(const notary::Observation&)>& sink,
                util::ThreadPool* pool);

  /// Whether a given root was assigned leaf mass (exposed so tests can
  /// check the dead-fraction calibration independently of the census).
  bool alive_aosp(std::size_t index) const { return alive_aosp_[index]; }
  bool alive_catalog(std::size_t index) const { return alive_catalog_[index]; }
  std::size_t dead_aosp_count() const;

 private:
  struct IssuerSlot {
    const pki::CaNode* root;       // null for unknown CAs (owned below)
    pki::CaNode intermediate;
    double weight_unexpired;
    double weight_expired;
    bool present_root;             // include the root cert in chains
    IssuerGroup group;
  };

  void assign_alive();
  void build_slots();

  const rootstore::StoreUniverse& universe_;
  NotaryCorpusConfig config_;
  Xoshiro256 rng_;
  std::vector<bool> alive_aosp_;      // per aosp_cas() index
  std::vector<bool> alive_catalog_;   // per nonaosp_cas() index
  std::vector<bool> alive_moz_filler_;
  std::vector<bool> alive_ios7_filler_;
  std::vector<pki::CaNode> unknown_roots_;
  std::vector<IssuerSlot> slots_;
};

}  // namespace tangled::synth
