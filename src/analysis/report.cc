#include "analysis/report.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace tangled::analysis {

void AsciiTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      if (c + 1 < cells.size()) {
        out.append(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    out.push_back('\n');
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out.push_back('\n');
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string AsciiTable::to_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find(',') == std::string::npos &&
        cell.find('"') == std::string::npos) {
      return cell;
    }
    std::string quoted = "\"";
    for (char c : cell) {
      if (c == '"') quoted += "\"\"";
      else quoted.push_back(c);
    }
    quoted.push_back('"');
    return quoted;
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out.push_back(',');
    out += quote(headers_[c]);
  }
  out.push_back('\n');
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out.push_back(',');
      out += quote(row[c]);
    }
    out.push_back('\n');
  }
  return out;
}

std::string percent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string relative_error(double measured, double reference) {
  if (reference == 0.0) return "n/a";
  const double err = (measured - reference) / reference * 100.0;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", err);
  return buf;
}

}  // namespace tangled::analysis
