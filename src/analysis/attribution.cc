#include "analysis/attribution.h"

#include <set>

#include "rootstore/nonaosp_catalog.h"

namespace tangled::analysis {

std::string_view to_string(AdditionOrigin origin) {
  switch (origin) {
    case AdditionOrigin::kVendor: return "vendor firmware";
    case AdditionOrigin::kOperator: return "operator pack";
    case AdditionOrigin::kCarrierVariant: return "carrier-variant firmware";
    case AdditionOrigin::kUser: return "user-installed";
    case AdditionOrigin::kRooted: return "rooted-device injection";
    case AdditionOrigin::kFutureAosp: return "newer-AOSP root";
  }
  return "?";
}

std::uint64_t AttributionResult::total_installations() const {
  std::uint64_t total = 0;
  for (const auto& [origin, count] : installations) total += count;
  return total;
}

namespace {

/// Classifies a catalog certificate's origin from its placement rows —
/// the same structural reading the paper applies to Figure 2.
AdditionOrigin classify_catalog(const rootstore::NonAospCertSpec& spec) {
  bool vendor_rows = false;
  bool operator_rows = false;
  for (const auto& placement : spec.placements) {
    if (rootstore::is_operator_row(placement.row)) operator_rows = true;
    else vendor_rows = true;
  }
  if (vendor_rows && operator_rows) return AdditionOrigin::kCarrierVariant;
  if (operator_rows) return AdditionOrigin::kOperator;
  return AdditionOrigin::kVendor;
}

}  // namespace

AttributionResult attribute_additions(const synth::Population& population) {
  AttributionResult result;
  const auto catalog = rootstore::nonaosp_catalog();

  std::map<AdditionOrigin, std::set<std::string>> distinct;
  auto record = [&](AdditionOrigin origin, const std::string& cert_id) {
    ++result.installations[origin];
    distinct[origin].insert(cert_id);
  };

  for (const auto& handset : population.handsets) {
    for (const std::size_t idx : handset.nonaosp_indices) {
      record(classify_catalog(catalog[idx]),
             std::string(catalog[idx].paper_tag));
    }
    for (const std::size_t idx : handset.rooted_cert_indices) {
      record(AdditionOrigin::kRooted,
             std::string(device::rooted_cert_catalog()[idx].issuer_name));
    }
    for (std::size_t u = 0; u < handset.user_added; ++u) {
      // User certs are unique per handset by construction (§5.2).
      record(AdditionOrigin::kUser,
             "user-" + std::to_string(handset.device.handset_id));
    }
    if (handset.future_aosp > 0) {
      record(AdditionOrigin::kFutureAosp, "future-aosp-root");
    }
  }

  for (const auto& [origin, certs] : distinct) {
    result.distinct_certs[origin] = certs.size();
  }
  return result;
}

}  // namespace tangled::analysis
