// Plain-text table rendering for benches and examples: fixed-width ASCII
// tables plus CSV output, so every paper table can be printed side by side
// with its reproduction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tangled::analysis {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule, columns padded to the widest cell.
  std::string to_string() const;
  /// Comma-separated with a header line; cells containing commas are quoted.
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a ratio as "12.3%".
std::string percent(double fraction, int decimals = 1);
/// Formats with thousands separators: 744069 -> "744,069".
std::string with_commas(std::uint64_t value);
/// Relative error between measured and reference, as "+1.2%" / "-0.4%".
std::string relative_error(double measured, double reference);

}  // namespace tangled::analysis
