// The §5/§6 analyses over a Netalyzr population:
//
//  * Figure 1 — per (manufacturer, OS version): the distribution of
//    (AOSP-cert count, additional-cert count) points with session weights;
//  * Figure 2 — per Figure 2 row: for each non-AOSP certificate, the ratio
//    of modified-store sessions exhibiting it, plus its store-membership
//    class as *measured* against the Notary and the Mozilla/iOS7 stores;
//  * §6 / Table 5 — certificates appearing exclusively on rooted handsets.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "notary/notary.h"
#include "rootstore/catalog.h"
#include "synth/population.h"

namespace tangled::analysis {

// ---------------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------------

struct Figure1Point {
  device::Manufacturer manufacturer;
  rootstore::AndroidVersion version;
  std::size_t aosp_certs;        // x-axis
  std::size_t additional_certs;  // y-axis
  std::uint64_t sessions;        // marker size
};

struct Figure1Result {
  std::vector<Figure1Point> points;
  std::uint64_t total_sessions = 0;
  std::uint64_t extended_sessions = 0;   // §5: 39%
  std::size_t missing_cert_handsets = 0; // §5: 5 handsets
  /// Fraction of 4.1+4.2 sessions with > 40 additional certs (§5: >10%).
  double large_expansion_41_42 = 0.0;

  double extended_fraction() const {
    return total_sessions == 0
               ? 0.0
               : static_cast<double>(extended_sessions) / total_sessions;
  }
};

Figure1Result figure1(const synth::Population& population);

// ---------------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------------

/// Measured store-membership class of a certificate (Figure 2 marker
/// shape), derived from the Notary DB plus the Mozilla/iOS7 stores.
rootstore::NotaryClass measured_class(const rootstore::StoreUniverse& universe,
                                      const notary::NotaryDb& db,
                                      std::size_t catalog_index);

struct Figure2Cell {
  rootstore::PlacementRow row;
  std::size_t catalog_index;
  double frequency;            // sessions with cert / modified sessions in row
  std::uint64_t sessions = 0;  // absolute count
};

struct Figure2Result {
  std::vector<Figure2Cell> cells;
  /// Modified-store session count per row (the normalization denominators).
  std::map<rootstore::PlacementRow, std::uint64_t> modified_sessions;
  /// Rows suppressed for having < min_sessions modified sessions (the paper
  /// omits rows with fewer than 10).
  std::vector<rootstore::PlacementRow> suppressed_rows;
};

Figure2Result figure2(const synth::Population& population,
                      std::uint64_t min_sessions = 10);

/// Aggregate class mix over distinct certificates observed in the
/// population (the paper's 6.7 / 16.2 / 37.1 / 40.0% split).
struct ClassMix {
  std::size_t mozilla_and_ios7 = 0;
  std::size_t ios7_only = 0;
  std::size_t android_only = 0;
  std::size_t not_recorded = 0;

  std::size_t total() const {
    return mozilla_and_ios7 + ios7_only + android_only + not_recorded;
  }
};

ClassMix class_mix(const synth::Population& population,
                   const rootstore::StoreUniverse& universe,
                   const notary::NotaryDb& db);

// ---------------------------------------------------------------------------
// §6 / Table 5
// ---------------------------------------------------------------------------

struct RootedCertFinding {
  std::string issuer;
  std::uint64_t devices = 0;           // distinct handsets carrying it
  std::uint64_t rooted_devices = 0;    // of which rooted (should be all)
  bool exclusively_rooted = false;
};

struct RootedAnalysis {
  std::vector<RootedCertFinding> findings;  // descending by devices
  std::uint64_t rooted_sessions = 0;
  std::uint64_t total_sessions = 0;
  /// Sessions on rooted handsets that carry rooted-exclusive certs.
  std::uint64_t rooted_exclusive_sessions = 0;

  double rooted_fraction() const {
    return total_sessions == 0
               ? 0.0
               : static_cast<double>(rooted_sessions) / total_sessions;
  }
  double exclusive_fraction_of_rooted() const {
    return rooted_sessions == 0 ? 0.0
                                : static_cast<double>(rooted_exclusive_sessions) /
                                      rooted_sessions;
  }
};

RootedAnalysis rooted_analysis(const synth::Population& population);

// ---------------------------------------------------------------------------
// §5.2 — additional observations
// ---------------------------------------------------------------------------

/// The roaming signature §5.2 describes: "the appearance of a root
/// certificate issued by an operator different than the operator providing
/// the network access suggests a user roaming or traveling abroad".
struct RoamingObservations {
  /// Sessions where an operator-pack certificate is present while the
  /// session's network belongs to a different operator.
  std::uint64_t foreign_operator_cert_sessions = 0;
  std::uint64_t roaming_sessions = 0;
  std::uint64_t total_sessions = 0;
};

RoamingObservations roaming_observations(const synth::Population& population);

}  // namespace tangled::analysis
