#include "analysis/analysis.h"

#include <algorithm>
#include <set>

namespace tangled::analysis {

using device::Manufacturer;
using rootstore::AndroidVersion;
using rootstore::NotaryClass;
using rootstore::PlacementRow;

// ---------------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------------

Figure1Result figure1(const synth::Population& population) {
  Figure1Result result;
  // Key: (manufacturer, version, aosp, additions) -> session count.
  std::map<std::tuple<int, int, std::size_t, std::size_t>, std::uint64_t> grid;
  std::set<std::uint32_t> missing_handsets;
  std::uint64_t sessions_41_42 = 0;
  std::uint64_t large_41_42 = 0;

  for (const auto& session : population.sessions) {
    const auto& handset = population.handset_of(session);
    ++result.total_sessions;
    if (handset.extended()) ++result.extended_sessions;
    if (handset.missing_aosp > 0) {
      missing_handsets.insert(handset.device.handset_id);
    }
    const bool v41_42 = handset.device.version == AndroidVersion::k41 ||
                        handset.device.version == AndroidVersion::k42;
    if (v41_42) {
      ++sessions_41_42;
      if (handset.additions() > 40) ++large_41_42;
    }
    ++grid[{static_cast<int>(handset.device.manufacturer),
            static_cast<int>(handset.device.version), handset.aosp_present,
            handset.additions()}];
  }

  result.missing_cert_handsets = missing_handsets.size();
  result.large_expansion_41_42 =
      sessions_41_42 == 0
          ? 0.0
          : static_cast<double>(large_41_42) / static_cast<double>(sessions_41_42);

  for (const auto& [key, sessions] : grid) {
    Figure1Point point;
    point.manufacturer = static_cast<Manufacturer>(std::get<0>(key));
    point.version = static_cast<AndroidVersion>(std::get<1>(key));
    point.aosp_certs = std::get<2>(key);
    point.additional_certs = std::get<3>(key);
    point.sessions = sessions;
    result.points.push_back(point);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------------

NotaryClass measured_class(const rootstore::StoreUniverse& universe,
                           const notary::NotaryDb& db,
                           std::size_t catalog_index) {
  const auto& cert = universe.nonaosp_cas()[catalog_index].cert;
  if (!db.recorded(cert)) return NotaryClass::kNotRecorded;
  const bool mozilla = universe.mozilla().contains_equivalent(cert);
  const bool ios7 = universe.ios7().contains_equivalent(cert);
  if (mozilla && ios7) return NotaryClass::kMozillaAndIos7;
  if (ios7) return NotaryClass::kIos7Only;
  return NotaryClass::kAndroidOnly;
}

Figure2Result figure2(const synth::Population& population,
                      std::uint64_t min_sessions) {
  Figure2Result result;

  // Per row: modified-session denominator and per-cert counts.
  std::map<PlacementRow, std::map<std::size_t, std::uint64_t>> counts;

  auto account = [&](PlacementRow row, const synth::HandsetRecord& handset) {
    if (!handset.extended()) return;
    ++result.modified_sessions[row];
    for (const std::size_t idx : handset.nonaosp_indices) {
      ++counts[row][idx];
    }
  };

  for (const auto& session : population.sessions) {
    const auto& handset = population.handset_of(session);
    const auto vendor = device::manufacturer_row(handset.device.manufacturer,
                                                 handset.device.version);
    if (vendor.has_value()) account(*vendor, handset);
    const auto oper = device::operator_row(handset.device.op);
    if (oper.has_value()) account(*oper, handset);
  }

  for (const auto& [row, denominator] : result.modified_sessions) {
    if (denominator < min_sessions) {
      result.suppressed_rows.push_back(row);
      continue;
    }
    const auto it = counts.find(row);
    if (it == counts.end()) continue;
    for (const auto& [idx, n] : it->second) {
      Figure2Cell cell;
      cell.row = row;
      cell.catalog_index = idx;
      cell.sessions = n;
      cell.frequency = static_cast<double>(n) / static_cast<double>(denominator);
      result.cells.push_back(cell);
    }
  }
  return result;
}

ClassMix class_mix(const synth::Population& population,
                   const rootstore::StoreUniverse& universe,
                   const notary::NotaryDb& db) {
  std::set<std::size_t> distinct;
  for (const auto& handset : population.handsets) {
    distinct.insert(handset.nonaosp_indices.begin(),
                    handset.nonaosp_indices.end());
  }
  ClassMix mix;
  for (const std::size_t idx : distinct) {
    switch (measured_class(universe, db, idx)) {
      case NotaryClass::kMozillaAndIos7: ++mix.mozilla_and_ios7; break;
      case NotaryClass::kIos7Only: ++mix.ios7_only; break;
      case NotaryClass::kAndroidOnly: ++mix.android_only; break;
      case NotaryClass::kNotRecorded: ++mix.not_recorded; break;
    }
  }
  return mix;
}

// ---------------------------------------------------------------------------
// §6 / Table 5
// ---------------------------------------------------------------------------

RootedAnalysis rooted_analysis(const synth::Population& population) {
  RootedAnalysis result;
  const auto catalog = device::rooted_cert_catalog();

  struct PerCert {
    std::set<std::uint32_t> devices;
    std::set<std::uint32_t> rooted_devices;
  };
  std::vector<PerCert> per_cert(catalog.size());

  for (const auto& handset : population.handsets) {
    for (const std::size_t idx : handset.rooted_cert_indices) {
      per_cert[idx].devices.insert(handset.device.handset_id);
      if (handset.device.rooted) {
        per_cert[idx].rooted_devices.insert(handset.device.handset_id);
      }
    }
  }

  std::set<std::uint32_t> exclusive_handsets;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (per_cert[i].devices.empty()) continue;
    RootedCertFinding finding;
    finding.issuer = std::string(catalog[i].issuer_name);
    finding.devices = per_cert[i].devices.size();
    finding.rooted_devices = per_cert[i].rooted_devices.size();
    finding.exclusively_rooted =
        per_cert[i].devices == per_cert[i].rooted_devices;
    result.findings.push_back(std::move(finding));
    if (per_cert[i].devices == per_cert[i].rooted_devices) {
      exclusive_handsets.insert(per_cert[i].rooted_devices.begin(),
                                per_cert[i].rooted_devices.end());
    }
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const auto& a, const auto& b) {
              if (a.devices != b.devices) return a.devices > b.devices;
              return a.issuer < b.issuer;
            });

  for (const auto& session : population.sessions) {
    const auto& handset = population.handset_of(session);
    ++result.total_sessions;
    if (handset.device.rooted) {
      ++result.rooted_sessions;
      if (exclusive_handsets.contains(handset.device.handset_id)) {
        ++result.rooted_exclusive_sessions;
      }
    }
  }
  return result;
}

RoamingObservations roaming_observations(const synth::Population& population) {
  RoamingObservations result;
  const auto catalog = rootstore::nonaosp_catalog();
  for (const auto& session : population.sessions) {
    ++result.total_sessions;
    if (session.roaming) ++result.roaming_sessions;
    const auto& handset = population.handset_of(session);
    // Does this handset carry an operator-placed cert while the session's
    // network operator differs from the handset's subscription?
    if (session.network_operator == handset.device.op) continue;
    for (const std::size_t idx : handset.nonaosp_indices) {
      bool operator_placed = false;
      for (const auto& placement : catalog[idx].placements) {
        operator_placed |= rootstore::is_operator_row(placement.row);
      }
      if (operator_placed) {
        ++result.foreign_operator_cert_sessions;
        break;
      }
    }
  }
  return result;
}

}  // namespace tangled::analysis
