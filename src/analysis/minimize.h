// Root-store minimization — the experiment the paper gestures at in §5.3
// ("One could seemingly disable these certificates with little negative
// effect on the user experience or TLS functionality") and attributes to
// Perl et al. [26] ("You Won't Be Needing These Any More").
//
// Given a validation census, ranks a store's roots by how many observed
// certificates they validate, identifies the zero-validators, and computes
// the retention curve: how much validation coverage survives if only the
// top-k roots are kept.
#pragma once

#include <vector>

#include "notary/census.h"
#include "rootstore/rootstore.h"

namespace tangled::analysis {

struct MinimizeResult {
  /// Roots validating nothing in the census — removable "for free".
  std::vector<const x509::Certificate*> removable;
  /// Store size before/after free removal.
  std::size_t size_before = 0;
  std::size_t size_after = 0;
  /// Total census certificates the store validates (unchanged by free
  /// removal; the invariant is asserted in tests).
  std::uint64_t validated = 0;
  /// retention_curve[k] = fraction of `validated` still covered when only
  /// the k+1 highest-validating roots are kept.
  std::vector<double> retention_curve;

  double removable_fraction() const {
    return size_before == 0
               ? 0.0
               : static_cast<double>(removable.size()) / size_before;
  }
  /// Smallest k with retention_curve[k-1] >= target (store size needed to
  /// keep `target` of current coverage).
  std::size_t roots_needed_for(double target) const;
};

MinimizeResult minimize_store(const rootstore::RootStore& store,
                              const notary::ValidationCensus& census);

}  // namespace tangled::analysis
