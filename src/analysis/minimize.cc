#include "analysis/minimize.h"

#include <algorithm>

namespace tangled::analysis {

MinimizeResult minimize_store(const rootstore::RootStore& store,
                              const notary::ValidationCensus& census) {
  MinimizeResult result;
  result.size_before = store.size();

  std::vector<std::uint64_t> counts;
  counts.reserve(store.size());
  for (const auto& cert : store.certificates()) {
    const std::uint64_t n = census.validated_by(cert);
    counts.push_back(n);
    if (n == 0) result.removable.push_back(&cert);
    result.validated += n;
  }
  result.size_after = result.size_before - result.removable.size();

  std::sort(counts.begin(), counts.end(), std::greater<>());
  result.retention_curve.reserve(counts.size());
  std::uint64_t running = 0;
  for (const std::uint64_t c : counts) {
    running += c;
    result.retention_curve.push_back(
        result.validated == 0
            ? 1.0
            : static_cast<double>(running) / static_cast<double>(result.validated));
  }
  return result;
}

std::size_t MinimizeResult::roots_needed_for(double target) const {
  for (std::size_t k = 0; k < retention_curve.size(); ++k) {
    if (retention_curve[k] >= target) return k + 1;
  }
  return retention_curve.size();
}

}  // namespace tangled::analysis
