// §5.1/§5.2 attribution: who put each additional certificate on the
// device? The paper distinguishes hardware-vendor firmware additions,
// operator-subsidized firmware additions, carrier-variant certs (vendor ∧
// operator, like CertiSign on Motorola-Verizon), user-installed VPN certs,
// and rooted-device injections.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "synth/population.h"

namespace tangled::analysis {

enum class AdditionOrigin : std::uint8_t {
  kVendor,          // manufacturer firmware (AddTrust on HTC/Samsung, …)
  kOperator,        // operator pack (Sprint, Cingular, Vodafone, …)
  kCarrierVariant,  // vendor ∧ operator firmware (CertiSign, MSFT/AT&T)
  kUser,            // manually installed self-signed certs (§5.2)
  kRooted,          // rooted-device injections (§6, Table 5)
  kFutureAosp,      // newer-AOSP roots on older devices (Sony 4.1 quirk)
};

std::string_view to_string(AdditionOrigin origin);

struct AttributionResult {
  /// Distinct (handset, certificate) installations per origin.
  std::map<AdditionOrigin, std::uint64_t> installations;
  /// Distinct certificates per origin (a cert counts once per origin).
  std::map<AdditionOrigin, std::uint64_t> distinct_certs;

  std::uint64_t total_installations() const;
};

/// Classifies every addition in the population. Catalog placements drive
/// the vendor/operator/carrier-variant split; user, rooted, and
/// future-AOSP additions are recognized from the handset record.
AttributionResult attribute_additions(const synth::Population& population);

}  // namespace tangled::analysis
